//! # tin — provenance in temporal interaction networks
//!
//! Facade crate bundling the full reproduction of *Provenance in Temporal
//! Interaction Networks* (Kosyfaki & Mamoulis, ICDE 2022):
//!
//! * [`core`] (`tin-core`) — the TIN model and every provenance tracker
//!   (Sections 3–6 of the paper);
//! * [`datasets`] (`tin-datasets`) — synthetic workloads emulating the five
//!   evaluation networks plus CSV I/O (Section 7.1);
//! * [`analytics`] (`tin-analytics`) — distributions, alerts, accumulation
//!   series, grouping strategies and report formatting (Sections 1, 5.2,
//!   7.6);
//! * [`memstats`] (`tin-memstats`) — allocator-level memory measurement used
//!   by the experiment harness (Section 7.2);
//! * [`shard`] (`tin-shard`) — the sharded parallel execution engine with
//!   deterministic wavefront scheduling (bit-identical to the sequential
//!   engine; see the README's Architecture section).
//!
//! ```
//! use tin::prelude::*;
//!
//! // Generate a small synthetic taxi network and track provenance.
//! let spec = DatasetSpec::new(DatasetKind::Taxis, ScaleProfile::Tiny);
//! let tin = tin::datasets::generate_tin(&spec);
//! let mut tracker = ProportionalDenseTracker::new(tin.num_vertices());
//! tracker.process_all(tin.interactions());
//! assert!(tracker.check_all_invariants());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use tin_analytics as analytics;
pub use tin_core as core;
pub use tin_datasets as datasets;
pub use tin_memstats as memstats;
pub use tin_obs as obs;
pub use tin_shard as shard;

/// One-stop import for applications: the core prelude plus the most used
/// dataset and analytics types.
pub mod prelude {
    pub use tin_analytics::accuracy::{compare_grouped_tracker, compare_trackers};
    pub use tin_analytics::clustering::{
        cluster_into, connected_components, label_propagation, modularity,
    };
    pub use tin_analytics::mining::{
        cluster_by_provenance, cosine_similarity, entropy_outliers, most_similar_pairs,
        recurrent_origins, EntropyOutlier, ProvenanceCluster, RecurrentOrigin, SimilarPair,
    };
    pub use tin_analytics::{
        classify_sources, path_statistics, record_series, AccuracyReport, Alert, AlertConfig,
        AlertEngine, FlowMatrix, Grouping, Measurement, OriginSetError, PathStatistics,
        ProvenanceDistribution, SourceProfile, TextTable,
    };
    pub use tin_core::prelude::*;
    pub use tin_datasets::{DatasetKind, DatasetSpec, NamedTin, ScaleProfile, VertexInterner};
}
