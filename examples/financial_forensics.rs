//! Financial forensics: smurfing alerts on a Bitcoin-like network.
//!
//! Reproduces the Section 7.6 / Figure 9 use case on a synthetic
//! Bitcoin-style TIN: after every interaction, an alert is raised when the
//! receiving account has accumulated more than a threshold quantity *none of
//! which originates from its direct neighbours* — the signature of funds
//! being layered through intermediaries ("smurfing").
//!
//! Run with: `cargo run --release --example financial_forensics`

use tin::prelude::*;

fn main() {
    // A scaled-down Bitcoin-like network (see DESIGN.md for the emulation).
    let spec = DatasetSpec::new(DatasetKind::Bitcoin, ScaleProfile::Tiny);
    let tin = tin::datasets::generate_tin(&spec);
    let stats = tin.stats();
    println!(
        "Synthetic Bitcoin-like TIN: |V| = {}, |R| = {}, avg q = {:.2e}",
        stats.num_vertices, stats.num_interactions, stats.avg_quantity
    );

    // Track provenance with the sparse proportional policy (the natural model
    // for indistinguishable financial units).
    let mut tracker = ProportionalSparseTracker::new(tin.num_vertices());

    // Alert threshold: 10x the average interaction quantity (the paper uses
    // an absolute 10K BTC on the real data).
    let threshold = 10.0 * stats.avg_quantity;
    let config = AlertConfig {
        quantity_threshold: threshold,
        require_no_neighbor_origin: true,
    };
    let alerts = AlertEngine::run_stream(&mut tracker, tin.interactions(), config);

    println!(
        "Raised {} alerts with threshold {:.2e} (quantity with no direct-neighbour origin)",
        alerts.len(),
        threshold
    );
    for alert in alerts.iter().take(10) {
        let marker = if alert.is_few_sources() {
            "FEW-SOURCES"
        } else {
            "many-sources"
        };
        println!(
            "  [{}] interaction #{:>6}  account {:>6}  buffered {:>14.2}  from {} contributing vertices",
            marker, alert.interaction_index, alert.vertex, alert.buffered, alert.contributing_vertices
        );
    }
    if alerts.len() > 10 {
        println!("  ... and {} more", alerts.len() - 10);
    }

    // Characterise the busiest receiving accounts by how concentrated their
    // funding sources are (Section 1: "accounts that receive funds from
    // numerous or few sources").
    println!("\nSource profiles of the top receiving accounts:");
    let mut by_received: Vec<VertexId> = tin.vertices().collect();
    let received = tin.total_received_per_vertex();
    by_received.sort_by(|a, b| received[b.index()].total_cmp(&received[a.index()]));
    let mut table = TextTable::new(
        "Top receivers",
        &["account", "buffered", "origins", "entropy(bits)", "profile"],
    );
    for v in by_received.into_iter().take(8) {
        let origins = tracker.origins(v);
        let dist = ProvenanceDistribution::from_origins(&origins);
        table.push_row(vec![
            v.to_string(),
            format!("{:.3e}", tracker.buffered(v)),
            origins.len().to_string(),
            format!("{:.2}", dist.entropy_bits()),
            format!("{:?}", classify_sources(&origins)),
        ]);
    }
    println!("{}", table.render());
}
