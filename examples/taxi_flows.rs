//! Passenger-flow provenance in a taxi-zone network (the Figure 2 use case).
//!
//! Tracks, for the busiest drop-off zone of a synthetic NYC-taxi day, the
//! passengers accumulated after every incoming trip and the provenance
//! distribution over pick-up zones — the data behind the paper's "East
//! Village" pie-chart figure, useful e.g. for location-aware marketing.
//!
//! Run with: `cargo run --release --example taxi_flows`

use tin::prelude::*;

fn main() {
    let spec = DatasetSpec::new(DatasetKind::Taxis, ScaleProfile::Small);
    let tin = tin::datasets::generate_tin(&spec);
    println!(
        "Synthetic taxi-zone TIN: {} zones, {} trips, avg {:.2} passengers/trip",
        tin.num_vertices(),
        tin.num_interactions(),
        tin.stats().avg_quantity
    );

    // Watch the zone with the most incoming trips (the "East Village" of the
    // synthetic network).
    let watched = tin
        .vertices()
        .max_by_key(|v| tin.edge_historyless_in_count(*v))
        .expect("non-empty network");

    // Proportional selection: passengers mix in the zone, so every origin
    // contributes proportionally to onward flows.
    let mut tracker = ProportionalDenseTracker::new(tin.num_vertices());
    let series = record_series(&mut tracker, tin.interactions(), watched);

    println!(
        "\nZone {}: {} incoming trips, peak {:.1} buffered passengers, final {:.1}",
        watched,
        series.samples.len(),
        series.peak_buffered(),
        series.final_buffered()
    );

    // Print a Figure-2-like digest: every Nth sample with its top origins.
    let step = (series.samples.len() / 10).max(1);
    let mut table = TextTable::new(
        format!("Accumulated passengers at zone {watched} (every {step}th arrival)"),
        &["trip#", "time", "buffered", "top origin zones (share)"],
    );
    for sample in series.samples.iter().step_by(step) {
        let top: Vec<String> = sample
            .distribution
            .shares
            .iter()
            .take(3)
            .map(|(o, p)| format!("{o} {:.0}%", p * 100.0))
            .collect();
        table.push_row(vec![
            sample.interaction_index.to_string(),
            format!("{:.1}", sample.time),
            format!("{:.1}", sample.buffered),
            top.join(", "),
        ]);
    }
    println!("{}", table.render());

    // Final provenance pie for the watched zone.
    let final_dist = &series
        .samples
        .last()
        .expect("at least one arrival")
        .distribution;
    println!(
        "Final provenance distribution: {} origin zones, entropy {:.2} bits, {} zones cover 80% of passengers",
        final_dist.len(),
        final_dist.entropy_bits(),
        final_dist.origins_covering(0.8)
    );
}

/// Helper trait-ish extension: in-degree without borrowing issues inside
/// `max_by_key` (the closure needs `&Tin`).
trait InCount {
    fn edge_historyless_in_count(&self, v: VertexId) -> usize;
}

impl InCount for Tin {
    fn edge_historyless_in_count(&self, v: VertexId) -> usize {
        self.in_degree(v)
    }
}
