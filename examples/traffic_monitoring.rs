//! Traffic monitoring: provenance of passenger flows in a flight network.
//!
//! The paper motivates provenance in transportation networks with questions
//! like "where do the passengers accumulating at this airport come from?" and
//! "which routes did they take?" (Sections 1 and 7.1). This example runs the
//! synthetic Flights workload and answers those questions:
//!
//! * exact proportional provenance of the busiest airport's buffered
//!   passengers, as a distribution and a flow matrix,
//! * how-provenance (routes) with the FIFO + paths tracker,
//! * a memory-bounded deployment (windowed + budgeted tracking) whose
//!   accuracy is quantified against the exact answer,
//! * community-grouped provenance using the label-propagation clustering.
//!
//! Run with: `cargo run --release --example traffic_monitoring`

use tin::core::policy::{PolicyConfig, SelectionPolicy};
use tin::core::tracker::path::PathTracker;
use tin::prelude::*;

fn main() {
    // A small synthetic flight day (629 airports at paper scale; tiny here).
    let spec = DatasetSpec::new(DatasetKind::Flights, ScaleProfile::Tiny);
    let tin = tin::datasets::generate_tin(&spec);
    let stats = tin.stats();
    println!(
        "Flights workload: |V|={}, |E|={}, |R|={}, avg passengers/flight={:.1}",
        stats.num_vertices, stats.num_edges, stats.num_interactions, stats.avg_quantity
    );
    println!();

    // Exact proportional provenance over the whole day.
    let mut exact = build_tracker(
        &PolicyConfig::Plain(SelectionPolicy::ProportionalDense),
        tin.num_vertices(),
    )
    .expect("valid config");
    exact.process_all(tin.interactions());

    // The airport where the most passengers are currently buffered.
    let flows = FlowMatrix::from_tracker(exact.as_ref());
    let (hub, buffered) = flows.top_holders(1)[0];
    println!("Busiest airport: {hub} with {buffered:.0} buffered passengers");
    let distribution = ProvenanceDistribution::from_origins(&exact.origins(hub));
    println!(
        "  fed by {} origin airports (entropy {:.2} bits, top origin covers {:.0}%)",
        distribution.len(),
        distribution.entropy_bits(),
        distribution
            .shares
            .first()
            .map(|(_, p)| p * 100.0)
            .unwrap_or(0.0)
    );
    for (origin, share) in distribution.shares.iter().take(5) {
        println!("    {:>6.1}% from {origin}", share * 100.0);
    }
    println!(
        "  classified as: {:?}",
        classify_sources(&exact.origins(hub))
    );
    println!();

    // Who are the biggest net "exporters" of passengers network-wide?
    println!("Top passenger contributors still in transit:");
    for (airport, qty) in flows.top_contributors(5) {
        println!("  {airport}: {qty:.0} passengers generated and still buffered somewhere");
    }
    println!();

    // How-provenance: the routes the buffered passengers took.
    let mut paths = PathTracker::fifo(tin.num_vertices());
    paths.process_all(tin.interactions());
    let path_stats = path_statistics(&paths);
    println!(
        "Route tracking (FIFO + paths): {} buffered elements, average path length {:.2} relays",
        paths.total_elements(),
        path_stats.avg_path_length
    );
    if let Some(element) = paths
        .elements(hub)
        .iter()
        .max_by(|a, b| a.hops().cmp(&b.hops()))
    {
        let route: Vec<String> = element.path.iter().map(|x| x.to_string()).collect();
        println!(
            "  longest route into {hub}: {:.0} passengers via [{}]",
            element.qty,
            route.join(" -> ")
        );
    }
    println!();

    // A memory-bounded deployment: windowed + budgeted proportional tracking.
    println!("Memory-bounded deployments vs exact proportional provenance:");
    let window = (tin.num_interactions() / 4).max(1);
    let bounded_configs = vec![
        (
            "windowed W=|R|/4".to_string(),
            PolicyConfig::Windowed { window },
        ),
        ("budget C=8".to_string(), PolicyConfig::budget(8)),
        ("budget C=64".to_string(), PolicyConfig::budget(64)),
    ];
    for (label, config) in bounded_configs {
        let mut approx = build_tracker(&config, tin.num_vertices()).expect("valid config");
        approx.process_all(tin.interactions());
        let accuracy = compare_trackers(approx.as_ref(), exact.as_ref(), 5);
        println!(
            "  {:<18} known provenance {:>5.1}%  mean TV distance {:.3}  top-5 recall {:.2}  memory {}",
            label,
            accuracy.mean_known_fraction * 100.0,
            accuracy.mean_total_variation,
            accuracy.mean_topk_recall,
            tin::core::memory::format_bytes(approx.footprint().total())
        );
    }
    println!();

    // Grouped provenance over graph communities (METIS stand-in).
    let grouping = cluster_into(&tin, 4).expect("clustering succeeds");
    println!(
        "Community-grouped provenance: {} groups, modularity {:.3}, sizes {:?}",
        grouping.num_groups,
        modularity(&tin, &grouping),
        grouping.group_sizes()
    );
    let mut grouped = build_tracker(&grouping.to_policy(), tin.num_vertices()).expect("valid");
    grouped.process_all(tin.interactions());
    let group_matrix = FlowMatrix::from_tracker(exact.as_ref()).group_flow(&grouping);
    println!("  inter-community passenger flow (origin group -> holder group):");
    for (og, row) in group_matrix.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|q| format!("{q:>8.0}")).collect();
        println!("    g{og}: [{}]", cells.join(" "));
    }
    let fair = compare_grouped_tracker(grouped.as_ref(), exact.as_ref(), &grouping, 3);
    println!(
        "  grouped tracker vs coarsened exact answer: mean TV distance {:.6} (exact: {})",
        fair.mean_total_variation,
        fair.is_exact()
    );
}
