//! Quickstart: provenance tracking on the paper's running example.
//!
//! Builds the six-interaction TIN of Figure 3, runs it under every selection
//! policy, and prints the buffer contents / provenance the paper reports in
//! Tables 2–5.
//!
//! Run with: `cargo run --example quickstart`

use tin::prelude::*;

fn main() {
    // The running example of the paper (Figure 3): three vertices, six
    // interactions.
    let interactions = tin::core::interaction::paper_running_example();
    let tin = Tin::from_interactions(3, interactions.clone()).expect("valid TIN");

    println!("Temporal interaction network (Figure 3)");
    println!(
        "  |V| = {}, |E| = {}, |R| = {}",
        tin.num_vertices(),
        tin.num_edges(),
        tin.num_interactions()
    );
    for r in tin.interactions() {
        println!(
            "  {} -> {} at t={} q={}",
            r.src,
            r.dst,
            r.time.value(),
            r.qty
        );
    }
    println!();

    // Run every selection policy and show the origins of each vertex's
    // buffered quantity after all interactions have been processed.
    for policy in SelectionPolicy::all() {
        let mut tracker =
            build_tracker(&PolicyConfig::Plain(policy), tin.num_vertices()).expect("valid config");
        tracker.process_all(tin.interactions());

        println!("=== {} ===", policy.label());
        for v in tin.vertices() {
            let origins = tracker.origins(v);
            let shares: Vec<String> = origins
                .shares()
                .iter()
                .map(|s| format!("{}: {:.2}", s.origin, s.quantity))
                .collect();
            println!(
                "  B_{v}: |B| = {:.2}   origins: [{}]",
                tracker.buffered(v),
                shares.join(", ")
            );
        }
        let fp = tracker.footprint();
        println!(
            "  provenance state: {} (processed {} interactions)",
            tin::core::memory::format_bytes(fp.total()),
            tracker.interactions_processed()
        );
        println!();
    }

    // How-provenance: the routes followed by the quantities buffered at v2.
    let mut paths = PathTracker::lifo(tin.num_vertices());
    paths.process_all(tin.interactions());
    println!("=== How-provenance (LIFO + paths) ===");
    for v in tin.vertices() {
        for e in paths.elements(v) {
            let route: Vec<String> = e.path.iter().map(|x| x.to_string()).collect();
            println!(
                "  {:.2} units at {} originated at {} via [{}]",
                e.qty,
                v,
                e.origin,
                route.join(" -> ")
            );
        }
    }
}
