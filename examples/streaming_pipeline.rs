//! Streaming pipeline: validated ingestion, checkpoints, time travel.
//!
//! This example shows the "operational" side of the library, beyond the raw
//! trackers:
//!
//! 1. a raw edge list with string vertex names is loaded and interned,
//! 2. a [`ProvenanceEngine`] ingests the stream with full validation, flow
//!    accounting and periodic checkpoints,
//! 3. the checkpointed snapshots are diffed and exported as TSV,
//! 4. past states are queried exactly with the lazy / backtracing trackers.
//!
//! Run with: `cargo run --example streaming_pipeline`

use tin::core::engine::run_ensemble;
use tin::core::policy::{PolicyConfig, SelectionPolicy};
use tin::datasets::formats::read_named_edge_list;
use tin::prelude::*;

/// A small hand-written trace of money moving between named accounts.
const RAW_TRACE: &str = "\
src,dst,time,qty
exchange,alice,1,100
exchange,bob,2,40
alice,carol,3,30
bob,carol,4,25
carol,dave,5,50
mallory,dave,6,10
dave,eve,7,45
";

fn main() {
    // 1. Load and intern the raw trace.
    let named = read_named_edge_list(RAW_TRACE.as_bytes()).expect("trace parses");
    let n = named.num_vertices();
    println!(
        "Loaded {} interactions over {} named vertices",
        named.interactions.len(),
        n
    );
    for (id, name) in named.interner.iter() {
        println!("  {id} = {name}");
    }
    println!();

    // 2. Stream it through an engine with proportional provenance and a
    //    checkpoint every 2 interactions.
    let mut engine =
        ProvenanceEngine::new(&PolicyConfig::Plain(SelectionPolicy::ProportionalSparse), n)
            .expect("valid config")
            .with_checkpoints(2)
            .expect("positive interval");
    let mut source = VecSource::new(named.interactions.clone());
    let report = engine.run(&mut source).expect("stream is well formed");

    println!("Engine report for `{}`:", report.policy);
    println!("  interactions processed : {}", report.interactions);
    println!("  total quantity moved   : {:.1}", report.total_quantity);
    println!(
        "  newborn vs relayed     : {:.1} vs {:.1} ({:.0}% newborn)",
        report.newborn_quantity,
        report.relayed_quantity,
        report.newborn_fraction() * 100.0
    );
    println!("  checkpoints taken      : {}", report.checkpoints_taken);
    println!(
        "  provenance state       : {}",
        tin::core::memory::format_bytes(report.footprint.total())
    );
    println!();

    // 3. Compare the first and last checkpoint and export the final snapshot.
    let checkpoints = engine.checkpoints();
    if let (Some(first), Some(last)) = (checkpoints.first(), checkpoints.last()) {
        let diff = last.diff_from(first);
        println!(
            "Between t={} and t={} ({} interactions):",
            first.time, last.time, diff.interactions
        );
        if let Some((vertex, delta)) = diff.fastest_accumulator() {
            let name = named.interner.name_of(vertex).unwrap_or("?");
            println!("  fastest accumulator: {name} (+{delta:.1} units)");
        }
        let mut tsv = Vec::new();
        last.write_tsv(&mut tsv).expect("snapshot serialises");
        println!("  final snapshot as TSV ({} bytes):", tsv.len());
        for line in String::from_utf8(tsv).unwrap().lines().take(6) {
            println!("    {line}");
        }
    }
    println!();

    // 4. Exact time travel: what was the provenance of dave's balance just
    //    after interaction 6? The lazy tracker replays the prefix; the
    //    backtracing index prunes the replay to the relevant subgraph.
    let dave = named.interner.get("dave").expect("dave exists");
    let mut lazy = LazyReplayProvenance::proportional(n);
    let mut backtrace = BacktraceIndex::proportional(n);
    for r in &named.interactions {
        lazy.process(r);
        backtrace.process(r);
    }
    let at_t6 = lazy.origins_at(dave, 6.0).expect("valid query");
    let (pruned, stats) = backtrace
        .origins_at_with_stats(
            dave,
            6.0,
            &PolicyConfig::Plain(SelectionPolicy::ProportionalSparse),
        )
        .expect("valid query");
    assert!(
        at_t6.approx_eq(&pruned),
        "lazy and backtraced answers agree"
    );
    println!("Provenance of dave's balance at t=6 (exact, via replay):");
    for (origin, qty) in at_t6.iter() {
        let name = origin
            .as_vertex()
            .and_then(|v| named.interner.name_of(v))
            .unwrap_or("aggregated");
        println!("  {qty:.2} units from {name}");
    }
    println!(
        "  backtracing replayed {} of {} interactions ({} reachable vertices, {:.0}% pruned)",
        stats.replayed_interactions,
        stats.horizon_interactions,
        stats.reachable_vertices,
        stats.pruning_ratio() * 100.0
    );
    println!();

    // 5. The same stream under every plain policy, side by side.
    let configs: Vec<PolicyConfig> = SelectionPolicy::all()
        .into_iter()
        .map(PolicyConfig::Plain)
        .collect();
    let reports = run_ensemble(&configs, n, &named.interactions).expect("all policies run");
    println!("Policy comparison on the same stream:");
    for r in &reports {
        println!(
            "  {:<12} provenance state {:>10}",
            r.policy,
            tin::core::memory::format_bytes(r.footprint.total())
        );
    }
}
