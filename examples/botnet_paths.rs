//! Network forensics: tracing the routes of bytes in botnet-like traffic.
//!
//! On a synthetic CTU-style botnet traffic network, this example tracks
//! *how*-provenance (Section 6 of the paper): for the host that accumulated
//! the most bytes, it reports not only which hosts generated the data but
//! also the exact relay routes the bytes followed — the information a
//! security analyst needs to trace an exfiltration chain back through
//! stepping-stone hosts.
//!
//! Run with: `cargo run --release --example botnet_paths`

use tin::analytics::path_stats;
use tin::prelude::*;

fn main() {
    let spec = DatasetSpec::new(DatasetKind::Ctu, ScaleProfile::Tiny);
    let tin = tin::datasets::generate_tin(&spec);
    println!(
        "Synthetic botnet traffic TIN: {} hosts, {} flows",
        tin.num_vertices(),
        tin.num_interactions()
    );

    // Track provenance with per-element transfer paths on top of FIFO
    // (packets are relayed in arrival order).
    let mut tracker = PathTracker::fifo(tin.num_vertices());
    tracker.process_all(tin.interactions());

    // Aggregate path statistics (the Table 10 quantities).
    let stats = path_stats::statistics(&tracker);
    println!(
        "Buffered elements: {}, avg path length {:.2} relays (max {}), entries {} + paths {}",
        stats.num_elements,
        stats.avg_path_length,
        stats.max_path_length,
        tin::core::memory::format_bytes(stats.entries_bytes),
        tin::core::memory::format_bytes(stats.paths_bytes),
    );

    // The host that accumulated the most bytes.
    let target = tin
        .vertices()
        .max_by(|a, b| tracker.buffered(*a).total_cmp(&tracker.buffered(*b)))
        .expect("non-empty network");
    println!(
        "\nHost {} accumulated {:.0} bytes from {} origin hosts",
        target,
        tracker.buffered(target),
        tracker.origins(target).len()
    );

    // Where did those bytes come from, and along which routes?
    let mut table = TextTable::new(
        format!("Top routes into host {target}"),
        &["bytes", "elements", "route (origin -> relays)"],
    );
    for route in path_stats::top_routes(&tracker, target, 8) {
        let hops: Vec<String> = route.route.iter().map(|v| v.to_string()).collect();
        table.push_row(vec![
            format!("{:.0}", route.quantity),
            route.elements.to_string(),
            hops.join(" -> "),
        ]);
    }
    println!("{}", table.render());

    // Compare with plain origin (where/why) provenance: same origins, no
    // routes, less memory.
    let mut plain = ReceiptOrderTracker::fifo(tin.num_vertices());
    plain.process_all(tin.interactions());
    println!(
        "Memory: origins only = {}, origins + paths = {}",
        tin::core::memory::format_bytes(plain.footprint().total()),
        tin::core::memory::format_bytes(tracker.footprint().total()),
    );
}
