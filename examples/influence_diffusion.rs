//! Influence analysis under the diffusion (copy) propagation model.
//!
//! Section 8 of the paper proposes, as future work, adapting quantity
//! provenance to social networks where data is *diffused* (copied) rather
//! than relayed. This example runs the [`DiffusionTracker`] extension on a
//! synthetic CTU-like communication network and answers influence-style
//! questions directly from the provenance state:
//!
//! * which origins have the widest reach and the largest diffused quantity,
//! * how much more quantity exists under copy semantics than under relay
//!   semantics (the key modelling difference of Section 2.2), and
//! * which receivers end up with near-identical provenance profiles
//!   (the provenance-mining extension of Section 8).
//!
//! Run with: `cargo run --release --example influence_diffusion`

use tin::prelude::*;

fn main() {
    // A hub-dominated communication network (botnet-like traffic).
    let spec = DatasetSpec::new(DatasetKind::Ctu, ScaleProfile::Tiny);
    let tin = tin::datasets::generate_tin(&spec);
    let stats = tin.stats();
    println!(
        "Synthetic CTU-like TIN: |V| = {}, |R| = {}, total q = {:.3e}",
        stats.num_vertices, stats.num_interactions, stats.total_quantity
    );

    // Track provenance under both propagation models over the same stream.
    let mut diffusion = DiffusionTracker::new(tin.num_vertices());
    let mut relay = ProportionalSparseTracker::new(tin.num_vertices());
    for r in tin.interactions() {
        diffusion.process(r);
        relay.process(r);
    }
    assert!(diffusion.check_all_invariants());

    println!(
        "\nTotal buffered quantity:  relay = {:.3e}   diffusion = {:.3e}  (x{:.2} amplification)",
        relay.total_buffered(),
        diffusion.total_buffered(),
        diffusion.total_buffered() / relay.total_buffered().max(f64::MIN_POSITIVE)
    );

    // Influence ranking: who generated the information that is now spread the
    // widest through the network?
    let mut table = TextTable::new(
        "Most influential origins (diffusion model)",
        &[
            "origin",
            "influence (total diffused q)",
            "reach (#holders)",
            "generated",
        ],
    );
    for (origin, influence) in diffusion.influence_ranking(10) {
        table.push_row(vec![
            origin.to_string(),
            format!("{influence:.3e}"),
            diffusion.reach_of(origin).to_string(),
            format!("{:.3e}", diffusion.generated_per_vertex()[origin.index()]),
        ]);
    }
    println!("{}", table.render());

    // Provenance mining: receivers whose information comes from the same
    // sources in the same proportions.
    let pairs = most_similar_pairs(&diffusion, 0.95, 5);
    println!("Top receiver pairs with near-identical provenance (cosine >= 0.95):");
    if pairs.is_empty() {
        println!("  (none at this scale)");
    }
    for pair in &pairs {
        println!(
            "  {} ~ {}  similarity {:.4}",
            pair.a, pair.b, pair.similarity
        );
    }

    let clusters = cluster_by_provenance(&diffusion, 0.9);
    let non_trivial = clusters.iter().filter(|c| c.len() > 1).count();
    println!(
        "\nProvenance clustering at threshold 0.9: {} clusters over {} occupied vertices ({} non-singleton)",
        clusters.len(),
        clusters.iter().map(|c| c.len()).sum::<usize>(),
        non_trivial
    );

    // Network-wide financiers: origins present in a large share of buffers.
    println!("\nOrigins contributing to >= 20% of all non-empty buffers:");
    for r in recurrent_origins(&diffusion, 0.2).into_iter().take(8) {
        println!(
            "  {:>8}  support {:>5.1}%  total quantity {:.3e}",
            format!("{}", r.origin),
            100.0 * r.support,
            r.total_quantity
        );
    }
}
