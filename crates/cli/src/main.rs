//! `tin-cli` binary: thin wrapper around [`tin_cli::parse_args`] and
//! [`tin_cli::run`]. See `tin-cli help` for usage.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match tin_cli::parse_args(&args) {
        Ok(command) => command,
        Err(message) => {
            eprintln!("{message}");
            eprintln!();
            eprintln!("{}", tin_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match tin_cli::run(&command) {
        Ok(output) => {
            if !output.is_empty() {
                println!("{output}");
            }
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
