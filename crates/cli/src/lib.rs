//! Command-line front-end for TIN provenance tracking.
//!
//! The library crates answer provenance questions programmatically; this
//! crate packages the most common workflows behind a small CLI so a trace can
//! be analysed without writing any Rust:
//!
//! ```text
//! tin-cli stats    <trace>                               # Table 6-style statistics
//! tin-cli run      <trace> --policy fifo [--shards 4]    # full engine run (sequential or sharded)
//!                  [--checkpoint-dir D --checkpoint-every N] [--resume] [--crash-at K]
//! tin-cli track    <trace> --policy fifo [--top 10]      # per-vertex origin summary
//! tin-cli origins  <trace> --vertex NAME [--policy KEY] [--at TIME]
//! tin-cli snapshot <trace> --policy KEY --out FILE.tsv   # persist the final state
//! tin-cli alerts   <trace> --threshold Q                 # Figure 9-style alerts
//! tin-cli influence <trace> [--top 10]                   # diffusion-model influence ranking
//! tin-cli similar  <trace> [--threshold 0.9] [--top 10]  # provenance-similarity mining
//! tin-cli generate <dataset> --scale tiny --out FILE.csv # synthetic workload export
//! ```
//!
//! Traces are `src,dst,time,qty` text files (comma / whitespace separated,
//! `#` comments allowed); vertex names may be arbitrary strings — they are
//! interned to dense ids on load (see `tin_datasets::formats`).
//!
//! Argument parsing is hand-rolled (no external dependency) and lives in
//! [`parse_args`]; command execution lives in [`run`]; both are unit-tested
//! and the binary in `main.rs` is a thin wrapper around them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Write as _;

use tin_analytics::alerts::{AlertConfig, AlertEngine};
use tin_analytics::distribution::ProvenanceDistribution;
use tin_analytics::mining::{cluster_by_provenance, most_similar_pairs};
use tin_chaos::ChaosPlan;
use tin_core::checkpoint::CheckpointStore;
use tin_core::error::TinError;
use tin_core::memory::format_bytes;
use tin_core::policy::{PolicyConfig, SelectionPolicy};
use tin_core::snapshot::ProvenanceSnapshot;
use tin_core::tracker::diffusion::DiffusionTracker;
use tin_core::tracker::{build_tracker, lazy::LazyReplayProvenance, ProvenanceTracker};
use tin_datasets::formats::{read_named_edge_list_file, NamedTin};
use tin_datasets::{DatasetKind, DatasetSpec, ScaleProfile};

/// A parsed CLI invocation.
// One `Command` is parsed per process and dropped after dispatch; the size
// spread between the flag-heavy `Run` variant and the rest buys nothing
// from indirection here.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Print Table 6-style statistics of a trace.
    Stats {
        /// Path to the trace file.
        path: String,
    },
    /// Run the full provenance engine over the trace — sequentially or on
    /// the sharded wavefront engine — and print a deterministic report
    /// (identical output for every `--shards` value, by construction).
    Run {
        /// Path to the trace file.
        path: String,
        /// Selection policy to run.
        policy: SelectionPolicy,
        /// Number of worker shards (1 = sequential `ProvenanceEngine`).
        shards: usize,
        /// How many vertices to show (by buffered quantity).
        top: usize,
        /// Directory for durable checkpoints (`None` disables them).
        checkpoint_dir: Option<String>,
        /// Take a durable checkpoint every this many interactions.
        checkpoint_every: usize,
        /// Recover from the newest valid checkpoint in `--checkpoint-dir`
        /// and replay only the tail of the trace.
        resume: bool,
        /// Fault injection: exit with an error after this many interactions,
        /// leaving the durable checkpoints behind for a later `--resume`.
        crash_at: Option<usize>,
        /// Write a metrics snapshot (counters/gauges/histograms JSON) here
        /// after the run.
        metrics_out: Option<String>,
        /// Write a Chrome trace-event JSON (Perfetto-loadable) here after
        /// the run.
        trace_out: Option<String>,
        /// Print a progress line to stderr every this many interactions
        /// (stderr, so stdout stays byte-identical across shard counts).
        progress_every: Option<usize>,
        /// Override the engines' footprint sampling interval.
        footprint_sample_every: Option<usize>,
        /// Fault-injection plan (see `tin-chaos`): worker kills/stalls at
        /// given stream positions and transient checkpoint write faults.
        chaos_plan: Option<String>,
        /// Seed for resolving chaos-plan victims deterministically.
        chaos_seed: u64,
        /// Self-healing budget for sharded runs: how many times the worker
        /// pool may be respawned after a failure (0 = fail fast).
        max_worker_restarts: usize,
        /// Stream live telemetry records (delta-encoded JSONL) here while
        /// the run is in flight.
        telemetry_out: Option<String>,
        /// Emit a telemetry record every this many interactions (sharded
        /// runs additionally emit at every sync barrier).
        telemetry_every: usize,
        /// Where to dump the black-box crash report when a run dies.
        crash_report: CrashReportMode,
    },
    /// Run a selection policy over the trace and summarise the provenance of
    /// the busiest vertices.
    Track {
        /// Path to the trace file.
        path: String,
        /// Selection policy to run.
        policy: SelectionPolicy,
        /// How many vertices to show (by buffered quantity).
        top: usize,
    },
    /// Provenance of a single vertex, optionally at a past time (replayed
    /// lazily).
    Origins {
        /// Path to the trace file.
        path: String,
        /// Raw vertex name as it appears in the trace.
        vertex: String,
        /// Selection policy to use for the query.
        policy: SelectionPolicy,
        /// Optional time horizon (defaults to the end of the trace).
        at: Option<f64>,
    },
    /// Run a policy and write the final provenance snapshot as TSV.
    Snapshot {
        /// Path to the trace file.
        path: String,
        /// Selection policy to run.
        policy: SelectionPolicy,
        /// Output TSV path.
        out: String,
    },
    /// Raise Figure 9-style alerts while streaming the trace.
    Alerts {
        /// Path to the trace file.
        path: String,
        /// Buffered-quantity threshold above which a vertex is reported.
        threshold: f64,
    },
    /// Rank origins by influence under the diffusion (copy) propagation model
    /// (the Section 8 social-network extension).
    Influence {
        /// Path to the trace file.
        path: String,
        /// How many origins to show.
        top: usize,
    },
    /// Mine the provenance state for vertices with near-identical origin
    /// compositions (co-financed accounts, Section 8 future work).
    Similar {
        /// Path to the trace file.
        path: String,
        /// Selection policy whose provenance state is mined.
        policy: SelectionPolicy,
        /// Minimum cosine similarity for a pair to be reported.
        threshold: f64,
        /// How many pairs to show.
        top: usize,
    },
    /// Generate a synthetic dataset and write it as a trace file.
    Generate {
        /// Which dataset to emulate.
        kind: DatasetKind,
        /// Scale profile.
        scale: ScaleProfile,
        /// Output CSV path.
        out: String,
    },
    /// Render a summary (latency quantiles, the imbalance trajectory, the
    /// hottest vertices) from a telemetry JSONL stream written by
    /// `run --telemetry-out`.
    Report {
        /// Path to the telemetry JSONL file.
        path: String,
    },
    /// Print the usage text.
    Help,
}

/// Where `run` dumps its black-box crash report when a run dies with a
/// terminal error (worker lost, recovery budget exhausted, corrupt
/// checkpoint).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashReportMode {
    /// Default: sharded runs write `<trace path>.crash` next to the input;
    /// sequential runs skip forensics (their failures are plain errors with
    /// no worker pool to post-mortem).
    Auto,
    /// Forensics disabled (`--crash-report-dir none`).
    Off,
    /// Write the report into this directory.
    Dir(String),
}

/// The usage text printed by `tin-cli help` and on argument errors.
pub const USAGE: &str = "\
tin-cli — provenance in temporal interaction networks

USAGE:
  tin-cli stats    <trace>
  tin-cli run      <trace> [--policy KEY] [--shards N] [--top N]
                   [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]
                   [--crash-at K] [--metrics-out FILE.json] [--trace-out FILE.json]
                   [--progress-every N] [--footprint-sample-every N]
                   [--telemetry-out FILE.jsonl] [--telemetry-every N]
                   [--crash-report-dir DIR|none]
                   [--chaos-plan PLAN] [--chaos-seed S] [--max-worker-restarts N]
  tin-cli report   <telemetry.jsonl>
  tin-cli track    <trace> [--policy KEY] [--top N]
  tin-cli origins  <trace> --vertex NAME [--policy KEY] [--at TIME]
  tin-cli snapshot <trace> [--policy KEY] --out FILE.tsv
  tin-cli alerts   <trace> [--threshold Q]
  tin-cli influence <trace> [--top N]
  tin-cli similar  <trace> [--policy KEY] [--threshold SIM] [--top N]
  tin-cli generate <bitcoin|ctu|prosper|flights|taxis> [--scale tiny|small|medium|paper] --out FILE.csv
  tin-cli help

POLICY KEYS: noprov, lrb, mrb, fifo, lifo, prop_dense, prop_sparse
TRACE FORMAT: one `src dst time qty` record per line; names may be strings.
CHECKPOINTS: --checkpoint-dir persists recovery checkpoints while running;
  --resume restarts from the newest valid one; --crash-at K injects a crash
  after K interactions (non-zero exit) for recovery drills.
OBSERVABILITY: --metrics-out writes a metrics JSON snapshot after the run;
  --trace-out writes a Chrome trace-event JSON (open in ui.perfetto.dev);
  --progress-every N prints progress to stderr every N interactions.
TELEMETRY & FORENSICS: --telemetry-out streams delta-encoded JSONL records
  every --telemetry-every N interactions (default 1000) and at every sync
  barrier; `tin-cli report` renders them. When a sharded run dies it dumps
  a crash-report directory (report.json, metrics.json, trace.json) to
  --crash-report-dir (default: <trace>.crash; `none` disables it).
SELF-HEALING & CHAOS: sharded runs recover from worker deaths automatically
  (--max-worker-restarts N respawn budget, default 3; 0 = fail fast).
  --chaos-plan injects deterministic faults: kill-worker@K[:SHARD],
  stall-worker@K:MILLIS[:SHARD], ckpt-fault@NTH[xCOUNT], comma-separated;
  --chaos-seed S picks victims for events without an explicit shard.";

/// Parse a policy key (`fifo`, `prop_sparse`, …) into a [`SelectionPolicy`].
pub fn parse_policy(key: &str) -> Result<SelectionPolicy, String> {
    SelectionPolicy::all()
        .into_iter()
        .find(|p| p.key() == key)
        .ok_or_else(|| format!("unknown policy {key:?}; expected one of: noprov, lrb, mrb, fifo, lifo, prop_dense, prop_sparse"))
}

/// Parse a dataset key into a [`DatasetKind`].
pub fn parse_dataset(key: &str) -> Result<DatasetKind, String> {
    DatasetKind::all()
        .into_iter()
        .find(|k| k.key() == key)
        .ok_or_else(|| {
            format!("unknown dataset {key:?}; expected bitcoin, ctu, prosper, flights or taxis")
        })
}

/// Parse a scale key into a [`ScaleProfile`].
pub fn parse_scale(key: &str) -> Result<ScaleProfile, String> {
    match key {
        "tiny" => Ok(ScaleProfile::Tiny),
        "small" => Ok(ScaleProfile::Small),
        "medium" => Ok(ScaleProfile::Medium),
        "paper" => Ok(ScaleProfile::Paper),
        other => Err(format!(
            "unknown scale {other:?}; expected tiny, small, medium or paper"
        )),
    }
}

/// Extract the value following a `--flag` from an option map built by
/// [`parse_args`]. Returns `None` when the flag is absent.
fn take_flag(flags: &mut Vec<(String, String)>, name: &str) -> Option<String> {
    let pos = flags.iter().position(|(k, _)| k == name)?;
    Some(flags.remove(pos).1)
}

/// Parse command-line arguments (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let Some(command) = args.first() else {
        return Ok(Command::Help);
    };
    if command == "help" || command == "--help" || command == "-h" {
        return Ok(Command::Help);
    }

    // Split the remainder into positional arguments and `--flag value` pairs.
    // Flags in `VALUELESS` are booleans: present or absent, no value.
    const VALUELESS: &[&str] = &["resume"];
    let mut positional: Vec<String> = Vec::new();
    let mut flags: Vec<(String, String)> = Vec::new();
    let mut rest = args[1..].iter().peekable();
    while let Some(arg) = rest.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if VALUELESS.contains(&name) {
                flags.push((name.to_string(), String::new()));
                continue;
            }
            let value = rest
                .next()
                .ok_or_else(|| format!("flag --{name} expects a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(arg.clone());
        }
    }
    let first_positional = |positional: &[String], what: &str| -> Result<String, String> {
        positional
            .first()
            .cloned()
            .ok_or_else(|| format!("{command}: missing {what}"))
    };

    let parsed = match command.as_str() {
        "stats" => Command::Stats {
            path: first_positional(&positional, "trace path")?,
        },
        "run" => Command::Run {
            path: first_positional(&positional, "trace path")?,
            policy: parse_policy(
                &take_flag(&mut flags, "policy").unwrap_or_else(|| "prop_sparse".into()),
            )?,
            shards: take_flag(&mut flags, "shards")
                .map(|v| {
                    v.parse::<usize>()
                        .ok()
                        .filter(|s| *s >= 1)
                        .ok_or_else(|| format!("invalid --shards {v:?} (expected an integer >= 1)"))
                })
                .transpose()?
                .unwrap_or(1),
            top: take_flag(&mut flags, "top")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid --top {v:?}"))
                })
                .transpose()?
                .unwrap_or(10),
            checkpoint_dir: take_flag(&mut flags, "checkpoint-dir"),
            checkpoint_every: take_flag(&mut flags, "checkpoint-every")
                .map(|v| {
                    v.parse::<usize>().ok().filter(|n| *n >= 1).ok_or_else(|| {
                        format!("invalid --checkpoint-every {v:?} (expected an integer >= 1)")
                    })
                })
                .transpose()?
                .unwrap_or(1000),
            resume: take_flag(&mut flags, "resume").is_some(),
            crash_at: take_flag(&mut flags, "crash-at")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid --crash-at {v:?}"))
                })
                .transpose()?,
            metrics_out: take_flag(&mut flags, "metrics-out"),
            trace_out: take_flag(&mut flags, "trace-out"),
            progress_every: take_flag(&mut flags, "progress-every")
                .map(|v| {
                    v.parse::<usize>().ok().filter(|n| *n >= 1).ok_or_else(|| {
                        format!("invalid --progress-every {v:?} (expected an integer >= 1)")
                    })
                })
                .transpose()?,
            footprint_sample_every: take_flag(&mut flags, "footprint-sample-every")
                .map(|v| {
                    v.parse::<usize>().ok().filter(|n| *n >= 1).ok_or_else(|| {
                        format!("invalid --footprint-sample-every {v:?} (expected an integer >= 1)")
                    })
                })
                .transpose()?,
            chaos_plan: take_flag(&mut flags, "chaos-plan")
                .map(|v| {
                    // Validate the grammar at parse time so typos are usage
                    // errors before any trace is loaded.
                    ChaosPlan::parse(&v)
                        .map(|_| v.clone())
                        .map_err(|e| format!("invalid --chaos-plan {v:?}: {e}"))
                })
                .transpose()?,
            chaos_seed: take_flag(&mut flags, "chaos-seed")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid --chaos-seed {v:?}"))
                })
                .transpose()?
                .unwrap_or(0),
            max_worker_restarts: take_flag(&mut flags, "max-worker-restarts")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid --max-worker-restarts {v:?}"))
                })
                .transpose()?
                .unwrap_or(3),
            telemetry_out: take_flag(&mut flags, "telemetry-out"),
            telemetry_every: take_flag(&mut flags, "telemetry-every")
                .map(|v| {
                    v.parse::<usize>().ok().filter(|n| *n >= 1).ok_or_else(|| {
                        format!("invalid --telemetry-every {v:?} (expected an integer >= 1)")
                    })
                })
                .transpose()?
                .unwrap_or(1000),
            crash_report: match take_flag(&mut flags, "crash-report-dir") {
                None => CrashReportMode::Auto,
                Some(v) if v == "none" => CrashReportMode::Off,
                Some(dir) => CrashReportMode::Dir(dir),
            },
        },
        "report" => Command::Report {
            path: first_positional(&positional, "telemetry JSONL path")?,
        },
        "track" => Command::Track {
            path: first_positional(&positional, "trace path")?,
            policy: parse_policy(
                &take_flag(&mut flags, "policy").unwrap_or_else(|| "prop_sparse".into()),
            )?,
            top: take_flag(&mut flags, "top")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid --top {v:?}"))
                })
                .transpose()?
                .unwrap_or(10),
        },
        "origins" => Command::Origins {
            path: first_positional(&positional, "trace path")?,
            vertex: take_flag(&mut flags, "vertex").ok_or("origins: missing --vertex NAME")?,
            policy: parse_policy(
                &take_flag(&mut flags, "policy").unwrap_or_else(|| "prop_sparse".into()),
            )?,
            at: take_flag(&mut flags, "at")
                .map(|v| v.parse::<f64>().map_err(|_| format!("invalid --at {v:?}")))
                .transpose()?,
        },
        "snapshot" => Command::Snapshot {
            path: first_positional(&positional, "trace path")?,
            policy: parse_policy(
                &take_flag(&mut flags, "policy").unwrap_or_else(|| "prop_sparse".into()),
            )?,
            out: take_flag(&mut flags, "out").ok_or("snapshot: missing --out FILE.tsv")?,
        },
        "alerts" => Command::Alerts {
            path: first_positional(&positional, "trace path")?,
            threshold: take_flag(&mut flags, "threshold")
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|_| format!("invalid --threshold {v:?}"))
                })
                .transpose()?
                .unwrap_or(0.0),
        },
        "influence" => Command::Influence {
            path: first_positional(&positional, "trace path")?,
            top: take_flag(&mut flags, "top")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid --top {v:?}"))
                })
                .transpose()?
                .unwrap_or(10),
        },
        "similar" => Command::Similar {
            path: first_positional(&positional, "trace path")?,
            policy: parse_policy(
                &take_flag(&mut flags, "policy").unwrap_or_else(|| "prop_sparse".into()),
            )?,
            threshold: take_flag(&mut flags, "threshold")
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|_| format!("invalid --threshold {v:?}"))
                })
                .transpose()?
                .unwrap_or(0.9),
            top: take_flag(&mut flags, "top")
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid --top {v:?}"))
                })
                .transpose()?
                .unwrap_or(10),
        },
        "generate" => Command::Generate {
            kind: parse_dataset(&first_positional(&positional, "dataset name")?)?,
            scale: parse_scale(&take_flag(&mut flags, "scale").unwrap_or_else(|| "tiny".into()))?,
            out: take_flag(&mut flags, "out").ok_or("generate: missing --out FILE.csv")?,
        },
        other => return Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    if let Some((name, _)) = flags.first() {
        return Err(format!("{command}: unknown flag --{name}"));
    }
    Ok(parsed)
}

/// Errors a CLI run can produce: either bad usage or a library error.
#[derive(Debug)]
pub enum CliError {
    /// Argument / usage error.
    Usage(String),
    /// Error raised by the underlying library (I/O, parse, config).
    Tin(TinError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Tin(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<TinError> for CliError {
    fn from(err: TinError) -> Self {
        CliError::Tin(err)
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

fn load(path: &str) -> Result<NamedTin, CliError> {
    Ok(read_named_edge_list_file(path)?)
}

fn run_policy(
    named: &NamedTin,
    policy: SelectionPolicy,
) -> Result<Box<dyn ProvenanceTracker>, CliError> {
    let mut tracker = build_tracker(&PolicyConfig::Plain(policy), named.num_vertices())?;
    tracker.process_all(&named.interactions);
    Ok(tracker)
}

fn describe_origin(named: &NamedTin, origin: tin_core::ids::Origin) -> String {
    match origin.as_vertex() {
        Some(v) => named.interner.name_of(v).unwrap_or("?").to_string(),
        None => origin.to_string(),
    }
}

/// Dump the black-box crash report for a dying sharded run. Best effort by
/// design: the caller keeps reporting the *original* failure, so a
/// forensics I/O problem only earns a stderr note.
#[allow(clippy::too_many_arguments)]
fn write_crash_report(
    dir: &std::path::Path,
    err: &CliError,
    obs: Option<tin_obs::Obs>,
    processed: u64,
    policy: &str,
    shards: usize,
    chaos_plan: Option<&str>,
    chaos_seed: Option<u64>,
    checkpoint_dir: Option<&str>,
) {
    let last_checkpoint = checkpoint_dir.and_then(|d| {
        let store = CheckpointStore::open(d).ok()?;
        let (path, _) = store.load_latest_valid().ok().flatten()?;
        let file = path.file_name()?.to_string_lossy().into_owned();
        let bytes = std::fs::metadata(&path).ok()?.len();
        Some(tin_obs::CheckpointMeta { file, bytes })
    });
    let report = tin_obs::CrashReport {
        failure_reason: err.to_string(),
        processed_interactions: processed,
        policy: policy.to_string(),
        shards: shards as u64,
        chaos_plan: chaos_plan.map(String::from),
        chaos_seed,
        last_checkpoint,
        metrics: obs.as_ref().map(tin_obs::Obs::snapshot),
        trace_json: obs.as_ref().map(|o| o.trace.to_chrome_trace()),
    };
    match report.write_to(dir) {
        Ok(_) => eprintln!("run: crash report written to {}", dir.display()),
        Err(io) => eprintln!(
            "run: failed to write crash report to {}: {io}",
            dir.display()
        ),
    }
}

/// Aggregate and render a telemetry JSONL stream (`run --telemetry-out`):
/// counter totals, latency quantiles per histogram, the load-imbalance
/// trajectory, and the hottest-vertex tables from the last record. Counters
/// and histogram count/sum are re-accumulated from the deltas; gauges,
/// quantiles and the sketches are levels, so the last record wins.
fn render_telemetry_report(path: &str) -> Result<String, CliError> {
    use std::collections::BTreeMap;
    use tin_obs::json::Value;

    fn num(v: Option<&Value>) -> u64 {
        v.and_then(Value::as_u64).unwrap_or(0)
    }

    let text = std::fs::read_to_string(path).map_err(TinError::from)?;
    let bad = |line: usize, what: &str| CliError::Usage(format!("report: {path}:{line}: {what}"));

    #[derive(Default)]
    struct Hist {
        unit: String,
        count: u64,
        sum: u64,
        max: u64,
        p50: u64,
        p90: u64,
        p99: u64,
    }
    let mut counters: BTreeMap<String, (String, u64)> = BTreeMap::new();
    let mut gauges: BTreeMap<String, (String, u64)> = BTreeMap::new();
    let mut hists: BTreeMap<String, Hist> = BTreeMap::new();
    let mut imbalance: Vec<(u64, u64, String, u64)> = Vec::new();
    let mut last: Option<Value> = None;
    let mut records = 0u64;

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| bad(lineno, &e))?;
        let full = match v.get("kind").and_then(Value::as_str) {
            Some("full") => true,
            Some("delta") => false,
            other => return Err(bad(lineno, &format!("unknown record kind {other:?}"))),
        };
        if let Some(members) = v.get("counters").and_then(Value::as_obj) {
            for (name, m) in members {
                let entry = counters.entry(name.clone()).or_default();
                if full {
                    if let Some(unit) = m.get("unit").and_then(Value::as_str) {
                        entry.0 = unit.to_string();
                    }
                    entry.1 = num(m.get("value"));
                } else {
                    entry.1 += num(Some(m));
                }
            }
        }
        if let Some(members) = v.get("gauges").and_then(Value::as_obj) {
            for (name, m) in members {
                let entry = gauges.entry(name.clone()).or_default();
                if full {
                    if let Some(unit) = m.get("unit").and_then(Value::as_str) {
                        entry.0 = unit.to_string();
                    }
                    entry.1 = num(m.get("last"));
                } else {
                    entry.1 = num(Some(m));
                }
                if name == "batch_imbalance_ratio" {
                    imbalance.push((
                        num(v.get("at")),
                        num(v.get("seq")),
                        v.get("source")
                            .and_then(Value::as_str)
                            .unwrap_or("?")
                            .to_string(),
                        entry.1,
                    ));
                }
            }
        }
        if let Some(members) = v.get("histograms").and_then(Value::as_obj) {
            for (name, m) in members {
                let h = hists.entry(name.clone()).or_default();
                if full {
                    if let Some(unit) = m.get("unit").and_then(Value::as_str) {
                        h.unit = unit.to_string();
                    }
                    h.count = num(m.get("count"));
                    h.sum = num(m.get("sum"));
                } else {
                    h.count += num(m.get("count"));
                    h.sum += num(m.get("sum"));
                }
                h.max = num(m.get("max"));
                h.p50 = num(m.get("p50"));
                h.p90 = num(m.get("p90"));
                h.p99 = num(m.get("p99"));
            }
        }
        records += 1;
        last = Some(v);
    }
    let Some(last) = last else {
        return Err(CliError::Usage(format!(
            "report: {path} has no telemetry records"
        )));
    };

    let mut out = String::new();
    writeln!(out, "telemetry report: {path}").unwrap();
    writeln!(
        out,
        "records         : {records} (last: seq {} at {} interactions, source {})",
        num(last.get("seq")),
        num(last.get("at")),
        last.get("source").and_then(Value::as_str).unwrap_or("?")
    )
    .unwrap();
    if let Some(t) = last.get("trace").filter(|t| !matches!(t, Value::Null)) {
        writeln!(
            out,
            "flight recorder : {} recorded / {} capacity, {} dropped",
            num(t.get("recorded")),
            num(t.get("capacity")),
            num(t.get("dropped"))
        )
        .unwrap();
    }
    if !counters.is_empty() {
        writeln!(out, "counters:").unwrap();
        for (name, (unit, value)) in &counters {
            writeln!(out, "  {name:<36} {value:>14} {unit}").unwrap();
        }
    }
    if !gauges.is_empty() {
        writeln!(out, "gauges (last value):").unwrap();
        for (name, (unit, value)) in &gauges {
            writeln!(out, "  {name:<36} {value:>14} {unit}").unwrap();
        }
    }
    if !hists.is_empty() {
        writeln!(out, "histograms:").unwrap();
        writeln!(
            out,
            "  {:<28} {:>9} {:>14} {:>9} {:>9} {:>9} {:>9} unit",
            "name", "count", "sum", "p50", "p90", "p99", "max"
        )
        .unwrap();
        for (name, h) in &hists {
            writeln!(
                out,
                "  {:<28} {:>9} {:>14} {:>9} {:>9} {:>9} {:>9} {}",
                name, h.count, h.sum, h.p50, h.p90, h.p99, h.max, h.unit
            )
            .unwrap();
        }
    }
    if !imbalance.is_empty() {
        writeln!(
            out,
            "imbalance trajectory (batch_imbalance_ratio, permille of mean):"
        )
        .unwrap();
        for (at, seq, source, value) in &imbalance {
            writeln!(out, "  seq {seq:>4} at {at:>10} [{source}]: {value}").unwrap();
        }
    }
    for (key, title) in [
        ("hot_vertices", "hottest vertices by touch count"),
        ("hot_migrations", "hottest vertices by migrated bytes"),
    ] {
        if let Some(entries) = last.get(key).and_then(Value::as_arr) {
            if entries.is_empty() {
                continue;
            }
            writeln!(out, "{title}:").unwrap();
            for e in entries {
                writeln!(
                    out,
                    "  vertex {:<10} weight {:>12} (error <= {})",
                    num(e.get("key")),
                    num(e.get("weight")),
                    num(e.get("error"))
                )
                .unwrap();
            }
        }
    }
    Ok(out)
}

/// Execute a parsed command, returning the text to print on stdout.
pub fn run(command: &Command) -> Result<String, CliError> {
    let mut out = String::new();
    match command {
        Command::Help => out.push_str(USAGE),

        Command::Stats { path } => {
            let named = load(path)?;
            let tin = named.to_tin()?;
            let stats = tin.stats();
            writeln!(out, "trace          : {path}").unwrap();
            writeln!(out, "#vertices      : {}", stats.num_vertices).unwrap();
            writeln!(out, "#edges         : {}", stats.num_edges).unwrap();
            writeln!(out, "#interactions  : {}", stats.num_interactions).unwrap();
            writeln!(out, "avg quantity   : {:.4}", stats.avg_quantity).unwrap();
            writeln!(out, "total quantity : {:.4}", stats.total_quantity).unwrap();
            writeln!(
                out,
                "time span      : {} .. {}",
                stats.min_time, stats.max_time
            )
            .unwrap();
        }

        Command::Run {
            path,
            policy,
            shards,
            top,
            checkpoint_dir,
            checkpoint_every,
            resume,
            crash_at,
            metrics_out,
            trace_out,
            progress_every,
            footprint_sample_every,
            chaos_plan,
            chaos_seed,
            max_worker_restarts,
            telemetry_out,
            telemetry_every,
            crash_report,
        } => {
            let named = load(path)?;
            let n = named.num_vertices();
            let config = PolicyConfig::Plain(*policy);
            // Chaos: the plan's grammar was validated at parse time;
            // resolving it against the shard count can still fail (worker
            // events on a sequential run, explicit shard out of range).
            let chaos = chaos_plan
                .as_deref()
                .map(ChaosPlan::parse)
                .transpose()
                .map_err(|e| CliError::Usage(format!("run: {e}")))?;
            // Recovery: locate the newest valid checkpoint before building
            // any engine, and refuse checkpoints that disagree with the
            // requested run (wrong policy or a different trace).
            let resumed = if *resume {
                let dir = checkpoint_dir.as_deref().ok_or_else(|| {
                    CliError::Usage("run: --resume requires --checkpoint-dir DIR".into())
                })?;
                let store = CheckpointStore::open(dir)?;
                let loaded = store.load_latest_valid()?;
                if let Some((_, checkpoint)) = &loaded {
                    if checkpoint.policy != config {
                        return Err(CliError::Usage(format!(
                            "run: checkpoint was taken under policy {:?} but --policy asks for {:?}",
                            checkpoint.policy.key(),
                            config.key()
                        )));
                    }
                    if checkpoint.num_vertices != n {
                        return Err(CliError::Usage(format!(
                            "run: checkpoint covers {} vertices but the trace has {n}",
                            checkpoint.num_vertices
                        )));
                    }
                    if checkpoint.cursor.processed > named.interactions.len() {
                        return Err(CliError::Usage(format!(
                            "run: checkpoint is ahead of the trace ({} > {} interactions)",
                            checkpoint.cursor.processed,
                            named.interactions.len()
                        )));
                    }
                }
                loaded.map(|(_, checkpoint)| checkpoint)
            } else {
                None
            };
            // A resumed run replays only the tail; `--crash-at K` truncates
            // the stream at interaction K (counted from the trace start) and
            // exits with an error afterwards, like a process crash would.
            let skip = resumed.as_ref().map_or(0, |c| c.cursor.processed);
            let end = crash_at.map_or(named.interactions.len(), |k| {
                k.clamp(skip, named.interactions.len())
            });
            let stream = &named.interactions[skip..end];
            let durable_store =
                |dir: &Option<String>| -> Result<Option<CheckpointStore>, CliError> {
                    Ok(match dir {
                        Some(dir) => {
                            let mut store = CheckpointStore::open(dir)?;
                            // ckpt-fault events fail write *attempts*; the
                            // store's bounded retry loop absorbs transient
                            // windows shorter than its attempt budget.
                            if let Some(plan) = &chaos {
                                plan.arm_checkpoint_store(&mut store);
                            }
                            Some(store)
                        }
                        None => None,
                    })
                };
            // Collect the provenance-determined results into plain data so
            // both engines print through one code path. Runtime and
            // footprint are deliberately absent: the output depends only on
            // the provenance state, which is bit-identical across shard
            // counts, so `run --shards 1` and `run --shards N` diff clean.
            // Rank first and fetch origin sets only for the surviving top-N
            // rows — in sharded mode every origins() is a channel
            // round-trip and the sets can be large. Both branches share
            // this row collection so the printed report cannot diverge
            // between `--shards 1` and `--shards N`.
            fn rank_rows(buffered: Vec<f64>, top: usize) -> Vec<(usize, f64)> {
                let mut ranked: Vec<(usize, f64)> = buffered
                    .into_iter()
                    .enumerate()
                    .filter(|(_, q)| *q > 0.0)
                    .collect();
                ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                ranked.truncate(top);
                ranked
            }
            // Observability: attach a sink only when the user asked for an
            // export, so the default run pays nothing beyond one branch.
            let want_obs = metrics_out.is_some() || trace_out.is_some();
            // Crash forensics: on by default for sharded runs (the report
            // directory is only written on a terminal failure, so a healthy
            // default run leaves nothing behind).
            let crash_dir: Option<std::path::PathBuf> = match crash_report {
                CrashReportMode::Off => None,
                CrashReportMode::Dir(dir) => Some(std::path::PathBuf::from(dir)),
                CrashReportMode::Auto => {
                    (*shards > 1).then(|| std::path::PathBuf::from(format!("{path}.crash")))
                }
            };
            let total_interactions = named.interactions.len();
            // Progress goes to stderr: stdout must stay byte-identical
            // across shard counts (the CI smoke step diffs it).
            let progress = |done: usize| {
                if let Some(every) = progress_every {
                    if done.is_multiple_of(*every) || done == total_interactions {
                        eprintln!("run: {done}/{total_interactions} interactions");
                    }
                }
            };
            let run_started = std::time::Instant::now();
            let (report, rows, obs) = if *shards <= 1 {
                if chaos.as_ref().is_some_and(ChaosPlan::has_worker_events) {
                    return Err(CliError::Usage(
                        "run: worker chaos events need --shards >= 2".into(),
                    ));
                }
                let mut engine = match &resumed {
                    Some(checkpoint) => {
                        tin_core::engine::ProvenanceEngine::resume_from(checkpoint)?
                    }
                    None => tin_core::engine::ProvenanceEngine::new(&config, n)?,
                };
                if let Some(every) = footprint_sample_every {
                    engine = engine.with_footprint_sample_interval(*every)?;
                }
                if want_obs {
                    engine = engine.with_observability(tin_obs::Obs::new());
                }
                if let Some(tpath) = telemetry_out {
                    let sink = tin_obs::Telemetry::create(tpath).map_err(TinError::from)?;
                    engine = engine.with_telemetry(sink, *telemetry_every)?;
                }
                if let Some(store) = durable_store(checkpoint_dir)? {
                    engine = engine.with_durable_checkpoints(store, *checkpoint_every)?;
                }
                for (i, r) in stream.iter().enumerate() {
                    engine.process(r)?;
                    progress(skip + i + 1);
                }
                if let Some(k) = crash_at {
                    return Err(CliError::Usage(format!(
                        "run: injected crash at interaction {k} (durable checkpoints retained)"
                    )));
                }
                engine.emit_telemetry("final")?;
                let buffered = (0..n)
                    .map(|i| engine.buffered(tin_core::ids::VertexId::from(i)))
                    .collect();
                let rows: Vec<_> = rank_rows(buffered, *top)
                    .into_iter()
                    .map(|(i, q)| (i, q, engine.origins(tin_core::ids::VertexId::from(i))))
                    .collect();
                let obs = engine.take_obs();
                (engine.report(), rows, obs)
            } else {
                let mut driver = chaos
                    .as_ref()
                    .map(|plan| plan.driver(*shards, *chaos_seed))
                    .transpose()
                    .map_err(|e| CliError::Usage(format!("run: {e}")))?;
                let mut engine = match &resumed {
                    Some(checkpoint) => tin_shard::ShardedEngine::resume_from(checkpoint, *shards)?,
                    None => tin_shard::ShardedEngine::new(&config, n, *shards)?,
                };
                // Sharded runs self-heal by default: worker deaths trigger
                // respawn + snapshot restore + deterministic replay, so the
                // report below is byte-identical to an undisturbed run.
                if *max_worker_restarts > 0 {
                    engine = engine.with_self_healing(tin_shard::RecoveryPolicy {
                        max_worker_restarts: *max_worker_restarts,
                        ..tin_shard::RecoveryPolicy::default()
                    })?;
                }
                if let Some(every) = footprint_sample_every {
                    engine = engine.with_footprint_sample_interval(*every)?;
                }
                // Forensics needs the flight recorder and the metrics to be
                // live when the run dies, so crash reporting implies
                // observability (it does not change stdout — pinned by the
                // instrumentation-equivalence tests).
                if want_obs || crash_dir.is_some() {
                    engine = engine.with_observability(tin_obs::Obs::new())?;
                }
                if let Some(tpath) = telemetry_out {
                    let sink = tin_obs::Telemetry::create(tpath).map_err(TinError::from)?;
                    engine = engine.with_telemetry(sink, *telemetry_every)?;
                }
                if let Some(store) = durable_store(checkpoint_dir)? {
                    engine = engine.with_durable_checkpoints(store, *checkpoint_every)?;
                }
                let mut processed = skip;
                let streamed = (|| -> Result<(), CliError> {
                    for (i, r) in stream.iter().enumerate() {
                        if let Some(driver) = driver.as_mut() {
                            driver.before_interaction(skip + i, &mut engine)?;
                        }
                        engine.process(r)?;
                        processed = skip + i + 1;
                        progress(processed);
                    }
                    engine.emit_telemetry("final")?;
                    Ok(())
                })();
                if let Err(err) = streamed {
                    // Best effort: the black box must never mask the
                    // failure it is documenting.
                    if let Some(dir) = &crash_dir {
                        write_crash_report(
                            dir,
                            &err,
                            engine.take_obs_unsynced(),
                            processed as u64,
                            policy.key(),
                            *shards,
                            chaos_plan.as_deref(),
                            chaos_plan.as_ref().map(|_| *chaos_seed),
                            checkpoint_dir.as_deref(),
                        );
                    }
                    return Err(err);
                }
                if let Some(k) = crash_at {
                    return Err(CliError::Usage(format!(
                        "run: injected crash at interaction {k} (durable checkpoints retained)"
                    )));
                }
                let buffered = engine.buffered_all()?;
                let ranked = rank_rows(buffered, *top);
                let mut rows = Vec::with_capacity(ranked.len());
                for (i, q) in ranked {
                    rows.push((i, q, engine.origins(tin_core::ids::VertexId::from(i))?));
                }
                let obs = engine.take_obs()?;
                (engine.report()?, rows, obs)
            };
            if let Some(mut obs) = obs {
                // One whole-run span on the coordinator track, so even a
                // sequential trace (no per-batch spans) has a timeline.
                obs.trace.record("run", 0, run_started);
                if let Some(path) = metrics_out {
                    std::fs::write(path, obs.snapshot().to_json()).map_err(TinError::from)?;
                }
                if let Some(path) = trace_out {
                    std::fs::write(path, obs.trace.to_chrome_trace()).map_err(TinError::from)?;
                }
            }
            writeln!(out, "policy          : {}", policy.label()).unwrap();
            writeln!(out, "interactions    : {}", report.interactions).unwrap();
            writeln!(out, "total quantity  : {:.4}", report.total_quantity).unwrap();
            writeln!(out, "newborn quantity: {:.4}", report.newborn_quantity).unwrap();
            writeln!(out, "relayed quantity: {:.4}", report.relayed_quantity).unwrap();
            writeln!(out, "top vertices by buffered quantity:").unwrap();
            for (i, buffered, origins) in &rows {
                let v = tin_core::ids::VertexId::from(*i);
                let name = named.interner.name_of(v).unwrap_or("?");
                let dist = ProvenanceDistribution::from_origins(origins);
                let top_origins: Vec<String> = dist
                    .shares
                    .iter()
                    .take(3)
                    .map(|(o, p)| format!("{} {:.0}%", describe_origin(&named, *o), p * 100.0))
                    .collect();
                writeln!(
                    out,
                    "  {name}: buffered {buffered:.4} from {} origins [{}]",
                    origins.len(),
                    top_origins.join(", ")
                )
                .unwrap();
            }
        }

        Command::Track { path, policy, top } => {
            let named = load(path)?;
            let tracker = run_policy(&named, *policy)?;
            writeln!(out, "policy: {}", policy.label()).unwrap();
            writeln!(
                out,
                "provenance state: {}",
                format_bytes(tracker.footprint().total())
            )
            .unwrap();
            // Rank vertices by buffered quantity.
            let mut ranked: Vec<(usize, f64)> = (0..named.num_vertices())
                .map(|i| (i, tracker.buffered(tin_core::ids::VertexId::from(i))))
                .filter(|(_, q)| *q > 0.0)
                .collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            ranked.truncate(*top);
            for (i, buffered) in ranked {
                let v = tin_core::ids::VertexId::from(i);
                let name = named.interner.name_of(v).unwrap_or("?");
                let origins = tracker.origins(v);
                let dist = ProvenanceDistribution::from_origins(&origins);
                let top_origins: Vec<String> = dist
                    .shares
                    .iter()
                    .take(3)
                    .map(|(o, p)| format!("{} {:.0}%", describe_origin(&named, *o), p * 100.0))
                    .collect();
                writeln!(
                    out,
                    "{name}: buffered {buffered:.4} from {} origins [{}]",
                    origins.len(),
                    top_origins.join(", ")
                )
                .unwrap();
            }
        }

        Command::Origins {
            path,
            vertex,
            policy,
            at,
        } => {
            let named = load(path)?;
            let v = named.interner.get(vertex).ok_or_else(|| {
                CliError::Usage(format!("vertex {vertex:?} does not appear in the trace"))
            })?;
            let origins = match at {
                None => run_policy(&named, *policy)?.origins(v),
                Some(t) => {
                    let mut lazy = LazyReplayProvenance::new(
                        named.num_vertices(),
                        PolicyConfig::Plain(*policy),
                    );
                    lazy.process_all(&named.interactions);
                    lazy.origins_at(v, *t)?
                }
            };
            let when = at.map(|t| format!(" at t={t}")).unwrap_or_default();
            writeln!(
                out,
                "provenance of {vertex}{when} under {} ({} origins, total {:.4}):",
                policy.label(),
                origins.len(),
                origins.total()
            )
            .unwrap();
            for (origin, qty) in origins.iter() {
                writeln!(
                    out,
                    "  {:>12.4}  from {}",
                    qty,
                    describe_origin(&named, origin)
                )
                .unwrap();
            }
        }

        Command::Snapshot {
            path,
            policy,
            out: out_path,
        } => {
            let named = load(path)?;
            let tracker = run_policy(&named, *policy)?;
            let time = named
                .interactions
                .last()
                .map(|r| r.time.value())
                .unwrap_or(0.0);
            let snapshot = ProvenanceSnapshot::capture(tracker.as_ref(), time);
            let file = std::fs::File::create(out_path).map_err(TinError::from)?;
            snapshot.write_tsv(file)?;
            writeln!(
                out,
                "wrote snapshot of {} vertices ({} non-empty) to {out_path}",
                snapshot.num_vertices(),
                snapshot.non_empty_vertices()
            )
            .unwrap();
        }

        Command::Alerts { path, threshold } => {
            let named = load(path)?;
            let tin = named.to_tin()?;
            let threshold = if *threshold > 0.0 {
                *threshold
            } else {
                // Default: 20× the average interaction quantity, like the
                // harness's Figure 9 configuration.
                tin.stats().avg_quantity * 20.0
            };
            let mut tracker = build_tracker(
                &PolicyConfig::Plain(SelectionPolicy::ProportionalSparse),
                named.num_vertices(),
            )?;
            let alerts = AlertEngine::run_stream(
                tracker.as_mut(),
                &named.interactions,
                AlertConfig {
                    quantity_threshold: threshold,
                    require_no_neighbor_origin: true,
                },
            );
            writeln!(
                out,
                "{} alerts over {} interactions (threshold {threshold:.4}):",
                alerts.len(),
                named.interactions.len()
            )
            .unwrap();
            for alert in &alerts {
                let name = named.interner.name_of(alert.vertex).unwrap_or("?");
                writeln!(
                    out,
                    "  t={:<10} {} accumulated {:.4} from {} vertices{}",
                    alert.time,
                    name,
                    alert.buffered,
                    alert.contributing_vertices,
                    if alert.is_few_sources() {
                        "  [few sources]"
                    } else {
                        ""
                    }
                )
                .unwrap();
            }
        }

        Command::Influence { path, top } => {
            let named = load(path)?;
            let mut tracker = DiffusionTracker::new(named.num_vertices());
            tracker.process_all(&named.interactions);
            writeln!(
                out,
                "influence ranking under diffusion (copy) propagation, {} interactions:",
                named.interactions.len()
            )
            .unwrap();
            for (origin, influence) in tracker.influence_ranking(*top) {
                let name = named.interner.name_of(origin).unwrap_or("?");
                writeln!(
                    out,
                    "  {name}: influence {influence:.4}, reach {} vertices, generated {:.4}",
                    tracker.reach_of(origin),
                    tracker.generated_per_vertex()[origin.index()]
                )
                .unwrap();
            }
        }

        Command::Similar {
            path,
            policy,
            threshold,
            top,
        } => {
            let named = load(path)?;
            let tracker = run_policy(&named, *policy)?;
            let pairs = most_similar_pairs(tracker.as_ref(), *threshold, *top);
            let clusters = cluster_by_provenance(tracker.as_ref(), *threshold);
            writeln!(
                out,
                "provenance-similarity mining under {} (cosine >= {threshold}):",
                policy.label()
            )
            .unwrap();
            writeln!(
                out,
                "{} clusters over {} occupied vertices ({} non-singleton)",
                clusters.len(),
                clusters.iter().map(|c| c.len()).sum::<usize>(),
                clusters.iter().filter(|c| c.len() > 1).count()
            )
            .unwrap();
            if pairs.is_empty() {
                writeln!(out, "no vertex pair reaches the similarity threshold").unwrap();
            }
            for pair in &pairs {
                writeln!(
                    out,
                    "  {} ~ {}  similarity {:.4}",
                    named.interner.name_of(pair.a).unwrap_or("?"),
                    named.interner.name_of(pair.b).unwrap_or("?"),
                    pair.similarity
                )
                .unwrap();
            }
        }

        Command::Generate {
            kind,
            scale,
            out: out_path,
        } => {
            let spec = DatasetSpec::new(*kind, *scale);
            let stream = tin_datasets::generate(&spec);
            tin_datasets::io::write_csv_file(out_path, &stream)?;
            writeln!(
                out,
                "wrote {} synthetic {} interactions over {} vertices to {out_path}",
                stream.len(),
                kind.label(),
                spec.num_vertices()
            )
            .unwrap();
        }

        Command::Report { path } => {
            out = render_telemetry_report(path)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tin_cli_{}_{name}", std::process::id()))
    }

    const TRACE: &str = "src,dst,time,qty\nexchange,alice,1,100\nalice,bob,2,60\nbob,carol,3,30\nmallory,carol,4,5\n";

    fn write_trace() -> std::path::PathBuf {
        let path = temp_path("trace.csv");
        std::fs::write(&path, TRACE).unwrap();
        path
    }

    #[test]
    fn parses_every_command() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&args(&["stats", "a.csv"])).unwrap(),
            Command::Stats {
                path: "a.csv".into()
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "run", "a.csv", "--policy", "fifo", "--shards", "4"
            ]))
            .unwrap(),
            Command::Run {
                path: "a.csv".into(),
                policy: SelectionPolicy::Fifo,
                shards: 4,
                top: 10,
                checkpoint_dir: None,
                checkpoint_every: 1000,
                resume: false,
                crash_at: None,
                metrics_out: None,
                trace_out: None,
                progress_every: None,
                footprint_sample_every: None,
                chaos_plan: None,
                chaos_seed: 0,
                max_worker_restarts: 3,
                telemetry_out: None,
                telemetry_every: 1000,
                crash_report: CrashReportMode::Auto
            }
        );
        assert_eq!(
            parse_args(&args(&["run", "a.csv"])).unwrap(),
            Command::Run {
                path: "a.csv".into(),
                policy: SelectionPolicy::ProportionalSparse,
                shards: 1,
                top: 10,
                checkpoint_dir: None,
                checkpoint_every: 1000,
                resume: false,
                crash_at: None,
                metrics_out: None,
                trace_out: None,
                progress_every: None,
                footprint_sample_every: None,
                chaos_plan: None,
                chaos_seed: 0,
                max_worker_restarts: 3,
                telemetry_out: None,
                telemetry_every: 1000,
                crash_report: CrashReportMode::Auto
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "run",
                "a.csv",
                "--checkpoint-dir",
                "ckpts",
                "--checkpoint-every",
                "50",
                "--resume",
                "--crash-at",
                "7"
            ]))
            .unwrap(),
            Command::Run {
                path: "a.csv".into(),
                policy: SelectionPolicy::ProportionalSparse,
                shards: 1,
                top: 10,
                checkpoint_dir: Some("ckpts".into()),
                checkpoint_every: 50,
                resume: true,
                crash_at: Some(7),
                metrics_out: None,
                trace_out: None,
                progress_every: None,
                footprint_sample_every: None,
                chaos_plan: None,
                chaos_seed: 0,
                max_worker_restarts: 3,
                telemetry_out: None,
                telemetry_every: 1000,
                crash_report: CrashReportMode::Auto
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "run",
                "a.csv",
                "--metrics-out",
                "m.json",
                "--trace-out",
                "t.json",
                "--progress-every",
                "500",
                "--footprint-sample-every",
                "256"
            ]))
            .unwrap(),
            Command::Run {
                path: "a.csv".into(),
                policy: SelectionPolicy::ProportionalSparse,
                shards: 1,
                top: 10,
                checkpoint_dir: None,
                checkpoint_every: 1000,
                resume: false,
                crash_at: None,
                metrics_out: Some("m.json".into()),
                trace_out: Some("t.json".into()),
                progress_every: Some(500),
                footprint_sample_every: Some(256),
                chaos_plan: None,
                chaos_seed: 0,
                max_worker_restarts: 3,
                telemetry_out: None,
                telemetry_every: 1000,
                crash_report: CrashReportMode::Auto
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "run",
                "a.csv",
                "--shards",
                "2",
                "--chaos-plan",
                "kill-worker@450,ckpt-fault@2x2",
                "--chaos-seed",
                "7",
                "--max-worker-restarts",
                "5"
            ]))
            .unwrap(),
            Command::Run {
                path: "a.csv".into(),
                policy: SelectionPolicy::ProportionalSparse,
                shards: 2,
                top: 10,
                checkpoint_dir: None,
                checkpoint_every: 1000,
                resume: false,
                crash_at: None,
                metrics_out: None,
                trace_out: None,
                progress_every: None,
                footprint_sample_every: None,
                chaos_plan: Some("kill-worker@450,ckpt-fault@2x2".into()),
                chaos_seed: 7,
                max_worker_restarts: 5,
                telemetry_out: None,
                telemetry_every: 1000,
                crash_report: CrashReportMode::Auto
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "run",
                "a.csv",
                "--telemetry-out",
                "t.jsonl",
                "--telemetry-every",
                "50",
                "--crash-report-dir",
                "box"
            ]))
            .unwrap(),
            Command::Run {
                path: "a.csv".into(),
                policy: SelectionPolicy::ProportionalSparse,
                shards: 1,
                top: 10,
                checkpoint_dir: None,
                checkpoint_every: 1000,
                resume: false,
                crash_at: None,
                metrics_out: None,
                trace_out: None,
                progress_every: None,
                footprint_sample_every: None,
                chaos_plan: None,
                chaos_seed: 0,
                max_worker_restarts: 3,
                telemetry_out: Some("t.jsonl".into()),
                telemetry_every: 50,
                crash_report: CrashReportMode::Dir("box".into())
            }
        );
        // `--crash-report-dir none` disables forensics explicitly.
        match parse_args(&args(&["run", "a.csv", "--crash-report-dir", "none"])).unwrap() {
            Command::Run { crash_report, .. } => assert_eq!(crash_report, CrashReportMode::Off),
            other => panic!("expected a run command, got {other:?}"),
        }
        assert_eq!(
            parse_args(&args(&["report", "t.jsonl"])).unwrap(),
            Command::Report {
                path: "t.jsonl".into()
            }
        );
        assert_eq!(
            parse_args(&args(&["track", "a.csv", "--policy", "fifo", "--top", "3"])).unwrap(),
            Command::Track {
                path: "a.csv".into(),
                policy: SelectionPolicy::Fifo,
                top: 3
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "origins", "a.csv", "--vertex", "alice", "--at", "5.5"
            ]))
            .unwrap(),
            Command::Origins {
                path: "a.csv".into(),
                vertex: "alice".into(),
                policy: SelectionPolicy::ProportionalSparse,
                at: Some(5.5)
            }
        );
        assert_eq!(
            parse_args(&args(&["snapshot", "a.csv", "--out", "s.tsv"])).unwrap(),
            Command::Snapshot {
                path: "a.csv".into(),
                policy: SelectionPolicy::ProportionalSparse,
                out: "s.tsv".into()
            }
        );
        assert_eq!(
            parse_args(&args(&["alerts", "a.csv", "--threshold", "50"])).unwrap(),
            Command::Alerts {
                path: "a.csv".into(),
                threshold: 50.0
            }
        );
        assert_eq!(
            parse_args(&args(&[
                "generate", "taxis", "--scale", "tiny", "--out", "t.csv"
            ]))
            .unwrap(),
            Command::Generate {
                kind: DatasetKind::Taxis,
                scale: ScaleProfile::Tiny,
                out: "t.csv".into()
            }
        );
        assert_eq!(
            parse_args(&args(&["influence", "a.csv", "--top", "5"])).unwrap(),
            Command::Influence {
                path: "a.csv".into(),
                top: 5
            }
        );
        assert_eq!(
            parse_args(&args(&["similar", "a.csv", "--threshold", "0.8"])).unwrap(),
            Command::Similar {
                path: "a.csv".into(),
                policy: SelectionPolicy::ProportionalSparse,
                threshold: 0.8,
                top: 10
            }
        );
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&["stats"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--shards", "0"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--shards", "many"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--checkpoint-every", "0"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--checkpoint-every", "x"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--crash-at", "soon"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--checkpoint-dir"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--progress-every", "0"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--progress-every", "x"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--footprint-sample-every", "0"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--metrics-out"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--trace-out"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--chaos-plan", "explode@now"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--chaos-plan", "kill-worker@"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--chaos-seed", "entropy"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--max-worker-restarts", "x"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--telemetry-out"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--telemetry-every", "0"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--telemetry-every", "x"])).is_err());
        assert!(parse_args(&args(&["run", "a.csv", "--crash-report-dir"])).is_err());
        assert!(parse_args(&args(&["report"])).is_err());
        assert!(parse_args(&args(&["influence", "a.csv", "--top", "lots"])).is_err());
        assert!(parse_args(&args(&["similar", "a.csv", "--threshold", "high"])).is_err());
        assert!(parse_args(&args(&["track", "a.csv", "--policy", "bogus"])).is_err());
        assert!(parse_args(&args(&["track", "a.csv", "--top", "many"])).is_err());
        assert!(parse_args(&args(&["track", "a.csv", "--policy"])).is_err());
        assert!(parse_args(&args(&["track", "a.csv", "--bogus", "1"])).is_err());
        assert!(parse_args(&args(&["origins", "a.csv"])).is_err());
        assert!(parse_args(&args(&["snapshot", "a.csv"])).is_err());
        assert!(parse_args(&args(&["generate", "nonsense", "--out", "x"])).is_err());
        assert!(parse_args(&args(&[
            "generate", "taxis", "--scale", "huge", "--out", "x"
        ]))
        .is_err());
    }

    #[test]
    fn key_parsers_cover_all_variants() {
        for policy in SelectionPolicy::all() {
            assert_eq!(parse_policy(policy.key()).unwrap(), policy);
        }
        for kind in DatasetKind::all() {
            assert_eq!(parse_dataset(kind.key()).unwrap(), kind);
        }
        for scale in ["tiny", "small", "medium", "paper"] {
            assert!(parse_scale(scale).is_ok());
        }
        assert!(parse_policy("x").is_err());
        assert!(parse_dataset("x").is_err());
        assert!(parse_scale("x").is_err());
    }

    #[test]
    fn stats_and_track_run_on_a_trace() {
        let path = write_trace();
        let out = run(&Command::Stats {
            path: path.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(out.contains("#vertices      : 5"));
        assert!(out.contains("#interactions  : 4"));

        let out = run(&Command::Track {
            path: path.to_string_lossy().into_owned(),
            policy: SelectionPolicy::Fifo,
            top: 10,
        })
        .unwrap();
        assert!(out.contains("policy: FIFO"));
        assert!(out.contains("carol"));
        std::fs::remove_file(path).ok();
    }

    /// The `run` command's whole point: the stdout report is byte-identical
    /// for every shard count (the CI smoke step diffs `--shards 1` against
    /// `--shards 2` on a generated dataset).
    #[test]
    fn run_output_is_identical_across_shard_counts() {
        let path = write_trace();
        let path_str = path.to_string_lossy().into_owned();
        let mut outputs = Vec::new();
        for shards in [1usize, 2, 3] {
            let out = run(&Command::Run {
                path: path_str.clone(),
                policy: SelectionPolicy::ProportionalSparse,
                shards,
                top: 10,
                checkpoint_dir: None,
                checkpoint_every: 1000,
                resume: false,
                crash_at: None,
                metrics_out: None,
                trace_out: None,
                progress_every: None,
                footprint_sample_every: None,
                chaos_plan: None,
                chaos_seed: 0,
                max_worker_restarts: 3,
                telemetry_out: None,
                telemetry_every: 1000,
                crash_report: CrashReportMode::Auto,
            })
            .unwrap();
            assert!(out.contains("interactions    : 4"));
            assert!(out.contains("carol"));
            outputs.push(out);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
        std::fs::remove_file(path).ok();
    }

    /// `--metrics-out` / `--trace-out` write well-formed exports for both
    /// engines, and instrumentation leaves the stdout report untouched.
    #[test]
    fn run_exports_metrics_and_trace_files() {
        let path = write_trace();
        let path_str = path.to_string_lossy().into_owned();
        let cmd = |shards: usize, metrics: Option<String>, trace: Option<String>| Command::Run {
            path: path_str.clone(),
            policy: SelectionPolicy::ProportionalSparse,
            shards,
            top: 10,
            checkpoint_dir: None,
            checkpoint_every: 1000,
            resume: false,
            crash_at: None,
            progress_every: metrics.as_ref().map(|_| 2),
            footprint_sample_every: metrics.as_ref().map(|_| 1),
            metrics_out: metrics,
            trace_out: trace,
            chaos_plan: None,
            chaos_seed: 0,
            max_worker_restarts: 3,
            telemetry_out: None,
            telemetry_every: 1000,
            crash_report: CrashReportMode::Auto,
        };
        for shards in [1usize, 2] {
            let metrics_path = temp_path(&format!("metrics_{shards}.json"));
            let trace_path = temp_path(&format!("trace_{shards}.json"));
            let baseline = run(&cmd(shards, None, None)).unwrap();
            let instrumented = run(&cmd(
                shards,
                Some(metrics_path.to_string_lossy().into_owned()),
                Some(trace_path.to_string_lossy().into_owned()),
            ))
            .unwrap();
            assert_eq!(instrumented, baseline, "instrumentation changed stdout");
            let metrics = std::fs::read_to_string(&metrics_path).unwrap();
            assert!(metrics.contains("\"schema\": 2"));
            assert!(metrics.contains("\"counters\""));
            assert!(metrics.contains("\"histograms\""));
            if shards == 1 {
                assert!(metrics.contains("\"tracker_latency_ns\""));
            } else {
                assert!(metrics.contains("\"shard_local_interactions_total\""));
            }
            let trace = std::fs::read_to_string(&trace_path).unwrap();
            assert!(trace.contains("\"traceEvents\""));
            assert!(trace.contains("\"dropped_events\""));
            std::fs::remove_file(&metrics_path).ok();
            std::fs::remove_file(&trace_path).ok();
        }
        std::fs::remove_file(path).ok();
    }

    /// `--telemetry-out` streams JSONL while the run is live (first record
    /// `full`, then deltas, ending with a `final` record), the stdout
    /// report stays untouched, and `tin-cli report` renders the stream.
    #[test]
    fn run_streams_telemetry_and_report_renders_it() {
        let path = write_trace();
        let path_str = path.to_string_lossy().into_owned();
        let cmd = |shards: usize, telemetry: Option<String>| Command::Run {
            path: path_str.clone(),
            policy: SelectionPolicy::ProportionalSparse,
            shards,
            top: 10,
            checkpoint_dir: None,
            checkpoint_every: 1000,
            resume: false,
            crash_at: None,
            metrics_out: None,
            trace_out: None,
            progress_every: None,
            footprint_sample_every: None,
            chaos_plan: None,
            chaos_seed: 0,
            max_worker_restarts: 3,
            telemetry_out: telemetry,
            telemetry_every: 2,
            crash_report: CrashReportMode::Off,
        };
        for shards in [1usize, 2] {
            let jsonl_path = temp_path(&format!("telemetry_{shards}.jsonl"));
            let baseline = run(&cmd(shards, None)).unwrap();
            let streamed = run(&cmd(
                shards,
                Some(jsonl_path.to_string_lossy().into_owned()),
            ))
            .unwrap();
            assert_eq!(streamed, baseline, "telemetry changed stdout");
            let text = std::fs::read_to_string(&jsonl_path).unwrap();
            let lines: Vec<&str> = text.lines().collect();
            assert!(
                lines.len() >= 3,
                "expected interval + final records:\n{text}"
            );
            assert!(lines[0].contains("\"kind\": \"full\""));
            assert!(lines[1..].iter().all(|l| l.contains("\"kind\": \"delta\"")));
            let last = lines.last().unwrap();
            assert!(last.contains("\"source\": \"final\""));
            assert!(last.contains("\"at\": 4"));

            let rendered = run(&Command::Report {
                path: jsonl_path.to_string_lossy().into_owned(),
            })
            .unwrap();
            assert!(rendered.contains("records         : "));
            assert!(rendered.contains("histograms:"));
            if shards == 1 {
                assert!(rendered.contains("tracker_latency_ns"));
                assert!(rendered.contains("hottest vertices by touch count"));
            } else {
                assert!(rendered.contains("shard_local_interactions_total"));
            }
            std::fs::remove_file(&jsonl_path).ok();
        }
        // A missing stream surfaces as an I/O error, not a panic.
        assert!(matches!(
            run(&Command::Report {
                path: "/definitely/not/here.jsonl".into()
            }),
            Err(CliError::Tin(TinError::Io(_)))
        ));
        std::fs::remove_file(path).ok();
    }

    /// A worker kill with the recovery budget disabled is terminal — and
    /// the dying sharded run leaves a parseable black-box crash report
    /// (report.json + final metrics + Perfetto-loadable trace) behind.
    #[test]
    fn fatal_worker_loss_leaves_a_crash_report() {
        use tin_obs::json::Value;
        let path = write_trace();
        let path_str = path.to_string_lossy().into_owned();
        let report_dir = temp_path("crash_box");
        let ckpt_dir = temp_path("crash_box_ckpts");
        let _ = std::fs::remove_dir_all(&report_dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
        let cmd = Command::Run {
            path: path_str.clone(),
            policy: SelectionPolicy::ProportionalSparse,
            shards: 2,
            top: 10,
            checkpoint_dir: Some(ckpt_dir.to_string_lossy().into_owned()),
            checkpoint_every: 1,
            resume: false,
            crash_at: None,
            metrics_out: None,
            trace_out: None,
            progress_every: None,
            footprint_sample_every: None,
            chaos_plan: Some("kill-worker@2".into()),
            chaos_seed: 0,
            max_worker_restarts: 0,
            telemetry_out: None,
            telemetry_every: 1000,
            crash_report: CrashReportMode::Dir(report_dir.to_string_lossy().into_owned()),
        };
        assert!(matches!(
            run(&cmd),
            Err(CliError::Tin(TinError::WorkerLost { .. }))
        ));
        let report = std::fs::read_to_string(report_dir.join("report.json")).unwrap();
        let v = Value::parse(&report).unwrap();
        assert!(v
            .get("failure_reason")
            .and_then(Value::as_str)
            .unwrap()
            .contains("worker"));
        assert!(
            v.get("processed_interactions")
                .and_then(Value::as_u64)
                .unwrap()
                >= 2
        );
        assert_eq!(
            v.get("chaos_plan").and_then(Value::as_str),
            Some("kill-worker@2")
        );
        assert_eq!(v.get("chaos_seed").and_then(Value::as_u64), Some(0));
        assert_eq!(v.get("shards").and_then(Value::as_u64), Some(2));
        assert_ne!(v.get("last_checkpoint"), Some(&Value::Null));
        let metrics = std::fs::read_to_string(report_dir.join("metrics.json")).unwrap();
        let m = Value::parse(&metrics).unwrap();
        assert_eq!(m.get("schema").and_then(Value::as_u64), Some(2));
        let trace = std::fs::read_to_string(report_dir.join("trace.json")).unwrap();
        let t = Value::parse(&trace).unwrap();
        assert!(t.get("traceEvents").and_then(Value::as_arr).is_some());
        std::fs::remove_dir_all(&report_dir).ok();
        std::fs::remove_dir_all(&ckpt_dir).ok();
        std::fs::remove_file(path).ok();
    }

    /// The CI crash-recovery smoke in miniature: run with durable
    /// checkpoints and an injected crash, then `--resume` and check the
    /// report is byte-identical to an uninterrupted run — sequential and
    /// sharded, including a resumed shard count that differs from the
    /// crashed run's.
    #[test]
    fn crash_then_resume_matches_uninterrupted_run() {
        let path = write_trace();
        let path_str = path.to_string_lossy().into_owned();
        let cmd = |policy: SelectionPolicy,
                   shards: usize,
                   dir: Option<&std::path::Path>,
                   resume: bool,
                   crash_at: Option<usize>| {
            Command::Run {
                path: path_str.clone(),
                policy,
                shards,
                top: 10,
                checkpoint_dir: dir.map(|d| d.to_string_lossy().into_owned()),
                checkpoint_every: 1,
                resume,
                crash_at,
                metrics_out: None,
                trace_out: None,
                progress_every: None,
                footprint_sample_every: None,
                chaos_plan: None,
                chaos_seed: 0,
                max_worker_restarts: 3,
                telemetry_out: None,
                telemetry_every: 1000,
                crash_report: CrashReportMode::Auto,
            }
        };
        let prop = SelectionPolicy::ProportionalSparse;
        let uninterrupted = run(&cmd(prop, 1, None, false, None)).unwrap();

        for (crash_shards, resume_shards) in [(1usize, 1usize), (1, 2), (2, 1), (2, 3)] {
            let dir = temp_path(&format!("ckpt_{crash_shards}_{resume_shards}"));
            let _ = std::fs::remove_dir_all(&dir);
            match run(&cmd(prop, crash_shards, Some(&dir), false, Some(3))) {
                Err(CliError::Usage(msg)) => assert!(msg.contains("injected crash"), "{msg}"),
                other => panic!("expected the injected crash to error, got {other:?}"),
            }
            let resumed = run(&cmd(prop, resume_shards, Some(&dir), true, None)).unwrap();
            assert_eq!(
                resumed, uninterrupted,
                "resume mismatch for shards {crash_shards} -> {resume_shards}"
            );
            std::fs::remove_dir_all(&dir).ok();
        }

        // `--resume` with an empty checkpoint directory starts from scratch.
        let dir = temp_path("ckpt_empty");
        let _ = std::fs::remove_dir_all(&dir);
        let fresh = run(&cmd(prop, 1, Some(&dir), true, None)).unwrap();
        assert_eq!(fresh, uninterrupted);
        std::fs::remove_dir_all(&dir).ok();

        // `--resume` without a checkpoint directory is a usage error.
        assert!(matches!(
            run(&cmd(prop, 1, None, true, None)),
            Err(CliError::Usage(_))
        ));

        // A checkpoint taken under another policy is refused on resume.
        let dir = temp_path("ckpt_policy_mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = run(&cmd(SelectionPolicy::Fifo, 1, Some(&dir), false, Some(3)));
        match run(&cmd(prop, 1, Some(&dir), true, None)) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("policy"), "{msg}"),
            other => panic!("expected a policy-mismatch error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(path).ok();
    }

    /// The CI chaos smoke in miniature: a sharded run with an injected
    /// worker kill self-heals and prints stdout byte-identical to both the
    /// undisturbed sharded run and the sequential reference.
    #[test]
    fn chaos_kill_output_matches_undisturbed_run() {
        let path = write_trace();
        let path_str = path.to_string_lossy().into_owned();
        let cmd =
            |shards: usize, chaos_plan: Option<&str>, max_worker_restarts: usize| Command::Run {
                path: path_str.clone(),
                policy: SelectionPolicy::ProportionalSparse,
                shards,
                top: 10,
                checkpoint_dir: None,
                checkpoint_every: 1000,
                resume: false,
                crash_at: None,
                metrics_out: None,
                trace_out: None,
                progress_every: None,
                footprint_sample_every: None,
                chaos_plan: chaos_plan.map(String::from),
                chaos_seed: 0,
                max_worker_restarts,
                telemetry_out: None,
                telemetry_every: 1000,
                crash_report: CrashReportMode::Off,
            };
        let reference = run(&cmd(1, None, 3)).unwrap();
        for seed_plan in ["kill-worker@2", "kill-worker@1:1", "stall-worker@2:20:0"] {
            let chaotic = run(&cmd(2, Some(seed_plan), 3)).unwrap();
            assert_eq!(chaotic, reference, "plan {seed_plan} changed stdout");
        }
        // With healing disabled, the kill is fatal — the old fail-fast path.
        assert!(matches!(
            run(&cmd(2, Some("kill-worker@2"), 0)),
            Err(CliError::Tin(TinError::WorkerLost { .. }))
        ));
        // Worker events cannot target a sequential run.
        match run(&cmd(1, Some("kill-worker@2"), 3)) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("--shards"), "{msg}"),
            other => panic!("expected a usage error, got {other:?}"),
        }
        // An explicit victim shard beyond the pool is a usage error too.
        match run(&cmd(2, Some("kill-worker@2:9"), 3)) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("out of range"), "{msg}"),
            other => panic!("expected a usage error, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    /// `ckpt-fault` chaos exercises the checkpoint store's bounded retry:
    /// a transient window is absorbed and the run (and its checkpoints)
    /// complete; resuming from them still matches the reference.
    #[test]
    fn chaos_checkpoint_faults_are_absorbed_by_retry() {
        let path = write_trace();
        let path_str = path.to_string_lossy().into_owned();
        let dir = temp_path("chaos_ckpt");
        let _ = std::fs::remove_dir_all(&dir);
        let cmd = |chaos_plan: Option<&str>, dir: Option<&std::path::Path>| Command::Run {
            path: path_str.clone(),
            policy: SelectionPolicy::ProportionalSparse,
            shards: 2,
            top: 10,
            checkpoint_dir: dir.map(|d| d.to_string_lossy().into_owned()),
            checkpoint_every: 2,
            resume: false,
            crash_at: None,
            metrics_out: None,
            trace_out: None,
            progress_every: None,
            footprint_sample_every: None,
            chaos_plan: chaos_plan.map(String::from),
            chaos_seed: 0,
            max_worker_restarts: 3,
            telemetry_out: None,
            telemetry_every: 1000,
            crash_report: CrashReportMode::Auto,
        };
        let reference = run(&cmd(None, None)).unwrap();
        let faulted = run(&cmd(Some("ckpt-fault@1,kill-worker@3"), Some(&dir))).unwrap();
        assert_eq!(faulted, reference, "chaos changed stdout");
        // The faulted run still left valid durable checkpoints behind.
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load_latest_valid().unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn origins_query_now_and_in_the_past() {
        let path = write_trace();
        let path_str = path.to_string_lossy().into_owned();
        let now = run(&Command::Origins {
            path: path_str.clone(),
            vertex: "carol".into(),
            policy: SelectionPolicy::ProportionalSparse,
            at: None,
        })
        .unwrap();
        assert!(now.contains("provenance of carol"));
        assert!(now.contains("exchange"));
        assert!(now.contains("mallory"));

        // Before mallory's transfer, carol's provenance has a single source.
        let past = run(&Command::Origins {
            path: path_str.clone(),
            vertex: "carol".into(),
            policy: SelectionPolicy::ProportionalSparse,
            at: Some(3.5),
        })
        .unwrap();
        assert!(past.contains("exchange"));
        assert!(!past.contains("mallory"));

        // Unknown vertex is a usage error.
        assert!(run(&Command::Origins {
            path: path_str,
            vertex: "nobody".into(),
            policy: SelectionPolicy::Fifo,
            at: None,
        })
        .is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn snapshot_alerts_and_generate_write_outputs() {
        let path = write_trace();
        let path_str = path.to_string_lossy().into_owned();
        let snap_path = temp_path("snap.tsv");
        let out = run(&Command::Snapshot {
            path: path_str.clone(),
            policy: SelectionPolicy::Lifo,
            out: snap_path.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(out.contains("wrote snapshot"));
        let snapshot =
            ProvenanceSnapshot::read_tsv(std::fs::File::open(&snap_path).unwrap()).unwrap();
        assert_eq!(snapshot.num_vertices(), 5);
        std::fs::remove_file(&snap_path).ok();

        let out = run(&Command::Alerts {
            path: path_str,
            threshold: 20.0,
        })
        .unwrap();
        assert!(out.contains("alerts over 4 interactions"));

        let gen_path = temp_path("generated.csv");
        let out = run(&Command::Generate {
            kind: DatasetKind::Taxis,
            scale: ScaleProfile::Tiny,
            out: gen_path.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(out.contains("synthetic Taxis interactions"));
        let reloaded = tin_datasets::io::read_csv_file(&gen_path).unwrap();
        assert!(!reloaded.is_empty());
        std::fs::remove_file(&gen_path).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn influence_and_similar_run_on_a_trace() {
        let path = write_trace();
        let path_str = path.to_string_lossy().into_owned();

        // In the trace everything ultimately traces back to "exchange", so it
        // must top the influence ranking and reach every downstream account.
        let out = run(&Command::Influence {
            path: path_str.clone(),
            top: 3,
        })
        .unwrap();
        assert!(out.contains("influence ranking"));
        let exchange_line = out
            .lines()
            .find(|l| l.trim_start().starts_with("exchange"))
            .expect("exchange appears in the ranking");
        assert!(exchange_line.contains("reach 3 vertices"));

        // Similarity mining runs and reports a clustering of the occupied
        // vertices; with a permissive threshold at least one pair shows up.
        let out = run(&Command::Similar {
            path: path_str,
            policy: SelectionPolicy::ProportionalSparse,
            threshold: 0.0,
            top: 10,
        })
        .unwrap();
        assert!(out.contains("provenance-similarity mining"));
        assert!(out.contains("clusters over"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_files_surface_io_errors() {
        let err = run(&Command::Stats {
            path: "/definitely/not/here.csv".into(),
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Tin(TinError::Io(_))));
        assert!(err.to_string().contains("I/O"));
        // Usage errors display their message.
        let err = CliError::from("bad flag".to_string());
        assert_eq!(err.to_string(), "bad flag");
        assert_eq!(run(&Command::Help).unwrap(), USAGE);
    }
}
