//! # tin-chaos — seeded, deterministic fault plans for robustness testing
//!
//! A [`ChaosPlan`] is a tiny textual description of *when* faults strike a
//! run: worker panics at a given stream position, worker stalls (to trip
//! the hang detector), and transient checkpoint I/O errors (through the
//! [`tin_core::checkpoint::CheckpointStore`] fault hook). Plans are parsed
//! from the grammar used by `tin-cli run --chaos-plan` and resolved into a
//! [`ChaosDriver`] with a seed, so the *same plan + seed always injects the
//! same faults at the same points* — a failing chaos run reproduces
//! exactly.
//!
//! ## Grammar
//!
//! A plan is a comma-separated list of events:
//!
//! | event                        | meaning                                                      |
//! |------------------------------|--------------------------------------------------------------|
//! | `kill-worker@K[:SHARD]`      | panic one worker just before interaction `K` (0-based)       |
//! | `stall-worker@K:MILLIS[:SHARD]` | freeze one worker for `MILLIS` ms just before interaction `K` |
//! | `ckpt-fault@NTH[xCOUNT]`     | fail `COUNT` (default 1) consecutive checkpoint write attempts starting at the `NTH` attempt (1-based) |
//!
//! When `SHARD` is omitted the victim is drawn deterministically from the
//! seed (xorshift over `seed ^ event index`), so `--chaos-seed` varies the
//! victim without editing the plan. `ckpt-fault` counts *write attempts*
//! (the store's retry loop calls the hook once per attempt), so
//! `ckpt-fault@2x3` makes attempts 2, 3 and 4 fail — enough to exhaust a
//! 3-attempt retry budget — while `ckpt-fault@2` is a transient blip the
//! retry loop absorbs.
//!
//! Everything here is a test/ops harness: when no plan is armed, the
//! engine and store run exactly as before (the hooks are `None`).
//!
//! ```
//! use tin_chaos::ChaosPlan;
//!
//! let plan = ChaosPlan::parse("kill-worker@450, ckpt-fault@2x2").unwrap();
//! assert!(plan.has_worker_events());
//! assert!(plan.has_checkpoint_faults());
//! let driver = plan.driver(4, 7).unwrap();
//! assert_eq!(driver.pending(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use tin_core::checkpoint::CheckpointStore;
use tin_core::error::Result;
use tin_shard::ShardedEngine;

/// One fault in a [`ChaosPlan`], at the granularity the grammar exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Panic a worker just before processing interaction `at` (0-based).
    KillWorker {
        /// Stream position the kill fires at.
        at: usize,
        /// Explicit victim shard, or `None` for seeded selection.
        shard: Option<usize>,
    },
    /// Freeze a worker for `millis` just before interaction `at` — long
    /// stalls trip the coordinator's hang detector.
    StallWorker {
        /// Stream position the stall fires at.
        at: usize,
        /// Stall duration in milliseconds.
        millis: u64,
        /// Explicit victim shard, or `None` for seeded selection.
        shard: Option<usize>,
    },
    /// Fail `count` consecutive checkpoint write attempts starting with
    /// the `nth` attempt (1-based, counted across the whole run).
    CkptFault {
        /// First failing write attempt (1-based).
        nth: usize,
        /// How many consecutive attempts fail.
        count: usize,
    },
}

/// A parsed, seedable fault plan. See the [crate docs](self) for the
/// grammar.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// Parse a comma-separated plan string.
    ///
    /// # Errors
    /// Returns a human-readable message naming the offending event when
    /// the string does not match the grammar — suitable for a CLI usage
    /// error.
    pub fn parse(text: &str) -> std::result::Result<Self, String> {
        let mut events = Vec::new();
        for raw in text.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (kind, spec) = raw
                .split_once('@')
                .ok_or_else(|| format!("chaos event `{raw}` is missing `@`"))?;
            match kind {
                "kill-worker" => {
                    let mut parts = spec.split(':');
                    let at = parse_field::<usize>(parts.next(), raw, "interaction index")?;
                    let shard = parts
                        .next()
                        .map(|s| parse_str::<usize>(s, raw, "shard"))
                        .transpose()?;
                    reject_trailing(parts.next(), raw)?;
                    events.push(ChaosEvent::KillWorker { at, shard });
                }
                "stall-worker" => {
                    let mut parts = spec.split(':');
                    let at = parse_field::<usize>(parts.next(), raw, "interaction index")?;
                    let millis = parse_field::<u64>(parts.next(), raw, "stall milliseconds")?;
                    let shard = parts
                        .next()
                        .map(|s| parse_str::<usize>(s, raw, "shard"))
                        .transpose()?;
                    reject_trailing(parts.next(), raw)?;
                    events.push(ChaosEvent::StallWorker { at, millis, shard });
                }
                "ckpt-fault" => {
                    let (nth_text, count) = match spec.split_once('x') {
                        Some((nth, count)) => (nth, parse_str::<usize>(count, raw, "fault count")?),
                        None => (spec, 1),
                    };
                    let nth = parse_str::<usize>(nth_text, raw, "attempt number")?;
                    if nth == 0 {
                        return Err(format!("chaos event `{raw}`: attempt numbers are 1-based"));
                    }
                    if count == 0 {
                        return Err(format!("chaos event `{raw}`: fault count must be positive"));
                    }
                    events.push(ChaosEvent::CkptFault { nth, count });
                }
                other => {
                    return Err(format!(
                        "unknown chaos event `{other}` (expected kill-worker, \
                         stall-worker or ckpt-fault)"
                    ));
                }
            }
        }
        if events.is_empty() {
            return Err("chaos plan is empty".into());
        }
        Ok(Self { events })
    }

    /// The parsed events, in plan order.
    #[must_use]
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Does the plan contain worker kills or stalls? (Those require a
    /// sharded run — the sequential engine has no workers to kill.)
    #[must_use]
    pub fn has_worker_events(&self) -> bool {
        self.events
            .iter()
            .any(|e| !matches!(e, ChaosEvent::CkptFault { .. }))
    }

    /// Does the plan contain checkpoint write faults? (Those require a
    /// durable checkpoint store to arm.)
    #[must_use]
    pub fn has_checkpoint_faults(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, ChaosEvent::CkptFault { .. }))
    }

    /// Resolve the plan's worker events against a concrete shard count,
    /// drawing omitted victims deterministically from `seed`.
    ///
    /// # Errors
    /// Returns a usage-style message if an explicit shard is out of range
    /// or the plan has worker events but `num_shards < 2` (killing the
    /// only worker of a 1-shard run is just a crash, not a recovery
    /// scenario).
    pub fn driver(&self, num_shards: usize, seed: u64) -> std::result::Result<ChaosDriver, String> {
        if self.has_worker_events() && num_shards < 2 {
            return Err("worker chaos events need --shards >= 2".into());
        }
        let mut resolved = Vec::new();
        for (index, event) in self.events.iter().enumerate() {
            let pick = |explicit: Option<usize>| -> std::result::Result<usize, String> {
                match explicit {
                    Some(s) if s < num_shards => Ok(s),
                    Some(s) => Err(format!(
                        "chaos event #{}: shard {s} out of range (have {num_shards})",
                        index + 1
                    )),
                    None => Ok((seeded_pick(seed, index as u64) % num_shards as u64) as usize),
                }
            };
            match *event {
                ChaosEvent::KillWorker { at, shard } => resolved.push(WorkerFault {
                    at,
                    shard: pick(shard)?,
                    stall_millis: None,
                }),
                ChaosEvent::StallWorker { at, millis, shard } => resolved.push(WorkerFault {
                    at,
                    shard: pick(shard)?,
                    stall_millis: Some(millis),
                }),
                ChaosEvent::CkptFault { .. } => {}
            }
        }
        Ok(ChaosDriver { faults: resolved })
    }

    /// Arm a [`CheckpointStore`] with this plan's `ckpt-fault` events: the
    /// store's fault hook counts write attempts (1-based) and fails every
    /// attempt that lands in a configured window. No-op if the plan has no
    /// checkpoint faults.
    pub fn arm_checkpoint_store(&self, store: &mut CheckpointStore) {
        let windows: Vec<(usize, usize)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                ChaosEvent::CkptFault { nth, count } => Some((nth, nth + count - 1)),
                _ => None,
            })
            .collect();
        if windows.is_empty() {
            return;
        }
        let attempts = Arc::new(AtomicUsize::new(0));
        store.set_fault_hook(Box::new(move || {
            let attempt = attempts.fetch_add(1, Ordering::Relaxed) + 1;
            if windows
                .iter()
                .any(|&(lo, hi)| attempt >= lo && attempt <= hi)
            {
                Err(std::io::Error::other(format!(
                    "chaos: injected checkpoint fault on write attempt {attempt}"
                )))
            } else {
                Ok(())
            }
        }));
    }
}

/// A worker fault with its victim shard resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WorkerFault {
    at: usize,
    shard: usize,
    stall_millis: Option<u64>,
}

/// A [`ChaosPlan`] resolved against a shard count and seed, ready to drive
/// a run: call [`ChaosDriver::before_interaction`] with each global stream
/// index before processing that interaction. Each fault fires exactly
/// once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosDriver {
    faults: Vec<WorkerFault>,
}

impl ChaosDriver {
    /// Inject every not-yet-fired fault scheduled at stream position
    /// `index` into `engine`. Positions at or beyond the stream length
    /// simply never fire (the plan outlives a short stream harmlessly).
    ///
    /// # Errors
    /// Propagates engine errors from the injection hooks (e.g. the engine
    /// is already poisoned).
    pub fn before_interaction(&mut self, index: usize, engine: &mut ShardedEngine) -> Result<()> {
        // Faults fire at most once: drain matching entries as we go.
        let mut i = 0;
        while i < self.faults.len() {
            if self.faults[i].at == index {
                let fault = self.faults.swap_remove(i);
                match fault.stall_millis {
                    Some(millis) => engine.inject_worker_stall(fault.shard, millis)?,
                    None => engine.inject_worker_panic(fault.shard)?,
                }
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// Number of worker faults that have not fired yet.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.faults.len()
    }
}

/// Deterministic victim selection: xorshift* over the seed and the event's
/// position in the plan, so each event draws independently.
fn seeded_pick(seed: u64, event_index: u64) -> u64 {
    let mut x =
        seed ^ 0x9E37_79B9_7F4A_7C15 ^ (event_index + 1).wrapping_mul(0xD134_2543_DE82_EF95);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

fn parse_field<T: std::str::FromStr>(
    field: Option<&str>,
    raw: &str,
    what: &str,
) -> std::result::Result<T, String> {
    field
        .ok_or_else(|| format!("chaos event `{raw}` is missing its {what}"))
        .and_then(|s| parse_str(s, raw, what))
}

fn parse_str<T: std::str::FromStr>(
    s: &str,
    raw: &str,
    what: &str,
) -> std::result::Result<T, String> {
    s.trim()
        .parse()
        .map_err(|_| format!("chaos event `{raw}`: cannot parse {what} from `{s}`"))
}

fn reject_trailing(extra: Option<&str>, raw: &str) -> std::result::Result<(), String> {
    match extra {
        Some(_) => Err(format!("chaos event `{raw}` has trailing fields")),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_event_kind() {
        let plan =
            ChaosPlan::parse("kill-worker@450, stall-worker@10:250:1, ckpt-fault@2x3").unwrap();
        assert_eq!(
            plan.events(),
            &[
                ChaosEvent::KillWorker {
                    at: 450,
                    shard: None
                },
                ChaosEvent::StallWorker {
                    at: 10,
                    millis: 250,
                    shard: Some(1)
                },
                ChaosEvent::CkptFault { nth: 2, count: 3 },
            ]
        );
        assert!(plan.has_worker_events());
        assert!(plan.has_checkpoint_faults());
    }

    #[test]
    fn parses_explicit_kill_shard_and_default_fault_count() {
        let plan = ChaosPlan::parse("kill-worker@7:3,ckpt-fault@5").unwrap();
        assert_eq!(
            plan.events(),
            &[
                ChaosEvent::KillWorker {
                    at: 7,
                    shard: Some(3)
                },
                ChaosEvent::CkptFault { nth: 5, count: 1 },
            ]
        );
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in [
            "",
            " , ",
            "kill-worker",
            "kill-worker@",
            "kill-worker@abc",
            "kill-worker@1:2:3",
            "stall-worker@5",
            "stall-worker@5:abc",
            "ckpt-fault@0",
            "ckpt-fault@1x0",
            "ckpt-fault@1y2",
            "detach-disk@9",
        ] {
            assert!(ChaosPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn seeded_victims_are_deterministic_and_in_range() {
        let plan = ChaosPlan::parse("kill-worker@1,kill-worker@2,kill-worker@3").unwrap();
        for shards in [2usize, 4, 7] {
            for seed in 0..32u64 {
                let a = plan.driver(shards, seed).unwrap();
                let b = plan.driver(shards, seed).unwrap();
                assert_eq!(a, b, "same seed, same victims");
                assert!(a.faults.iter().all(|f| f.shard < shards));
            }
        }
        // Different seeds reach different victims eventually: the pick is
        // actually seeded, not constant.
        let picks: std::collections::HashSet<usize> = (0..64u64)
            .map(|seed| plan.driver(7, seed).unwrap().faults[0].shard)
            .collect();
        assert!(picks.len() > 1, "victim never varied with the seed");
    }

    #[test]
    fn explicit_out_of_range_shard_is_a_usage_error() {
        let plan = ChaosPlan::parse("kill-worker@5:4").unwrap();
        assert!(plan.driver(4, 0).unwrap_err().contains("out of range"));
        assert!(plan.driver(5, 0).is_ok());
    }

    #[test]
    fn worker_events_require_at_least_two_shards() {
        let plan = ChaosPlan::parse("kill-worker@5").unwrap();
        assert!(plan.driver(1, 0).unwrap_err().contains("--shards"));
        let ckpt_only = ChaosPlan::parse("ckpt-fault@1").unwrap();
        assert!(ckpt_only.driver(1, 0).is_ok());
    }

    #[test]
    fn checkpoint_fault_windows_fail_exact_attempts() {
        let dir = std::env::temp_dir().join(format!("tin_chaos_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = ChaosPlan::parse("ckpt-fault@1,ckpt-fault@4x2").unwrap();
        let mut store = CheckpointStore::open(&dir)
            .unwrap()
            .with_retry(3, std::time::Duration::from_millis(1));
        plan.arm_checkpoint_store(&mut store);

        use tin_core::engine::ProvenanceEngine;
        use tin_core::policy::{PolicyConfig, SelectionPolicy};
        let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
        let mut engine = ProvenanceEngine::new(&config, 4).unwrap();
        engine
            .process(&tin_core::interaction::Interaction::new(
                0u32, 1u32, 1.0, 2.0,
            ))
            .unwrap();
        // Save 1: attempt 1 faults, attempt 2 succeeds (retry absorbed it).
        let c = engine.checkpoint().unwrap();
        store.save(&c).unwrap();
        assert_eq!(store.last_save_stats().unwrap().retries, 1);
        // Save 2: attempts 3 (ok? no — window is 4..=5) — attempt 3
        // succeeds immediately, zero retries.
        store.save(&c).unwrap();
        assert_eq!(store.last_save_stats().unwrap().retries, 0);
        // Save 3: attempts 4 and 5 fault, attempt 6 succeeds.
        store.save(&c).unwrap();
        assert_eq!(store.last_save_stats().unwrap().retries, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn driver_fires_each_fault_once() {
        let plan = ChaosPlan::parse("kill-worker@3:0").unwrap();
        let driver = plan.driver(2, 0).unwrap();
        assert_eq!(driver.pending(), 1);
        // No engine handy here; `before_interaction` at a non-matching
        // index must leave the fault pending. (End-to-end firing is
        // covered by the CLI and self-healing integration tests.)
        let mut d = driver;
        let mut engine = ShardedEngine::new(
            &tin_core::policy::PolicyConfig::Plain(tin_core::policy::SelectionPolicy::Fifo),
            4,
            2,
        )
        .unwrap();
        d.before_interaction(0, &mut engine).unwrap();
        assert_eq!(d.pending(), 1);
        d.before_interaction(3, &mut engine).unwrap();
        assert_eq!(d.pending(), 0);
        // Firing consumed the event; the engine is now doomed but the
        // driver itself is inert.
        d.before_interaction(3, &mut engine).unwrap();
        assert_eq!(d.pending(), 0);
    }
}
