//! Graph clustering for grouped provenance tracking.
//!
//! Section 5.2 suggests deriving the vertex groups from "network clustering
//! algorithms (e.g., METIS)". METIS itself is a native library we do not
//! depend on; this module provides dependency-free clustering substrates that
//! produce a [`Grouping`] from the TIN's static structure:
//!
//! * [`connected_components`] — weakly connected components via union–find;
//! * [`label_propagation`] — quantity-weighted label propagation, with the
//!   component count optionally folded down to a target number of groups;
//! * [`modularity`] — the standard quality score for a grouping on the
//!   quantity-weighted undirected projection of the TIN, so alternative
//!   groupings can be compared.
//!
//! The paper notes (Section 7.3) that the runtime/memory of grouped tracking
//! only depends on the *number* of groups, so these algorithms matter for the
//! interpretability of the provenance output, not for its cost.

use std::collections::HashMap;

use tin_core::error::{Result, TinError};
use tin_core::graph::Tin;
use tin_core::ids::VertexId;

use crate::grouping::Grouping;

/// A disjoint-set (union–find) forest over dense vertex indices, with path
/// compression and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// Create a forest of `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Find the representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `a` and `b`; returns true if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Dense component labels in `0..num_components()`, assigned in order of
    /// first appearance so the labelling is deterministic.
    pub fn labels(&mut self) -> Vec<u32> {
        let n = self.parent.len();
        let mut relabel: HashMap<usize, u32> = HashMap::new();
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let root = self.find(i);
            let next = relabel.len() as u32;
            let label = *relabel.entry(root).or_insert(next);
            labels.push(label);
        }
        labels
    }
}

/// Group vertices by weakly connected component of the static TIN graph.
/// Isolated vertices each form their own singleton group.
pub fn connected_components(tin: &Tin) -> Grouping {
    let mut uf = UnionFind::new(tin.num_vertices());
    for r in tin.interactions() {
        uf.union(r.src.index(), r.dst.index());
    }
    let group_of = uf.labels();
    Grouping {
        num_groups: uf.num_components().max(1),
        group_of,
    }
}

/// Quantity-weighted label propagation.
///
/// Every vertex starts in its own community; in each synchronous-ish sweep a
/// vertex adopts the label with the largest total interaction quantity among
/// its (in- and out-) neighbours, breaking ties towards the smallest label so
/// the algorithm is deterministic. The sweep repeats until no label changes or
/// `max_sweeps` is reached. If `target_groups` is given, the resulting
/// communities are folded into that many groups by size-balanced assignment
/// (largest community first), matching the fixed-m interface of grouped
/// provenance tracking.
pub fn label_propagation(
    tin: &Tin,
    max_sweeps: usize,
    target_groups: Option<usize>,
) -> Result<Grouping> {
    if let Some(0) = target_groups {
        return Err(TinError::InvalidConfig("need at least one group".into()));
    }
    let n = tin.num_vertices();
    if n == 0 {
        return Ok(Grouping {
            num_groups: 1,
            group_of: Vec::new(),
        });
    }

    // Undirected weighted adjacency: total quantity exchanged per vertex pair.
    let mut weights: Vec<HashMap<usize, f64>> = vec![HashMap::new(); n];
    for r in tin.interactions() {
        let (a, b) = (r.src.index(), r.dst.index());
        *weights[a].entry(b).or_insert(0.0) += r.qty;
        *weights[b].entry(a).or_insert(0.0) += r.qty;
    }

    let mut label: Vec<u32> = (0..n as u32).collect();
    for _ in 0..max_sweeps.max(1) {
        let mut changed = false;
        for v in 0..n {
            if weights[v].is_empty() {
                continue;
            }
            // Total neighbour weight per label.
            let mut per_label: HashMap<u32, f64> = HashMap::new();
            for (&u, &w) in &weights[v] {
                *per_label.entry(label[u]).or_insert(0.0) += w;
            }
            let best = per_label
                .into_iter()
                .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                .map(|(l, _)| l)
                .unwrap_or(label[v]);
            if best != label[v] {
                label[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Relabel densely, in order of first appearance.
    let mut relabel: HashMap<u32, u32> = HashMap::new();
    let mut group_of = Vec::with_capacity(n);
    for &l in &label {
        let next = relabel.len() as u32;
        group_of.push(*relabel.entry(l).or_insert(next));
    }
    let num_communities = relabel.len().max(1);

    let grouping = Grouping {
        num_groups: num_communities,
        group_of,
    };
    match target_groups {
        None => Ok(grouping),
        Some(m) => Ok(fold_to_groups(&grouping, m)),
    }
}

/// Fold an arbitrary community assignment into exactly `m` groups by
/// assigning communities (largest first) to the currently smallest group —
/// a greedy balanced-partition pass.
pub fn fold_to_groups(grouping: &Grouping, m: usize) -> Grouping {
    let m = m.max(1);
    if grouping.num_groups <= m {
        return Grouping {
            num_groups: m,
            group_of: grouping.group_of.clone(),
        };
    }
    let sizes = grouping.group_sizes();
    let mut communities: Vec<usize> = (0..grouping.num_groups).collect();
    communities.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]).then(a.cmp(&b)));
    let mut community_to_group = vec![0u32; grouping.num_groups];
    let mut load = vec![0usize; m];
    for c in communities {
        let target = (0..m).min_by_key(|&g| (load[g], g)).unwrap_or(0);
        community_to_group[c] = target as u32;
        load[target] += sizes[c];
    }
    Grouping {
        num_groups: m,
        group_of: grouping
            .group_of
            .iter()
            .map(|&c| community_to_group[c as usize])
            .collect(),
    }
}

/// Newman modularity of a grouping on the quantity-weighted undirected
/// projection of the TIN. Higher is better; 0 is the expectation of a random
/// assignment, and the value is meaningless for an empty TIN (returns 0).
pub fn modularity(tin: &Tin, grouping: &Grouping) -> f64 {
    let n = tin.num_vertices();
    if n == 0 || grouping.group_of.len() < n {
        return 0.0;
    }
    // Weighted degree per vertex and total edge weight (each interaction
    // counted once as an undirected edge of weight r.q).
    let mut degree = vec![0.0f64; n];
    let mut total = 0.0f64;
    let mut intra = vec![0.0f64; grouping.num_groups];
    for r in tin.interactions() {
        let (a, b) = (r.src.index(), r.dst.index());
        degree[a] += r.qty;
        degree[b] += r.qty;
        total += r.qty;
        if grouping.group_of[a] == grouping.group_of[b] {
            intra[grouping.group_of[a] as usize] += r.qty;
        }
    }
    if total <= 0.0 {
        return 0.0;
    }
    let mut group_degree = vec![0.0f64; grouping.num_groups];
    for v in 0..n {
        group_degree[grouping.group_of[v] as usize] += degree[v];
    }
    let two_m = 2.0 * total;
    (0..grouping.num_groups)
        .map(|g| intra[g] / total - (group_degree[g] / two_m).powi(2))
        .sum()
}

/// Convenience: pick a sensible grouping of `tin` into `m` groups — label
/// propagation folded to `m`, falling back to degree-based bucketing when the
/// graph is a single community.
pub fn cluster_into(tin: &Tin, m: usize) -> Result<Grouping> {
    if m == 0 {
        return Err(TinError::InvalidConfig("need at least one group".into()));
    }
    let lp = label_propagation(tin, 8, Some(m))?;
    let distinct = lp.group_sizes().iter().filter(|&&s| s > 0).count();
    if distinct > 1 {
        Ok(lp)
    } else {
        crate::grouping::by_degree(tin, m)
    }
}

/// A vertex id helper used by the tests below.
#[allow(dead_code)]
fn v(i: u32) -> VertexId {
    VertexId::new(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::interaction::{paper_running_example, Interaction};

    /// Two triangles joined by nothing: 0-1-2 and 3-4-5.
    fn two_communities() -> Tin {
        let rs = vec![
            Interaction::new(0u32, 1u32, 1.0, 10.0),
            Interaction::new(1u32, 2u32, 2.0, 10.0),
            Interaction::new(2u32, 0u32, 3.0, 10.0),
            Interaction::new(3u32, 4u32, 4.0, 10.0),
            Interaction::new(4u32, 5u32, 5.0, 10.0),
            Interaction::new(5u32, 3u32, 6.0, 10.0),
        ];
        Tin::from_interactions(6, rs).unwrap()
    }

    /// The two triangles plus one thin bridge 2 → 3.
    fn bridged_communities() -> Tin {
        let mut rs = two_communities().interactions().to_vec();
        rs.push(Interaction::new(2u32, 3u32, 7.0, 0.1));
        Tin::from_interactions(6, rs).unwrap()
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.num_components(), 2);
        assert_eq!(uf.find(1), uf.find(0));
        assert_ne!(uf.find(0), uf.find(3));
        let labels = uf.labels();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let tin = two_communities();
        let grouping = connected_components(&tin);
        assert_eq!(grouping.num_groups, 2);
        assert!(grouping.validate().is_ok());
        assert_eq!(grouping.group_of(v(0)), grouping.group_of(v(2)));
        assert_ne!(grouping.group_of(v(0)), grouping.group_of(v(3)));
        // Isolated vertices form singleton components.
        let tin = Tin::from_interactions(4, vec![Interaction::new(0u32, 1u32, 1.0, 1.0)]).unwrap();
        let grouping = connected_components(&tin);
        assert_eq!(grouping.num_groups, 3);
    }

    #[test]
    fn components_of_running_example_form_one_group() {
        let tin = Tin::from_interactions(3, paper_running_example()).unwrap();
        let grouping = connected_components(&tin);
        assert_eq!(grouping.num_groups, 1);
        assert!(grouping.group_of.iter().all(|&g| g == 0));
    }

    #[test]
    fn label_propagation_recovers_two_communities() {
        let tin = bridged_communities();
        let grouping = label_propagation(&tin, 10, None).unwrap();
        assert!(grouping.validate().is_ok());
        // The two triangles stay separate despite the thin bridge.
        assert_eq!(grouping.group_of(v(0)), grouping.group_of(v(1)));
        assert_eq!(grouping.group_of(v(1)), grouping.group_of(v(2)));
        assert_eq!(grouping.group_of(v(3)), grouping.group_of(v(4)));
        assert_eq!(grouping.group_of(v(4)), grouping.group_of(v(5)));
        assert_ne!(grouping.group_of(v(0)), grouping.group_of(v(3)));
        // Deterministic.
        assert_eq!(grouping, label_propagation(&tin, 10, None).unwrap());
    }

    #[test]
    fn label_propagation_respects_target_group_count() {
        let tin = two_communities();
        let grouping = label_propagation(&tin, 10, Some(2)).unwrap();
        assert_eq!(grouping.num_groups, 2);
        assert!(grouping.validate().is_ok());
        // Asking for more groups than communities keeps every community whole.
        let grouping = label_propagation(&tin, 10, Some(4)).unwrap();
        assert_eq!(grouping.num_groups, 4);
        assert!(grouping.validate().is_ok());
        assert!(label_propagation(&tin, 10, Some(0)).is_err());
    }

    #[test]
    fn label_propagation_handles_empty_and_isolated() {
        let empty = Tin::from_interactions(0, vec![]).unwrap();
        let grouping = label_propagation(&empty, 5, None).unwrap();
        assert_eq!(grouping.group_of.len(), 0);
        let isolated = Tin::from_interactions(3, vec![]).unwrap();
        let grouping = label_propagation(&isolated, 5, None).unwrap();
        assert_eq!(grouping.group_of.len(), 3);
        assert!(grouping.validate().is_ok());
    }

    #[test]
    fn fold_balances_group_sizes() {
        let fine = Grouping {
            num_groups: 4,
            group_of: vec![0, 0, 0, 1, 1, 2, 3],
        };
        let folded = fold_to_groups(&fine, 2);
        assert_eq!(folded.num_groups, 2);
        assert!(folded.validate().is_ok());
        let sizes = folded.group_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 7);
        assert!(sizes.iter().all(|&s| s >= 3), "unbalanced: {sizes:?}");
    }

    #[test]
    fn modularity_prefers_the_true_communities() {
        let tin = bridged_communities();
        let good = label_propagation(&tin, 10, None).unwrap();
        let bad = crate::grouping::round_robin(6, 2).unwrap();
        let q_good = modularity(&tin, &good);
        let q_bad = modularity(&tin, &bad);
        assert!(q_good > q_bad, "expected {q_good} > {q_bad}");
        assert!(q_good > 0.0);
        // Degenerate cases.
        let empty = Tin::from_interactions(0, vec![]).unwrap();
        assert_eq!(
            modularity(
                &empty,
                &Grouping {
                    num_groups: 1,
                    group_of: vec![]
                }
            ),
            0.0
        );
        // One big group always has modularity 0 (all mass intra, expectation 1).
        let single = Grouping {
            num_groups: 1,
            group_of: vec![0; 6],
        };
        assert!(modularity(&tin, &single).abs() < 1e-12);
    }

    #[test]
    fn cluster_into_feeds_grouped_tracking() {
        use tin_core::prelude::*;
        let tin = bridged_communities();
        let grouping = cluster_into(&tin, 2).unwrap();
        assert_eq!(grouping.num_groups, 2);
        let mut tracker = build_tracker(&grouping.to_policy(), tin.num_vertices()).unwrap();
        tracker.process_all(tin.interactions());
        assert!(tracker.check_all_invariants());
        assert!(cluster_into(&tin, 0).is_err());
        // A single-community graph falls back to degree bucketing but still
        // returns m groups.
        let chain = Tin::from_interactions(
            3,
            vec![
                Interaction::new(0u32, 1u32, 1.0, 1.0),
                Interaction::new(1u32, 2u32, 2.0, 1.0),
            ],
        )
        .unwrap();
        let grouping = cluster_into(&chain, 2).unwrap();
        assert_eq!(grouping.num_groups, 2);
    }
}
