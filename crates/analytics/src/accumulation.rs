//! Accumulation time series — the Figure 2 use case.
//!
//! Figure 2 of the paper plots, for one vertex of the Taxis network (East
//! Village), the total quantity buffered after every incoming interaction
//! together with the provenance distribution (pie charts) at selected points.
//! [`AccumulationSeries`] records exactly that: one sample per interaction
//! that touches the watched vertex, each sample carrying the buffered total
//! and the origin breakdown.

use serde::{Deserialize, Serialize};

use tin_core::ids::VertexId;
use tin_core::interaction::Interaction;
use tin_core::origins::OriginSet;
use tin_core::quantity::Quantity;
use tin_core::tracker::ProvenanceTracker;

use crate::distribution::ProvenanceDistribution;

/// One sample of the accumulation series: the state of the watched vertex
/// right after an interaction delivered quantity to it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AccumulationSample {
    /// Index of the interaction in the stream (0-based).
    pub interaction_index: usize,
    /// Time of the interaction.
    pub time: f64,
    /// Vertex that sent the quantity.
    pub from: VertexId,
    /// Quantity delivered by this interaction.
    pub delivered: Quantity,
    /// Total buffered quantity after the interaction.
    pub buffered: Quantity,
    /// Provenance distribution of the buffer after the interaction
    /// (the pie chart of Figure 2).
    pub distribution: ProvenanceDistribution,
}

/// The full accumulation series for one watched vertex.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AccumulationSeries {
    /// The watched vertex.
    pub vertex: VertexId,
    /// One sample per interaction that delivered quantity to the vertex.
    pub samples: Vec<AccumulationSample>,
}

impl AccumulationSeries {
    /// The peak buffered quantity over the series.
    pub fn peak_buffered(&self) -> Quantity {
        self.samples.iter().map(|s| s.buffered).fold(0.0, f64::max)
    }

    /// The final buffered quantity (0 if the vertex never received anything).
    pub fn final_buffered(&self) -> Quantity {
        self.samples.last().map(|s| s.buffered).unwrap_or(0.0)
    }

    /// Number of distinct origins ever observed in the samples.
    pub fn distinct_origins(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for s in &self.samples {
            for (o, _) in &s.distribution.shares {
                set.insert(*o);
            }
        }
        set.len()
    }

    /// Provenance drift between consecutive samples: for every sample after
    /// the first, the total-variation distance between its provenance
    /// distribution and the previous sample's. A large value means the
    /// arrival reshuffled where the buffered quantity comes from (e.g. a new
    /// dominant financier), not merely how much is buffered.
    pub fn drift_series(&self) -> Vec<(usize, f64)> {
        self.samples
            .windows(2)
            .map(|pair| {
                (
                    pair[1].interaction_index,
                    pair[1].distribution.total_variation(&pair[0].distribution),
                )
            })
            .collect()
    }

    /// Interaction indices at which the provenance composition shifted by at
    /// least `threshold` (in total-variation distance, 0–1) relative to the
    /// previous sample — the "regime changes" of the watched vertex.
    pub fn regime_changes(&self, threshold: f64) -> Vec<usize> {
        self.drift_series()
            .into_iter()
            .filter(|(_, drift)| *drift >= threshold)
            .map(|(index, _)| index)
            .collect()
    }
}

/// Record the accumulation series of `watched` while running `interactions`
/// through `tracker`.
///
/// The tracker processes *every* interaction (so the buffers evolve exactly
/// as in the full experiment); a sample is recorded only for interactions
/// whose destination is the watched vertex, matching Figure 2 ("after each
/// transfer [to East Village]").
pub fn record_series(
    tracker: &mut dyn ProvenanceTracker,
    interactions: &[Interaction],
    watched: VertexId,
) -> AccumulationSeries {
    let mut series = AccumulationSeries {
        vertex: watched,
        samples: Vec::new(),
    };
    for (i, r) in interactions.iter().enumerate() {
        tracker.process(r);
        if r.dst == watched {
            let origins: OriginSet = tracker.origins(watched);
            series.samples.push(AccumulationSample {
                interaction_index: i,
                time: r.time.0,
                from: r.src,
                delivered: r.qty,
                buffered: tracker.buffered(watched),
                distribution: ProvenanceDistribution::from_origins(&origins),
            });
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::interaction::paper_running_example;
    use tin_core::prelude::*;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn series_samples_only_incoming_interactions() {
        let mut tracker = ProportionalDenseTracker::new(3);
        let series = record_series(&mut tracker, &paper_running_example(), v(0));
        // v0 receives quantity at interactions 2 (index 1) and 6 (index 5).
        assert_eq!(series.samples.len(), 2);
        assert_eq!(series.samples[0].interaction_index, 1);
        assert_eq!(series.samples[1].interaction_index, 5);
        assert_eq!(series.vertex, v(0));
    }

    #[test]
    fn buffered_totals_match_table2() {
        let mut tracker = ProportionalDenseTracker::new(3);
        let series = record_series(&mut tracker, &paper_running_example(), v(0));
        // Table 2: |B_v0| = 5 after interaction 2, 3 after interaction 6.
        assert!((series.samples[0].buffered - 5.0).abs() < 1e-9);
        assert!((series.samples[1].buffered - 3.0).abs() < 1e-9);
        assert!((series.peak_buffered() - 5.0).abs() < 1e-9);
        assert!((series.final_buffered() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn distributions_follow_proportional_provenance() {
        let mut tracker = ProportionalDenseTracker::new(3);
        let series = record_series(&mut tracker, &paper_running_example(), v(0));
        // After interaction 2, p_v0 = [0, 3, 2] (Table 5): 60% from v1.
        let d = &series.samples[0].distribution;
        assert!((d.share_of(Origin::Vertex(v(1))) - 0.6).abs() < 1e-9);
        assert!((d.share_of(Origin::Vertex(v(2))) - 0.4).abs() < 1e-9);
        assert_eq!(series.distinct_origins(), 2);
    }

    #[test]
    fn works_with_any_tracker_policy() {
        for policy in SelectionPolicy::all() {
            let mut tracker = build_tracker(&PolicyConfig::Plain(policy), 3).unwrap();
            let series = record_series(tracker.as_mut(), &paper_running_example(), v(2));
            assert!(
                !series.samples.is_empty(),
                "v2 receives interactions under {policy}"
            );
            // Delivered quantities are copied straight from the interactions.
            assert!((series.samples[0].delivered - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn drift_flags_composition_changes_not_volume_changes() {
        // v3 first receives twice from v0 (no drift: same single origin),
        // then a large delivery from v1 reshuffles the composition.
        let rs = vec![
            Interaction::new(0u32, 3u32, 1.0, 2.0),
            Interaction::new(0u32, 3u32, 2.0, 4.0),
            Interaction::new(1u32, 3u32, 3.0, 6.0),
        ];
        let mut tracker = ProportionalDenseTracker::new(4);
        let series = record_series(&mut tracker, &rs, v(3));
        let drift = series.drift_series();
        assert_eq!(drift.len(), 2);
        // Second delivery from the same origin: identical composition.
        assert!(drift[0].1 < 1e-12);
        // Third delivery: v1 now contributes 50% of the buffer.
        assert!((drift[1].1 - 0.5).abs() < 1e-9);
        assert_eq!(series.regime_changes(0.25), vec![2]);
        assert!(series.regime_changes(0.75).is_empty());
    }

    #[test]
    fn drift_of_short_series_is_empty() {
        let rs = vec![Interaction::new(0u32, 1u32, 1.0, 2.0)];
        let mut tracker = ProportionalDenseTracker::new(2);
        let series = record_series(&mut tracker, &rs, v(1));
        assert!(series.drift_series().is_empty());
        assert!(series.regime_changes(0.0).is_empty());
    }

    #[test]
    fn empty_series_for_vertex_that_never_receives() {
        let rs = vec![Interaction::new(0u32, 1u32, 1.0, 2.0)];
        let mut tracker = ProportionalDenseTracker::new(3);
        let series = record_series(&mut tracker, &rs, v(2));
        assert!(series.samples.is_empty());
        assert_eq!(series.final_buffered(), 0.0);
        assert_eq!(series.peak_buffered(), 0.0);
        assert_eq!(series.distinct_origins(), 0);
    }
}
