//! Report formatting: aligned text tables and CSV output.
//!
//! The experiment harness reproduces the paper's tables (7–10) and figure
//! series (5–8) as plain-text tables plus machine-readable CSV. This module
//! holds the small formatting layer both the harness binaries and the
//! examples use.

use serde::{Deserialize, Serialize};

/// One measurement row: a labelled runtime + memory observation, optionally
/// annotated with extra columns.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Row label (e.g. dataset name or parameter value).
    pub label: String,
    /// Wall-clock runtime in seconds.
    pub runtime_secs: f64,
    /// Logical provenance memory in bytes.
    pub memory_bytes: usize,
    /// Peak allocator memory in bytes (0 when the counting allocator is not
    /// installed).
    pub peak_alloc_bytes: usize,
}

/// A simple aligned text table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have as many cells as the header).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total_width));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }

    /// Render as CSV (header + rows, comma-separated, no quoting — labels in
    /// this project never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a runtime in seconds the way the paper's tables do (3 significant
/// decimals for sub-second values, 2 decimals above).
pub fn format_secs(secs: f64) -> String {
    if secs < 0.001 {
        format!("{:.5}", secs)
    } else if secs < 1.0 {
        format!("{:.3}", secs)
    } else {
        format!("{:.2}", secs)
    }
}

/// Format a byte count (KB/MB/GB) as in the paper's tables.
pub fn format_bytes(bytes: usize) -> String {
    tin_core::memory::format_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["Dataset", "Runtime (s)", "Memory"]);
        t.push_row(vec!["Bitcoin".into(), "31.77".into(), "891MB".into()]);
        t.push_row(vec!["Taxis".into(), "0.014".into(), "0.93MB".into()]);
        let text = t.render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("Dataset"));
        assert!(text.contains("Bitcoin"));
        assert_eq!(t.num_rows(), 2);
        // All data lines have the same alignment prefix length for column 2.
        let lines: Vec<&str> = text.lines().collect();
        let col = lines[1].find("Runtime").unwrap();
        assert_eq!(lines[3].find("31.77").unwrap(), col);
        assert_eq!(lines[4].find("0.014").unwrap(), col);
    }

    #[test]
    fn table_to_csv() {
        let mut t = TextTable::new("", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new("", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_secs(0.0005), "0.00050");
        assert_eq!(format_secs(0.014), "0.014");
        assert_eq!(format_secs(31.77), "31.77");
        assert_eq!(format_bytes(2048), "2.00KB");
    }

    #[test]
    fn measurement_default() {
        let m = Measurement::default();
        assert_eq!(m.runtime_secs, 0.0);
        assert_eq!(m.memory_bytes, 0);
    }
}
