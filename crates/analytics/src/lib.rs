//! # tin-analytics — analysing provenance in temporal interaction networks
//!
//! The `tin-core` crate answers the low-level provenance question ("which
//! origins make up the quantity buffered at v?"). This crate builds the
//! paper's analyses and use cases on top of that answer:
//!
//! * [`distribution`] — provenance distributions, entropy, source profiles
//!   (the pie charts of Figure 2, the "few vs. numerous sources" analysis of
//!   Section 1);
//! * [`alerts`] — the streaming smurfing-alert use case of Section 7.6 /
//!   Figure 9;
//! * [`accumulation`] — per-vertex accumulation time series (Figure 2);
//! * [`grouping`] — vertex-grouping strategies for grouped provenance
//!   tracking (Section 5.2);
//! * [`clustering`] — union–find components, label propagation and modularity
//!   (the METIS stand-in the paper suggests for grouping, Section 5.2);
//! * [`accuracy`] — error metrics of the approximate (selective / grouped /
//!   windowed / budgeted) trackers against an exact reference;
//! * [`flow`] — origin → holder flow matrices and financing rankings
//!   (the "who finances whom" questions of Section 1);
//! * [`mining`] — provenance-similarity mining: similar-vertex pairs,
//!   provenance clustering, recurrent origins and entropy outliers (the data
//!   mining directions listed as future work in Section 8);
//! * [`path_stats`] — route statistics for how-provenance (Section 6 /
//!   Table 10);
//! * [`routes`] — aggregation of per-element transfer paths into route tables
//!   (top routes by carried quantity, per-edge transit);
//! * [`report`] — text/CSV table formatting shared by the experiment harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accumulation;
pub mod accuracy;
pub mod alerts;
pub mod clustering;
pub mod distribution;
pub mod flow;
pub mod grouping;
pub mod mining;
pub mod path_stats;
pub mod report;
pub mod routes;

pub use accumulation::{record_series, AccumulationSeries};
pub use accuracy::{compare_trackers, AccuracyReport, OriginSetError};
pub use alerts::{Alert, AlertConfig, AlertEngine};
pub use clustering::{connected_components, label_propagation, modularity};
pub use distribution::{classify_sources, ProvenanceDistribution, SourceProfile};
pub use flow::FlowMatrix;
pub use grouping::Grouping;
pub use mining::{
    cluster_by_provenance, cosine_similarity, entropy_outliers, most_similar_pairs,
    recurrent_origins, EntropyOutlier, ProvenanceCluster, RecurrentOrigin, SimilarPair,
};
pub use path_stats::{statistics as path_statistics, PathStatistics};
pub use report::{Measurement, TextTable};
pub use routes::{Route, RouteTable};

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::prelude::*;
    use tin_datasets::{DatasetKind, DatasetSpec, ScaleProfile};

    /// Cross-crate smoke test: generate a synthetic taxi day, track
    /// provenance proportionally, and run the Figure 2 style analysis on the
    /// busiest zone.
    #[test]
    fn figure2_style_analysis_on_synthetic_taxis() {
        let spec = DatasetSpec::new(DatasetKind::Taxis, ScaleProfile::Tiny);
        let tin = tin_datasets::generate_tin(&spec);
        let busiest = tin
            .vertices()
            .max_by(|a, b| tin.in_degree(*a).cmp(&tin.in_degree(*b)))
            .unwrap();
        let mut tracker = ProportionalDenseTracker::new(tin.num_vertices());
        let series = record_series(&mut tracker, tin.interactions(), busiest);
        assert!(!series.samples.is_empty());
        let last = series.samples.last().unwrap();
        // The distribution is a proper probability distribution.
        let total_share: f64 = last.distribution.shares.iter().map(|(_, p)| p).sum();
        assert!((total_share - 1.0).abs() < 1e-9);
        assert!(last.distribution.entropy_bits() >= 0.0);
    }
}
