//! Vertex grouping strategies for grouped provenance tracking (Section 5.2).
//!
//! The paper suggests grouping vertices by application attributes (gender,
//! country), by geography, or with a graph-clustering algorithm such as
//! METIS. Since runtime and memory of grouped tracking depend only on the
//! *number* of groups (Section 7.3), this module offers simple, deterministic
//! strategies: round-robin, hashed, explicit attributes, and a degree-based
//! clustering that serves as the METIS stand-in (see DESIGN.md).

use serde::{Deserialize, Serialize};

use tin_core::error::{Result, TinError};
use tin_core::graph::Tin;
use tin_core::ids::VertexId;

/// A vertex-to-group assignment usable by
/// [`tin_core::tracker::grouped::GroupedTracker`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grouping {
    /// Number of groups m.
    pub num_groups: usize,
    /// `group_of[v]` = group index of vertex v.
    pub group_of: Vec<u32>,
}

impl Grouping {
    /// Group of a vertex.
    pub fn group_of(&self, v: VertexId) -> u32 {
        self.group_of[v.index()]
    }

    /// Sizes of each group.
    pub fn group_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_groups];
        for &g in &self.group_of {
            sizes[g as usize] += 1;
        }
        sizes
    }

    /// Validate the assignment (every group index within range).
    pub fn validate(&self) -> Result<()> {
        if self.num_groups == 0 {
            return Err(TinError::InvalidConfig("need at least one group".into()));
        }
        if self.group_of.iter().any(|&g| g as usize >= self.num_groups) {
            return Err(TinError::InvalidConfig("group index out of range".into()));
        }
        Ok(())
    }

    /// Convert into the `PolicyConfig::Grouped` form used by the tracker
    /// factory.
    pub fn to_policy(&self) -> tin_core::policy::PolicyConfig {
        tin_core::policy::PolicyConfig::Grouped {
            num_groups: self.num_groups,
            group_of: self.group_of.clone(),
        }
    }
}

/// Round-robin assignment: vertex `v` goes to group `v mod m` (what the
/// paper's experiments use; cost is independent of the allocation).
pub fn round_robin(num_vertices: usize, num_groups: usize) -> Result<Grouping> {
    if num_groups == 0 {
        return Err(TinError::InvalidConfig("need at least one group".into()));
    }
    Ok(Grouping {
        num_groups,
        group_of: (0..num_vertices).map(|v| (v % num_groups) as u32).collect(),
    })
}

/// Hash-based assignment: deterministic pseudo-random spreading of vertices
/// over groups (useful when vertex ids are not uniformly distributed).
pub fn hashed(num_vertices: usize, num_groups: usize) -> Result<Grouping> {
    if num_groups == 0 {
        return Err(TinError::InvalidConfig("need at least one group".into()));
    }
    let group_of = (0..num_vertices as u64)
        .map(|v| {
            // SplitMix64 finaliser: cheap, well-mixed, dependency-free.
            let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z % num_groups as u64) as u32
        })
        .collect();
    Ok(Grouping {
        num_groups,
        group_of,
    })
}

/// Attribute-based assignment: the caller supplies one attribute value per
/// vertex (e.g. country code, account category) and every distinct value
/// becomes a group.
pub fn by_attribute<A: Eq + std::hash::Hash + Clone>(attributes: &[A]) -> Grouping {
    let mut value_to_group: std::collections::HashMap<A, u32> = std::collections::HashMap::new();
    let mut group_of = Vec::with_capacity(attributes.len());
    for a in attributes {
        let next = value_to_group.len() as u32;
        let g = *value_to_group.entry(a.clone()).or_insert(next);
        group_of.push(g);
    }
    Grouping {
        num_groups: value_to_group.len().max(1),
        group_of,
    }
}

/// Degree-based clustering: vertices are ordered by total interaction volume
/// (sent + received quantity) and split into `num_groups` contiguous buckets
/// of equal population. High-volume "hub" vertices end up together, which
/// mimics the effect of topology-aware clustering (our METIS stand-in) while
/// remaining deterministic and dependency-free.
pub fn by_degree(tin: &Tin, num_groups: usize) -> Result<Grouping> {
    if num_groups == 0 {
        return Err(TinError::InvalidConfig("need at least one group".into()));
    }
    let n = tin.num_vertices();
    let sent = tin.total_sent_per_vertex();
    let received = tin.total_received_per_vertex();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        (sent[b] + received[b])
            .total_cmp(&(sent[a] + received[a]))
            .then(a.cmp(&b))
    });
    let mut group_of = vec![0u32; n];
    let bucket = n.div_ceil(num_groups).max(1);
    for (rank, &v) in order.iter().enumerate() {
        group_of[v] = ((rank / bucket) as u32).min(num_groups as u32 - 1);
    }
    Ok(Grouping {
        num_groups,
        group_of,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::interaction::paper_running_example;
    use tin_core::prelude::*;

    #[test]
    fn round_robin_balances_groups() {
        let g = round_robin(10, 3).unwrap();
        assert_eq!(g.num_groups, 3);
        assert!(g.validate().is_ok());
        let sizes = g.group_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
        assert!(round_robin(10, 0).is_err());
    }

    #[test]
    fn hashed_covers_all_groups() {
        let g = hashed(1000, 7).unwrap();
        assert!(g.validate().is_ok());
        let sizes = g.group_sizes();
        assert!(sizes.iter().all(|&s| s > 50), "sizes too skewed: {sizes:?}");
        assert!(hashed(10, 0).is_err());
        // Deterministic.
        assert_eq!(g, hashed(1000, 7).unwrap());
    }

    #[test]
    fn attribute_grouping_maps_distinct_values() {
        let attrs = vec!["US", "GR", "US", "DE", "GR"];
        let g = by_attribute(&attrs);
        assert_eq!(g.num_groups, 3);
        assert_eq!(g.group_of(VertexId::new(0)), g.group_of(VertexId::new(2)));
        assert_ne!(g.group_of(VertexId::new(0)), g.group_of(VertexId::new(3)));
        // Empty attribute list still yields a valid (single-group) grouping.
        let empty: Vec<&str> = vec![];
        assert_eq!(by_attribute(&empty).num_groups, 1);
    }

    #[test]
    fn degree_clustering_puts_hubs_together() {
        let tin = Tin::from_interactions(3, paper_running_example()).unwrap();
        let g = by_degree(&tin, 2).unwrap();
        assert!(g.validate().is_ok());
        // v1 and v2 move the most quantity in the running example; v0 the
        // least, so v0 must be alone in the low-volume bucket... with 3
        // vertices and 2 groups the first bucket holds 2 vertices.
        assert_eq!(g.group_of(VertexId::new(0)), 1);
        assert_eq!(g.group_sizes(), vec![2, 1]);
        assert!(by_degree(&tin, 0).is_err());
    }

    #[test]
    fn grouping_feeds_the_grouped_tracker() {
        let tin = Tin::from_interactions(3, paper_running_example()).unwrap();
        let grouping = by_degree(&tin, 2).unwrap();
        let mut tracker = build_tracker(&grouping.to_policy(), 3).unwrap();
        tracker.process_all(tin.interactions());
        assert!(tracker.check_all_invariants());
        assert!(tracker.total_buffered() > 0.0);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let g = Grouping {
            num_groups: 2,
            group_of: vec![0, 5],
        };
        assert!(g.validate().is_err());
        let g = Grouping {
            num_groups: 0,
            group_of: vec![],
        };
        assert!(g.validate().is_err());
    }
}
