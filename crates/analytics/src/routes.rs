//! Route aggregation for how-provenance.
//!
//! Path tracking (Section 6) annotates every buffered quantity element with
//! the route it travelled. Element-level routes are too fine-grained for
//! analysis on their own; what an analyst asks is "which *routes* carry the
//! most quantity?" and "which edges do buffered quantities transit through?"
//! — the flow-path view that the authors' earlier work on flow motifs
//! explores and that this paper's Table 10 motivates. This module aggregates
//! the per-element paths of both path trackers
//! ([`tin_core::tracker::path::PathTracker`] and
//! [`tin_core::tracker::path_generation::GenerationPathTracker`]) into a
//! [`RouteTable`]:
//!
//! * total quantity and element count per distinct route,
//! * the top-k routes by carried quantity,
//! * per-edge transit quantity (how much buffered quantity crossed each edge
//!   on its way to where it now rests),
//! * route-length distribution statistics.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use tin_core::ids::VertexId;
use tin_core::quantity::{qty_is_zero, Quantity};
use tin_core::tracker::path::PathTracker;
use tin_core::tracker::path_generation::GenerationPathTracker;
use tin_core::tracker::ProvenanceTracker;

/// One aggregated route: the sequence of vertices (origin first, relays
/// after; the final holder is *not* part of the route, matching the trackers'
/// convention) together with the total quantity and number of buffered
/// elements that followed it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// The route: `route[0]` is the origin, subsequent entries are relays.
    pub vertices: Vec<VertexId>,
    /// Total buffered quantity that travelled exactly this route.
    pub quantity: Quantity,
    /// Number of buffered elements that travelled exactly this route.
    pub elements: usize,
    /// The vertex where the quantity currently rests.
    pub destination: VertexId,
}

impl Route {
    /// Number of relays (edges) on the route, including the final hop into
    /// the destination.
    pub fn hops(&self) -> usize {
        self.vertices.len()
    }
}

/// Aggregated route statistics over an entire path-tracking run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RouteTable {
    routes: Vec<Route>,
    /// Quantity that transited each directed edge on its way to where it now
    /// rests (includes the final hop into the destination).
    edge_transit: BTreeMap<(VertexId, VertexId), Quantity>,
}

impl RouteTable {
    /// Build a route table from raw `(path, destination, quantity)` records.
    pub fn from_records<'a, I>(records: I) -> Self
    where
        I: IntoIterator<Item = (&'a [VertexId], VertexId, Quantity)>,
    {
        let mut by_route: BTreeMap<(Vec<VertexId>, VertexId), (Quantity, usize)> = BTreeMap::new();
        let mut edge_transit: BTreeMap<(VertexId, VertexId), Quantity> = BTreeMap::new();
        for (path, destination, qty) in records {
            if qty_is_zero(qty) || path.is_empty() {
                continue;
            }
            let entry = by_route
                .entry((path.to_vec(), destination))
                .or_insert((0.0, 0));
            entry.0 += qty;
            entry.1 += 1;
            // Edges along the path, plus the final hop into the destination.
            for pair in path.windows(2) {
                *edge_transit.entry((pair[0], pair[1])).or_insert(0.0) += qty;
            }
            if let Some(&last) = path.last() {
                if last != destination {
                    *edge_transit.entry((last, destination)).or_insert(0.0) += qty;
                }
            }
        }
        let mut routes: Vec<Route> = by_route
            .into_iter()
            .map(|((vertices, destination), (quantity, elements))| Route {
                vertices,
                quantity,
                elements,
                destination,
            })
            .collect();
        routes.sort_by(|a, b| {
            b.quantity
                .total_cmp(&a.quantity)
                .then_with(|| a.vertices.cmp(&b.vertices))
        });
        RouteTable {
            routes,
            edge_transit,
        }
    }

    /// Build the route table from a receipt-order path tracker.
    pub fn from_path_tracker(tracker: &PathTracker) -> Self {
        let mut records: Vec<(Vec<VertexId>, VertexId, Quantity)> = Vec::new();
        for i in 0..tracker.num_vertices() {
            let holder = VertexId::from(i);
            for e in tracker.elements(holder) {
                records.push((e.path.clone(), holder, e.qty));
            }
        }
        Self::from_records(records.iter().map(|(p, d, q)| (p.as_slice(), *d, *q)))
    }

    /// Build the route table from a generation-time path tracker.
    pub fn from_generation_tracker(tracker: &GenerationPathTracker) -> Self {
        let mut records: Vec<(Vec<VertexId>, VertexId, Quantity)> = Vec::new();
        for i in 0..tracker.num_vertices() {
            let holder = VertexId::from(i);
            for e in tracker.sorted_elements(holder) {
                records.push((e.path.clone(), holder, e.qty));
            }
        }
        Self::from_records(records.iter().map(|(p, d, q)| (p.as_slice(), *d, *q)))
    }

    /// All distinct routes, sorted by descending carried quantity.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// The `k` routes carrying the most quantity.
    pub fn top_k(&self, k: usize) -> &[Route] {
        &self.routes[..k.min(self.routes.len())]
    }

    /// Number of distinct routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if no route was recorded.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Total buffered quantity accounted for by the table.
    pub fn total_quantity(&self) -> Quantity {
        self.routes.iter().map(|r| r.quantity).sum()
    }

    /// Quantity that transited a directed edge (0 if none did).
    pub fn transit_through(&self, from: VertexId, to: VertexId) -> Quantity {
        self.edge_transit.get(&(from, to)).copied().unwrap_or(0.0)
    }

    /// The `k` edges with the largest transit quantity, descending.
    pub fn busiest_edges(&self, k: usize) -> Vec<((VertexId, VertexId), Quantity)> {
        let mut edges: Vec<((VertexId, VertexId), Quantity)> =
            self.edge_transit.iter().map(|(&e, &q)| (e, q)).collect();
        edges.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        edges.truncate(k);
        edges
    }

    /// Routes that end at a given destination, descending by quantity.
    pub fn routes_into(&self, destination: VertexId) -> Vec<&Route> {
        self.routes
            .iter()
            .filter(|r| r.destination == destination)
            .collect()
    }

    /// Mean number of hops, weighted by the carried quantity (the
    /// quantity-weighted analogue of Table 10's "avg. path length").
    pub fn mean_hops_weighted(&self) -> f64 {
        let total = self.total_quantity();
        if qty_is_zero(total) {
            return 0.0;
        }
        self.routes
            .iter()
            .map(|r| (r.hops().saturating_sub(1)) as f64 * r.quantity)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::interaction::{paper_running_example, Interaction};
    use tin_core::quantity::qty_approx_eq;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    fn lifo_table() -> RouteTable {
        let mut tracker = PathTracker::lifo(3);
        tracker.process_all(&paper_running_example());
        RouteTable::from_path_tracker(&tracker)
    }

    #[test]
    fn table_accounts_for_every_buffered_unit() {
        let table = lifo_table();
        // Table 2 final row: 3 + 2 + 4 = 9 units buffered in total.
        assert!(qty_approx_eq(table.total_quantity(), 9.0));
        assert!(!table.is_empty());
        assert!(table.len() >= 3);
        // Every route's destination matches where its elements actually rest.
        for route in table.routes() {
            assert!(route.quantity > 0.0);
            assert!(route.elements >= 1);
            assert!(!route.vertices.is_empty());
        }
    }

    #[test]
    fn top_routes_are_sorted_by_quantity() {
        let table = lifo_table();
        let top = table.top_k(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].quantity >= top[1].quantity);
        assert_eq!(table.top_k(100).len(), table.len());
    }

    #[test]
    fn chain_produces_one_route_and_full_edge_transit() {
        let n = 5;
        let mut tracker = PathTracker::fifo(n);
        for i in 0..(n as u32) - 1 {
            tracker.process(&Interaction::new(i, i + 1, i as f64 + 1.0, 7.0));
        }
        let table = RouteTable::from_path_tracker(&tracker);
        assert_eq!(table.len(), 1);
        let route = &table.routes()[0];
        assert_eq!(route.vertices, vec![v(0), v(1), v(2), v(3)]);
        assert_eq!(route.destination, v(4));
        assert!(qty_approx_eq(route.quantity, 7.0));
        assert_eq!(route.hops(), 4);
        // Every edge of the chain transited the full 7 units.
        for i in 0..(n as u32) - 1 {
            assert!(qty_approx_eq(table.transit_through(v(i), v(i + 1)), 7.0));
        }
        assert_eq!(table.transit_through(v(4), v(0)), 0.0);
        let busiest = table.busiest_edges(2);
        assert_eq!(busiest.len(), 2);
        assert!(qty_approx_eq(busiest[0].1, 7.0));
        assert!(qty_approx_eq(table.mean_hops_weighted(), 3.0));
    }

    #[test]
    fn generation_and_receipt_order_tables_agree_on_totals() {
        let rs = paper_running_example();
        let mut receipt = PathTracker::fifo(3);
        let mut generation = GenerationPathTracker::least_recently_born(3);
        receipt.process_all(&rs);
        generation.process_all(&rs);
        let a = RouteTable::from_path_tracker(&receipt);
        let b = RouteTable::from_generation_tracker(&generation);
        // The policies pick different elements, so the route sets differ, but
        // both account for the same 9 buffered units.
        assert!(qty_approx_eq(a.total_quantity(), 9.0));
        assert!(qty_approx_eq(b.total_quantity(), 9.0));
        assert!(a.mean_hops_weighted() >= 0.0);
        assert!(b.mean_hops_weighted() >= 0.0);
    }

    #[test]
    fn routes_into_a_destination() {
        let table = lifo_table();
        let into_v0 = table.routes_into(v(0));
        assert!(!into_v0.is_empty());
        let total: f64 = into_v0.iter().map(|r| r.quantity).sum();
        // |B_v0| = 3 at the end of the running example.
        assert!(qty_approx_eq(total, 3.0));
        // A vertex with an empty buffer has no routes into it.
        let mut tracker = PathTracker::lifo(4);
        tracker.process(&Interaction::new(0u32, 1u32, 1.0, 2.0));
        let t = RouteTable::from_path_tracker(&tracker);
        assert!(t.routes_into(v(3)).is_empty());
    }

    #[test]
    fn empty_and_zero_quantity_records_are_ignored() {
        let table = RouteTable::from_records(Vec::<(&[VertexId], VertexId, f64)>::new());
        assert!(table.is_empty());
        assert_eq!(table.total_quantity(), 0.0);
        assert_eq!(table.mean_hops_weighted(), 0.0);
        assert!(table.busiest_edges(3).is_empty());
        let path = [v(0), v(1)];
        let table = RouteTable::from_records(vec![
            (&path[..], v(2), 0.0),
            (&[][..], v(2), 5.0),
            (&path[..], v(2), 4.0),
        ]);
        assert_eq!(table.len(), 1);
        assert!(qty_approx_eq(table.total_quantity(), 4.0));
    }

    #[test]
    fn identical_paths_to_the_same_destination_are_merged() {
        let path = [v(0), v(1)];
        let table = RouteTable::from_records(vec![
            (&path[..], v(2), 3.0),
            (&path[..], v(2), 2.0),
            (&path[..], v(3), 1.0),
        ]);
        assert_eq!(table.len(), 2);
        let merged = table
            .routes()
            .iter()
            .find(|r| r.destination == v(2))
            .unwrap();
        assert!(qty_approx_eq(merged.quantity, 5.0));
        assert_eq!(merged.elements, 2);
        // Edge transit counts both destinations' flows.
        assert!(qty_approx_eq(table.transit_through(v(0), v(1)), 6.0));
        assert!(qty_approx_eq(table.transit_through(v(1), v(2)), 5.0));
        assert!(qty_approx_eq(table.transit_through(v(1), v(3)), 1.0));
    }
}
