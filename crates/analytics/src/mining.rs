//! Mining the computed provenance data.
//!
//! The paper's conclusion (Section 8) lists, as future work, analysing "in
//! depth the computed provenance data in TINs, with the help of data mining
//! approaches, in order to find interesting insights in them". This module
//! provides a first set of such analyses on top of any
//! [`ProvenanceTracker`] impl:
//!
//! * **provenance similarity** — how alike are the origin compositions of two
//!   vertices ([`cosine_similarity`], [`most_similar_pairs`])? Vertices with
//!   near-identical provenance profiles are financed by the same sources,
//!   which is exactly the "groups of users that finance other groups of
//!   users" question of Section 1;
//! * **provenance clustering** — partition the vertices with non-empty
//!   buffers into clusters of similar provenance ([`cluster_by_provenance`]);
//! * **recurrent origins** — origins that appear in a large fraction of all
//!   non-empty buffers ([`recurrent_origins`]), i.e. network-wide financiers;
//! * **entropy outliers** — vertices whose provenance diversity deviates most
//!   from the network average ([`entropy_outliers`]); both unusually
//!   concentrated (one dominant source) and unusually diverse (smurfing-like)
//!   buffers are surfaced.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use tin_core::ids::{Origin, VertexId};
use tin_core::origins::OriginSet;
use tin_core::quantity::Quantity;
use tin_core::tracker::ProvenanceTracker;

use crate::distribution::ProvenanceDistribution;

/// Cosine similarity between the origin compositions of two buffers.
///
/// Both origin sets are treated as sparse non-negative vectors indexed by
/// origin. The result is in `[0, 1]`; it is `0` when either buffer is empty
/// or the buffers share no origin, and `1` when the compositions are
/// proportional to each other.
pub fn cosine_similarity(a: &OriginSet, b: &OriginSet) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let small: BTreeMap<Origin, Quantity> = a.iter().collect();
    let mut dot = 0.0;
    for (origin, qb) in b.iter() {
        if let Some(qa) = small.get(&origin) {
            dot += qa * qb;
        }
    }
    if dot == 0.0 {
        return 0.0;
    }
    let norm_a: f64 = a.iter().map(|(_, q)| q * q).sum::<f64>().sqrt();
    let norm_b: f64 = b.iter().map(|(_, q)| q * q).sum::<f64>().sqrt();
    (dot / (norm_a * norm_b)).clamp(0.0, 1.0)
}

/// A pair of vertices with similar provenance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimilarPair {
    /// First vertex (always the smaller id).
    pub a: VertexId,
    /// Second vertex.
    pub b: VertexId,
    /// Cosine similarity of their provenance compositions.
    pub similarity: f64,
}

/// Find the vertex pairs whose provenance compositions are most similar.
///
/// Only vertices with non-empty buffers participate. Pairs with similarity
/// below `min_similarity` are dropped and at most `limit` pairs are returned,
/// sorted by descending similarity (ties broken by vertex ids).
///
/// The scan is quadratic in the number of non-empty buffers, which is
/// acceptable for the analyst-facing scenarios it targets (the paper's
/// networks have at most a few hundred simultaneously non-empty buffers at
/// the scales where proportional provenance is exact).
pub fn most_similar_pairs(
    tracker: &dyn ProvenanceTracker,
    min_similarity: f64,
    limit: usize,
) -> Vec<SimilarPair> {
    let occupied = occupied_vertices(tracker);
    let origin_sets: Vec<OriginSet> = occupied.iter().map(|&v| tracker.origins(v)).collect();
    let mut pairs = Vec::new();
    for i in 0..occupied.len() {
        for j in (i + 1)..occupied.len() {
            let similarity = cosine_similarity(&origin_sets[i], &origin_sets[j]);
            if similarity >= min_similarity {
                pairs.push(SimilarPair {
                    a: occupied[i],
                    b: occupied[j],
                    similarity,
                });
            }
        }
    }
    pairs.sort_by(|x, y| {
        y.similarity
            .total_cmp(&x.similarity)
            .then_with(|| x.a.cmp(&y.a))
            .then_with(|| x.b.cmp(&y.b))
    });
    pairs.truncate(limit);
    pairs
}

/// A cluster of vertices with mutually similar provenance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceCluster {
    /// The representative (first member assigned to the cluster).
    pub representative: VertexId,
    /// All members, including the representative, in ascending id order.
    pub members: Vec<VertexId>,
}

impl ProvenanceCluster {
    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false: clusters are created with their representative as the
    /// first member. Provided for API completeness alongside [`Self::len`].
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// True when the cluster is a singleton.
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }
}

/// Greedy leader clustering of the non-empty buffers by provenance
/// similarity.
///
/// Vertices are visited in ascending id order; each vertex joins the first
/// existing cluster whose representative's composition has cosine similarity
/// at least `threshold`, otherwise it founds a new cluster. With
/// `threshold = 1.0` only proportionally identical compositions are grouped;
/// with `threshold = 0.0` everything collapses into one cluster.
pub fn cluster_by_provenance(
    tracker: &dyn ProvenanceTracker,
    threshold: f64,
) -> Vec<ProvenanceCluster> {
    let occupied = occupied_vertices(tracker);
    let mut clusters: Vec<ProvenanceCluster> = Vec::new();
    let mut representatives: Vec<OriginSet> = Vec::new();
    for v in occupied {
        let origins = tracker.origins(v);
        let assigned = representatives
            .iter()
            .position(|rep| cosine_similarity(rep, &origins) >= threshold);
        match assigned {
            Some(i) => clusters[i].members.push(v),
            None => {
                clusters.push(ProvenanceCluster {
                    representative: v,
                    members: vec![v],
                });
                representatives.push(origins);
            }
        }
    }
    clusters
}

/// An origin that contributes to a large fraction of the non-empty buffers.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecurrentOrigin {
    /// The origin (a vertex, a group, or an aggregate bucket).
    pub origin: Origin,
    /// Fraction of non-empty buffers containing a share from this origin.
    pub support: f64,
    /// Total quantity attributed to this origin across all buffers.
    pub total_quantity: Quantity,
}

/// Find the origins present in at least `min_support` (a fraction in `[0,1]`)
/// of the non-empty buffers, sorted by descending support and then by
/// descending total quantity.
///
/// These are the network-wide financiers: origins whose generated quantity is
/// spread over many holders rather than parked at a single one.
pub fn recurrent_origins(
    tracker: &dyn ProvenanceTracker,
    min_support: f64,
) -> Vec<RecurrentOrigin> {
    let occupied = occupied_vertices(tracker);
    if occupied.is_empty() {
        return Vec::new();
    }
    let mut counts: BTreeMap<Origin, (usize, Quantity)> = BTreeMap::new();
    for &v in &occupied {
        for (origin, qty) in tracker.origins(v).iter() {
            let entry = counts.entry(origin).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += qty;
        }
    }
    let denominator = occupied.len() as f64;
    let mut result: Vec<RecurrentOrigin> = counts
        .into_iter()
        .map(|(origin, (count, total_quantity))| RecurrentOrigin {
            origin,
            support: count as f64 / denominator,
            total_quantity,
        })
        .filter(|r| r.support + 1e-12 >= min_support)
        .collect();
    result.sort_by(|a, b| {
        b.support
            .total_cmp(&a.support)
            .then_with(|| b.total_quantity.total_cmp(&a.total_quantity))
            .then_with(|| a.origin.cmp(&b.origin))
    });
    result
}

/// A vertex whose provenance entropy deviates strongly from the network mean.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EntropyOutlier {
    /// The vertex.
    pub vertex: VertexId,
    /// Shannon entropy (bits) of its provenance distribution.
    pub entropy_bits: f64,
    /// Signed z-score of the entropy against all non-empty buffers.
    pub z_score: f64,
}

/// Find the vertices whose provenance entropy is at least `z_threshold`
/// standard deviations away from the mean entropy over non-empty buffers.
///
/// A strongly *negative* z-score flags buffers dominated by a single source;
/// a strongly *positive* one flags buffers fed by unusually many sources
/// (the "smurfing" indication of Section 7.6). Returns an empty vector when
/// fewer than two buffers are non-empty or when the entropies are all equal.
pub fn entropy_outliers(tracker: &dyn ProvenanceTracker, z_threshold: f64) -> Vec<EntropyOutlier> {
    let occupied = occupied_vertices(tracker);
    if occupied.len() < 2 {
        return Vec::new();
    }
    let entropies: Vec<(VertexId, f64)> = occupied
        .iter()
        .map(|&v| {
            let distribution = ProvenanceDistribution::from_origins(&tracker.origins(v));
            (v, distribution.entropy_bits())
        })
        .collect();
    let n = entropies.len() as f64;
    let mean = entropies.iter().map(|(_, e)| e).sum::<f64>() / n;
    let variance = entropies
        .iter()
        .map(|(_, e)| (e - mean).powi(2))
        .sum::<f64>()
        / n;
    let std_dev = variance.sqrt();
    if std_dev == 0.0 {
        return Vec::new();
    }
    let mut outliers: Vec<EntropyOutlier> = entropies
        .into_iter()
        .map(|(vertex, entropy_bits)| EntropyOutlier {
            vertex,
            entropy_bits,
            z_score: (entropy_bits - mean) / std_dev,
        })
        .filter(|o| o.z_score.abs() >= z_threshold)
        .collect();
    outliers.sort_by(|a, b| {
        b.z_score
            .abs()
            .total_cmp(&a.z_score.abs())
            .then_with(|| a.vertex.cmp(&b.vertex))
    });
    outliers
}

/// Vertices with a non-empty buffer, in ascending id order.
fn occupied_vertices(tracker: &dyn ProvenanceTracker) -> Vec<VertexId> {
    (0..tracker.num_vertices())
        .map(VertexId::from)
        .filter(|&v| tracker.buffered(v) > 0.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::interaction::Interaction;
    use tin_core::tracker::proportional_dense::ProportionalDenseTracker;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    fn origin(i: u32) -> Origin {
        Origin::Vertex(VertexId::new(i))
    }

    /// Build a tracker where vertices 3 and 4 are financed by the same two
    /// sources in the same proportion, while vertex 5 has a different source.
    fn financed_network() -> ProportionalDenseTracker {
        let mut tracker = ProportionalDenseTracker::new(7);
        let interactions = [
            Interaction::new(0u32, 3u32, 1.0, 2.0),
            Interaction::new(1u32, 3u32, 2.0, 1.0),
            Interaction::new(0u32, 4u32, 3.0, 4.0),
            Interaction::new(1u32, 4u32, 4.0, 2.0),
            Interaction::new(2u32, 5u32, 5.0, 3.0),
        ];
        tracker.process_all(&interactions);
        tracker
    }

    #[test]
    fn cosine_similarity_identical_and_disjoint() {
        let a = OriginSet::from_pairs(vec![(origin(0), 2.0), (origin(1), 1.0)]);
        let scaled = OriginSet::from_pairs(vec![(origin(0), 4.0), (origin(1), 2.0)]);
        let disjoint = OriginSet::from_pairs(vec![(origin(5), 1.0)]);
        assert!((cosine_similarity(&a, &scaled) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&a, &disjoint), 0.0);
        assert_eq!(cosine_similarity(&a, &OriginSet::empty()), 0.0);
        assert_eq!(cosine_similarity(&OriginSet::empty(), &a), 0.0);
    }

    #[test]
    fn cosine_similarity_is_symmetric_and_bounded() {
        let a = OriginSet::from_pairs(vec![(origin(0), 3.0), (origin(1), 1.0)]);
        let b = OriginSet::from_pairs(vec![(origin(0), 1.0), (origin(2), 2.0)]);
        let ab = cosine_similarity(&a, &b);
        let ba = cosine_similarity(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0 && ab < 1.0);
    }

    #[test]
    fn similar_pairs_finds_commonly_financed_vertices() {
        let tracker = financed_network();
        let pairs = most_similar_pairs(&tracker, 0.99, 10);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].a, pairs[0].b), (v(3), v(4)));
        assert!(pairs[0].similarity > 0.99);
        // Lowering the threshold surfaces more (weaker) pairs, still sorted.
        let all = most_similar_pairs(&tracker, 0.0, 10);
        assert!(!all.is_empty());
        for w in all.windows(2) {
            assert!(w[0].similarity >= w[1].similarity);
        }
    }

    #[test]
    fn similar_pairs_respects_limit() {
        let tracker = financed_network();
        assert!(most_similar_pairs(&tracker, 0.0, 1).len() <= 1);
        assert!(most_similar_pairs(&tracker, 1.1, 10).is_empty());
    }

    #[test]
    fn clustering_groups_identically_financed_vertices() {
        let tracker = financed_network();
        let clusters = cluster_by_provenance(&tracker, 0.99);
        // {v3, v4} share financiers; v5 stands alone.
        assert_eq!(clusters.len(), 2);
        let joint = clusters
            .iter()
            .find(|c| c.len() == 2)
            .expect("joint cluster");
        assert_eq!(joint.members, vec![v(3), v(4)]);
        assert_eq!(joint.representative, v(3));
        let single = clusters
            .iter()
            .find(|c| c.is_singleton())
            .expect("singleton");
        assert_eq!(single.members, vec![v(5)]);
    }

    #[test]
    fn clustering_threshold_extremes() {
        let tracker = financed_network();
        let loose = cluster_by_provenance(&tracker, 0.0);
        assert_eq!(loose.len(), 1);
        assert_eq!(loose[0].len(), 3);
        let strict = cluster_by_provenance(&tracker, 1.0 + 1e-9);
        assert_eq!(strict.len(), 3);
        assert!(strict.iter().all(ProvenanceCluster::is_singleton));
        assert!(strict.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn clustering_empty_tracker() {
        let tracker = ProportionalDenseTracker::new(4);
        assert!(cluster_by_provenance(&tracker, 0.5).is_empty());
        assert!(most_similar_pairs(&tracker, 0.0, 10).is_empty());
        assert!(recurrent_origins(&tracker, 0.0).is_empty());
        assert!(entropy_outliers(&tracker, 0.0).is_empty());
    }

    #[test]
    fn recurrent_origins_ranks_network_wide_financiers() {
        let tracker = financed_network();
        // v0 and v1 finance 2 of the 3 non-empty buffers; v2 finances 1.
        let recurrent = recurrent_origins(&tracker, 0.5);
        assert_eq!(recurrent.len(), 2);
        assert_eq!(recurrent[0].origin, origin(0));
        assert!((recurrent[0].support - 2.0 / 3.0).abs() < 1e-12);
        assert!((recurrent[0].total_quantity - 6.0).abs() < 1e-9);
        assert_eq!(recurrent[1].origin, origin(1));
        // With no support threshold every contributing origin is reported.
        let all = recurrent_origins(&tracker, 0.0);
        assert_eq!(all.len(), 3);
        assert!(all.iter().any(|r| r.origin == origin(2)));
    }

    #[test]
    fn entropy_outliers_flags_divergent_buffers() {
        // v5 receives from five distinct sources, v6 from exactly one; the
        // remaining non-empty buffers sit in between.
        let mut tracker = ProportionalDenseTracker::new(10);
        let mut interactions = Vec::new();
        for (i, src) in (0..5u32).enumerate() {
            interactions.push(Interaction::new(src, 5u32, (i + 1) as f64, 1.0));
        }
        interactions.push(Interaction::new(0u32, 6u32, 6.0, 5.0));
        interactions.push(Interaction::new(0u32, 7u32, 7.0, 2.0));
        interactions.push(Interaction::new(1u32, 7u32, 8.0, 1.0));
        tracker.process_all(&interactions);

        let outliers = entropy_outliers(&tracker, 1.0);
        assert!(!outliers.is_empty());
        // The most extreme outlier is the five-source buffer, on the positive
        // side; the single-source buffer has a negative z-score.
        assert_eq!(outliers[0].vertex, v(5));
        assert!(outliers[0].z_score > 0.0);
        let single = outliers.iter().find(|o| o.vertex == v(6));
        if let Some(single) = single {
            assert!(single.z_score < 0.0);
        }
        // A huge threshold filters everything out.
        assert!(entropy_outliers(&tracker, 100.0).is_empty());
    }

    #[test]
    fn entropy_outliers_uniform_network_has_none() {
        // Every buffer is financed by exactly one distinct source, so all
        // entropies are equal and there is no outlier to report.
        let mut tracker = ProportionalDenseTracker::new(6);
        let interactions = [
            Interaction::new(0u32, 3u32, 1.0, 1.0),
            Interaction::new(1u32, 4u32, 2.0, 1.0),
            Interaction::new(2u32, 5u32, 3.0, 1.0),
        ];
        tracker.process_all(&interactions);
        assert!(entropy_outliers(&tracker, 0.5).is_empty());
    }
}
