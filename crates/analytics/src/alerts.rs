//! Streaming provenance alerts — the Section 7.6 use case (Figure 9).
//!
//! The paper's demonstration: *"after each interaction, we issue an alert
//! when the receiving vertex does not have any quantity that originates from
//! its \[direct\] neighbours and the total quantity in its buffer exceeds 10K
//! BTC"*. Alerts where the amount was accumulated from many origins are an
//! indication of possible "smurfing" (structuring a large transfer as many
//! small ones through intermediaries).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use tin_core::ids::VertexId;
use tin_core::interaction::Interaction;
use tin_core::origins::OriginSet;
use tin_core::quantity::Quantity;
use tin_core::tracker::ProvenanceTracker;

/// An alert raised by the [`AlertEngine`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Index of the interaction (0-based) that triggered the alert.
    pub interaction_index: usize,
    /// The receiving vertex that accumulated the suspicious quantity.
    pub vertex: VertexId,
    /// Total quantity buffered at the vertex when the alert fired.
    pub buffered: Quantity,
    /// Number of distinct origin vertices contributing to the buffer
    /// (the paper highlights alerts with < 5 contributors in red).
    pub contributing_vertices: usize,
    /// Time of the triggering interaction.
    pub time: f64,
}

impl Alert {
    /// The paper marks alerts with fewer than five contributing vertices
    /// differently (red dots in Figure 9): a large amount from very few
    /// sources.
    pub fn is_few_sources(&self) -> bool {
        self.contributing_vertices < 5
    }
}

/// Configuration of the alerting use case.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlertConfig {
    /// Alert when the receiving vertex's buffered quantity exceeds this
    /// threshold (10,000 BTC in the paper's demonstration).
    pub quantity_threshold: Quantity,
    /// Raise the alert only if *none* of the buffered quantity originates
    /// from the vertex's direct (in-)neighbours, i.e. the neighbours only
    /// relay third-party quantities.
    pub require_no_neighbor_origin: bool,
}

impl Default for AlertConfig {
    fn default() -> Self {
        AlertConfig {
            quantity_threshold: 10_000.0,
            require_no_neighbor_origin: true,
        }
    }
}

/// Streaming alert engine: feed it every interaction *after* the tracker has
/// processed it, and it decides whether the receiving vertex deserves an
/// alert.
///
/// The engine maintains, per vertex, the set of direct in-neighbours seen so
/// far (the vertices that have transferred quantities to it), which is all
/// the additional state the paper's alerting mechanism needs.
#[derive(Clone, Debug)]
pub struct AlertEngine {
    config: AlertConfig,
    in_neighbors: Vec<HashSet<VertexId>>,
    alerts: Vec<Alert>,
    processed: usize,
}

impl AlertEngine {
    /// Create an engine for a TIN with `num_vertices` vertices.
    pub fn new(num_vertices: usize, config: AlertConfig) -> Self {
        AlertEngine {
            config,
            in_neighbors: vec![HashSet::new(); num_vertices],
            alerts: Vec::new(),
            processed: 0,
        }
    }

    /// Observe one interaction together with the provenance of the receiving
    /// vertex *after* the interaction was applied. Returns the alert if one
    /// fired.
    pub fn observe(
        &mut self,
        r: &Interaction,
        receiver_buffered: Quantity,
        receiver_origins: &OriginSet,
    ) -> Option<Alert> {
        let idx = self.processed;
        self.processed += 1;
        self.in_neighbors[r.dst.index()].insert(r.src);

        if receiver_buffered <= self.config.quantity_threshold {
            return None;
        }
        if self.config.require_no_neighbor_origin {
            let neighbors = &self.in_neighbors[r.dst.index()];
            let any_from_neighbor = receiver_origins.iter().any(|(o, q)| {
                q > 0.0
                    && o.as_vertex()
                        .map(|v| neighbors.contains(&v))
                        .unwrap_or(false)
            });
            if any_from_neighbor {
                return None;
            }
        }
        let alert = Alert {
            interaction_index: idx,
            vertex: r.dst,
            buffered: receiver_buffered,
            contributing_vertices: receiver_origins.num_contributing_vertices(),
            time: r.time.0,
        };
        self.alerts.push(alert.clone());
        Some(alert)
    }

    /// Convenience driver: run a whole stream through a tracker and the alert
    /// engine together, returning all raised alerts.
    pub fn run_stream(
        tracker: &mut dyn ProvenanceTracker,
        interactions: &[Interaction],
        config: AlertConfig,
    ) -> Vec<Alert> {
        let mut engine = AlertEngine::new(tracker.num_vertices(), config);
        for r in interactions {
            tracker.process(r);
            let buffered = tracker.buffered(r.dst);
            if buffered > config.quantity_threshold {
                let origins = tracker.origins(r.dst);
                engine.observe(r, buffered, &origins);
            } else {
                engine.observe(r, buffered, &OriginSet::empty());
            }
        }
        engine.into_alerts()
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Consume the engine, returning the alerts.
    pub fn into_alerts(self) -> Vec<Alert> {
        self.alerts
    }

    /// Number of interactions observed.
    pub fn observed(&self) -> usize {
        self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::prelude::*;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    /// Build a small "smurfing" scenario: many mules receive money from a
    /// payer and forward it to a collector, so the collector's buffer grows
    /// large while none of its quantity originates from the mules themselves.
    fn smurfing_stream(num_mules: u32, amount_per_mule: f64) -> (usize, Vec<Interaction>) {
        let payer = 0u32;
        let collector = 1u32;
        let mut rs = Vec::new();
        let mut t = 0.0;
        for m in 0..num_mules {
            let mule = 2 + m;
            t += 1.0;
            rs.push(Interaction::new(payer, mule, t, amount_per_mule));
            t += 1.0;
            rs.push(Interaction::new(mule, collector, t, amount_per_mule));
        }
        ((2 + num_mules) as usize, rs)
    }

    #[test]
    fn smurfing_scenario_raises_alert() {
        let (n, rs) = smurfing_stream(20, 1_000.0);
        let mut tracker = ProportionalSparseTracker::new(n);
        let config = AlertConfig {
            quantity_threshold: 10_000.0,
            require_no_neighbor_origin: true,
        };
        let alerts = AlertEngine::run_stream(&mut tracker, &rs, config);
        assert!(!alerts.is_empty(), "collector must trigger alerts");
        let last = alerts.last().unwrap();
        assert_eq!(last.vertex, v(1));
        assert!(last.buffered > 10_000.0);
        // All quantity ultimately originates from the payer (vertex 0), which
        // is indeed a direct... wait: the payer never sends directly to the
        // collector, so it is NOT an in-neighbour; the mules are, but they
        // only relay. Exactly the paper's alert condition.
        assert_eq!(last.contributing_vertices, 1);
        assert!(last.is_few_sources());
    }

    #[test]
    fn no_alert_when_neighbors_generate_the_quantity() {
        // Vertices send their *own* (newborn) quantity directly: the receiver's
        // provenance contains its direct neighbours, so no alert fires.
        let mut rs = Vec::new();
        for i in 1..=5u32 {
            rs.push(Interaction::new(i, 0u32, i as f64, 5_000.0));
        }
        let mut tracker = ProportionalSparseTracker::new(6);
        let alerts = AlertEngine::run_stream(&mut tracker, &rs, AlertConfig::default());
        assert!(alerts.is_empty());
    }

    #[test]
    fn no_alert_below_threshold() {
        let (n, rs) = smurfing_stream(3, 10.0);
        let mut tracker = ProportionalSparseTracker::new(n);
        let alerts = AlertEngine::run_stream(&mut tracker, &rs, AlertConfig::default());
        assert!(alerts.is_empty());
    }

    #[test]
    fn neighbor_condition_can_be_disabled() {
        let mut rs = Vec::new();
        for i in 1..=5u32 {
            rs.push(Interaction::new(i, 0u32, i as f64, 5_000.0));
        }
        let mut tracker = ProportionalSparseTracker::new(6);
        let config = AlertConfig {
            quantity_threshold: 10_000.0,
            require_no_neighbor_origin: false,
        };
        let alerts = AlertEngine::run_stream(&mut tracker, &rs, config);
        // Once the buffer exceeds 10K the alert fires even though the
        // quantity comes from direct neighbours.
        assert!(!alerts.is_empty());
        assert!(!alerts[0].is_few_sources() || alerts[0].contributing_vertices < 5);
    }

    #[test]
    fn many_sources_alert_is_not_flagged_as_few() {
        // 10 independent generators feed relays that feed the collector.
        let mut rs = Vec::new();
        let collector = 0u32;
        let mut t = 0.0;
        for i in 0..10u32 {
            let generator = 1 + i;
            let relay = 11 + i;
            t += 1.0;
            rs.push(Interaction::new(generator, relay, t, 2_000.0));
            t += 1.0;
            rs.push(Interaction::new(relay, collector, t, 2_000.0));
        }
        let mut tracker = ProportionalSparseTracker::new(21);
        let alerts = AlertEngine::run_stream(&mut tracker, &rs, AlertConfig::default());
        let last = alerts.last().expect("alert expected");
        assert!(last.contributing_vertices >= 5);
        assert!(!last.is_few_sources());
    }

    #[test]
    fn observe_counts_interactions() {
        let mut engine = AlertEngine::new(3, AlertConfig::default());
        let r = Interaction::new(0u32, 1u32, 1.0, 1.0);
        assert!(engine.observe(&r, 1.0, &OriginSet::empty()).is_none());
        assert_eq!(engine.observed(), 1);
        assert!(engine.alerts().is_empty());
    }
}
