//! Accuracy of approximate provenance against an exact reference.
//!
//! The scope-limiting techniques of Section 5 (selective, grouped, windowed,
//! budget-based tracking) trade provenance *completeness* for memory and
//! runtime. The paper quantifies the cost side (Figures 5–8, Table 9) and
//! argues qualitatively that the information loss is limited; this module
//! makes the loss measurable, so the trade-off can be evaluated per workload:
//!
//! * [`OriginSetError`] — the error of one approximate origin set against the
//!   exact one (total variation distance, absolute L1 error, top-k precision
//!   and recall, fraction of known provenance);
//! * [`AccuracyReport`] — the same metrics aggregated over every vertex of a
//!   tracker pair;
//! * [`coarsen_to_groups`] — projects an exact per-vertex origin set onto a
//!   [`Grouping`], so grouped provenance can be compared on equal terms.

use serde::{Deserialize, Serialize};

use tin_core::ids::{GroupId, Origin, VertexId};
use tin_core::origins::OriginSet;
use tin_core::quantity::qty_is_zero;
use tin_core::tracker::ProvenanceTracker;

use crate::grouping::Grouping;

/// Error metrics of one approximate origin set against the exact one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OriginSetError {
    /// Total variation distance between the normalised origin distributions
    /// (0 = identical, 1 = disjoint). Unknown/aggregated origins in the
    /// approximation count as mass placed on origins the exact answer does
    /// not have.
    pub total_variation: f64,
    /// Sum of absolute per-origin quantity differences (unnormalised L1).
    pub l1_error: f64,
    /// Fraction of the approximate buffered quantity attributed to concrete
    /// origins (1.0 = nothing was collapsed into α / "other").
    pub known_fraction: f64,
    /// Of the exact top-k origins, the fraction also present in the
    /// approximate top-k (recall@k).
    pub topk_recall: f64,
    /// Of the approximate top-k origins, the fraction that are exact top-k
    /// origins (precision@k).
    pub topk_precision: f64,
}

impl OriginSetError {
    /// Compare an approximate origin set against the exact one, using the
    /// top-`k` origins for the precision/recall metrics.
    pub fn compare(approx: &OriginSet, exact: &OriginSet, k: usize) -> Self {
        let approx_total = approx.total();
        let exact_total = exact.total();

        // Union of origins for the distribution distance.
        let mut origins: Vec<Origin> = approx
            .iter()
            .map(|(o, _)| o)
            .chain(exact.iter().map(|(o, _)| o))
            .collect();
        origins.sort();
        origins.dedup();

        let mut tv = 0.0;
        let mut l1 = 0.0;
        for o in &origins {
            let a = approx.quantity_from(*o);
            let e = exact.quantity_from(*o);
            l1 += (a - e).abs();
            let ap = if approx_total > 0.0 {
                a / approx_total
            } else {
                0.0
            };
            let ep = if exact_total > 0.0 {
                e / exact_total
            } else {
                0.0
            };
            tv += (ap - ep).abs();
        }
        let total_variation = tv / 2.0;

        let approx_top: Vec<Origin> = approx.top_k(k).iter().map(|s| s.origin).collect();
        let exact_top: Vec<Origin> = exact.top_k(k).iter().map(|s| s.origin).collect();
        let hits = exact_top.iter().filter(|o| approx_top.contains(o)).count();
        let topk_recall = if exact_top.is_empty() {
            1.0
        } else {
            hits as f64 / exact_top.len() as f64
        };
        let topk_precision = if approx_top.is_empty() {
            if exact_top.is_empty() {
                1.0
            } else {
                0.0
            }
        } else {
            approx_top.iter().filter(|o| exact_top.contains(o)).count() as f64
                / approx_top.len() as f64
        };

        OriginSetError {
            total_variation,
            l1_error: l1,
            known_fraction: approx.known_fraction(),
            topk_recall,
            topk_precision,
        }
    }

    /// True if the approximation is exact within the library tolerance.
    pub fn is_exact(&self) -> bool {
        qty_is_zero(self.l1_error)
    }
}

/// Accuracy metrics aggregated over all vertices of a tracker pair.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Vertices with a non-empty exact buffer (the ones that were compared).
    pub vertices_compared: usize,
    /// Mean total variation distance over compared vertices.
    pub mean_total_variation: f64,
    /// Worst-case total variation distance.
    pub max_total_variation: f64,
    /// Mean absolute L1 error over compared vertices.
    pub mean_l1_error: f64,
    /// Mean fraction of known (non-aggregated) provenance.
    pub mean_known_fraction: f64,
    /// Mean recall of the exact top-k origins.
    pub mean_topk_recall: f64,
    /// Mean precision of the approximate top-k origins.
    pub mean_topk_precision: f64,
}

impl AccuracyReport {
    /// Aggregate per-vertex errors into a report.
    pub fn from_errors(errors: &[OriginSetError]) -> Self {
        if errors.is_empty() {
            return AccuracyReport::default();
        }
        let n = errors.len() as f64;
        AccuracyReport {
            vertices_compared: errors.len(),
            mean_total_variation: errors.iter().map(|e| e.total_variation).sum::<f64>() / n,
            max_total_variation: errors.iter().map(|e| e.total_variation).fold(0.0, f64::max),
            mean_l1_error: errors.iter().map(|e| e.l1_error).sum::<f64>() / n,
            mean_known_fraction: errors.iter().map(|e| e.known_fraction).sum::<f64>() / n,
            mean_topk_recall: errors.iter().map(|e| e.topk_recall).sum::<f64>() / n,
            mean_topk_precision: errors.iter().map(|e| e.topk_precision).sum::<f64>() / n,
        }
    }

    /// True if every compared vertex was exact within tolerance.
    pub fn is_exact(&self) -> bool {
        qty_is_zero(self.mean_l1_error) && self.max_total_variation < 1e-9
    }
}

/// Project an exact (per-vertex) origin set onto a grouping, so that it can be
/// compared with the answer of a grouped tracker (Section 5.2): every concrete
/// vertex origin is replaced by its group; aggregate origins stay as they are.
pub fn coarsen_to_groups(origins: &OriginSet, grouping: &Grouping) -> OriginSet {
    OriginSet::from_pairs(origins.iter().map(|(o, q)| match o {
        Origin::Vertex(v) => (Origin::Group(GroupId::new(grouping.group_of(v))), q),
        other => (other, q),
    }))
}

/// Compare an approximate tracker against an exact one, vertex by vertex.
///
/// Only vertices with a non-empty buffer in the *exact* tracker are compared
/// (empty buffers are trivially exact and would dilute the averages). `k` is
/// the cut-off for the top-k precision/recall metrics.
pub fn compare_trackers(
    approx: &dyn ProvenanceTracker,
    exact: &dyn ProvenanceTracker,
    k: usize,
) -> AccuracyReport {
    let n = approx.num_vertices().min(exact.num_vertices());
    let mut errors = Vec::new();
    for i in 0..n {
        let v = VertexId::from(i);
        let exact_origins = exact.origins(v);
        if exact_origins.is_empty() {
            continue;
        }
        errors.push(OriginSetError::compare(
            &approx.origins(v),
            &exact_origins,
            k,
        ));
    }
    AccuracyReport::from_errors(&errors)
}

/// Compare a grouped tracker against an exact vertex-level tracker by first
/// coarsening the exact answers to the same grouping.
pub fn compare_grouped_tracker(
    grouped: &dyn ProvenanceTracker,
    exact: &dyn ProvenanceTracker,
    grouping: &Grouping,
    k: usize,
) -> AccuracyReport {
    let n = grouped.num_vertices().min(exact.num_vertices());
    let mut errors = Vec::new();
    for i in 0..n {
        let v = VertexId::from(i);
        let exact_origins = exact.origins(v);
        if exact_origins.is_empty() {
            continue;
        }
        let coarse = coarsen_to_groups(&exact_origins, grouping);
        errors.push(OriginSetError::compare(&grouped.origins(v), &coarse, k));
    }
    AccuracyReport::from_errors(&errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::interaction::paper_running_example;
    use tin_core::policy::{PolicyConfig, SelectionPolicy};
    use tin_core::tracker::build_tracker;

    fn ov(i: u32) -> Origin {
        Origin::Vertex(VertexId::new(i))
    }

    fn set(pairs: &[(Origin, f64)]) -> OriginSet {
        OriginSet::from_pairs(pairs.iter().cloned())
    }

    #[test]
    fn identical_sets_have_zero_error() {
        let a = set(&[(ov(1), 3.0), (ov(2), 1.0)]);
        let e = OriginSetError::compare(&a, &a, 2);
        assert!(e.is_exact());
        assert_eq!(e.total_variation, 0.0);
        assert_eq!(e.l1_error, 0.0);
        assert_eq!(e.known_fraction, 1.0);
        assert_eq!(e.topk_recall, 1.0);
        assert_eq!(e.topk_precision, 1.0);
    }

    #[test]
    fn disjoint_sets_have_maximal_total_variation() {
        let a = set(&[(ov(1), 4.0)]);
        let b = set(&[(ov(2), 4.0)]);
        let e = OriginSetError::compare(&a, &b, 1);
        assert!((e.total_variation - 1.0).abs() < 1e-12);
        assert_eq!(e.l1_error, 8.0);
        assert_eq!(e.topk_recall, 0.0);
        assert_eq!(e.topk_precision, 0.0);
        assert!(!e.is_exact());
    }

    #[test]
    fn unknown_mass_lowers_known_fraction() {
        // Half of the approximate answer was collapsed into α.
        let approx = set(&[(ov(1), 2.0), (Origin::Unknown, 2.0)]);
        let exact = set(&[(ov(1), 2.0), (ov(2), 2.0)]);
        let e = OriginSetError::compare(&approx, &exact, 2);
        assert!((e.known_fraction - 0.5).abs() < 1e-12);
        assert!((e.total_variation - 0.5).abs() < 1e-12);
        assert!((e.l1_error - 4.0).abs() < 1e-12);
        // v1 is still recovered in the top-k.
        assert!((e.topk_recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sets_compare_cleanly() {
        let empty = OriginSet::empty();
        let e = OriginSetError::compare(&empty, &empty, 3);
        assert!(e.is_exact());
        assert_eq!(e.topk_recall, 1.0);
        assert_eq!(e.topk_precision, 1.0);
        // Empty approximation of a non-empty exact answer.
        let exact = set(&[(ov(1), 2.0)]);
        let e = OriginSetError::compare(&empty, &exact, 3);
        assert_eq!(e.topk_precision, 0.0);
        assert_eq!(e.topk_recall, 0.0);
        assert!((e.total_variation - 0.5).abs() < 1e-12 || e.total_variation <= 1.0);
    }

    #[test]
    fn report_aggregates_errors() {
        let errors = vec![
            OriginSetError {
                total_variation: 0.0,
                l1_error: 0.0,
                known_fraction: 1.0,
                topk_recall: 1.0,
                topk_precision: 1.0,
            },
            OriginSetError {
                total_variation: 0.5,
                l1_error: 4.0,
                known_fraction: 0.5,
                topk_recall: 0.5,
                topk_precision: 0.5,
            },
        ];
        let report = AccuracyReport::from_errors(&errors);
        assert_eq!(report.vertices_compared, 2);
        assert!((report.mean_total_variation - 0.25).abs() < 1e-12);
        assert!((report.max_total_variation - 0.5).abs() < 1e-12);
        assert!((report.mean_l1_error - 2.0).abs() < 1e-12);
        assert!((report.mean_known_fraction - 0.75).abs() < 1e-12);
        assert!(!report.is_exact());
        assert_eq!(AccuracyReport::from_errors(&[]), AccuracyReport::default());
    }

    #[test]
    fn selective_tracking_is_exact_for_tracked_origins() {
        // Track every vertex: the selective tracker must be exact.
        let rs = paper_running_example();
        let exact = {
            let mut t =
                build_tracker(&PolicyConfig::Plain(SelectionPolicy::ProportionalDense), 3).unwrap();
            t.process_all(&rs);
            t
        };
        let all_tracked = {
            let mut t = build_tracker(
                &PolicyConfig::Selective {
                    tracked: (0..3).map(VertexId::new).collect(),
                },
                3,
            )
            .unwrap();
            t.process_all(&rs);
            t
        };
        let report = compare_trackers(all_tracked.as_ref(), exact.as_ref(), 3);
        assert_eq!(report.vertices_compared, 3);
        assert!(report.is_exact(), "{report:?}");

        // Track only vertex 1: provenance from vertex 2 is collapsed, so the
        // known fraction drops below 1 but the top-1 origin (v1 dominates two
        // of the three buffers) is still mostly recovered.
        let partial = {
            let mut t = build_tracker(
                &PolicyConfig::Selective {
                    tracked: vec![VertexId::new(1)],
                },
                3,
            )
            .unwrap();
            t.process_all(&rs);
            t
        };
        let report = compare_trackers(partial.as_ref(), exact.as_ref(), 1);
        assert!(report.mean_known_fraction < 1.0);
        assert!(report.mean_total_variation > 0.0);
        assert!(report.mean_topk_recall > 0.5);
    }

    #[test]
    fn grouped_tracking_compared_after_coarsening() {
        let rs = paper_running_example();
        let grouping = Grouping {
            num_groups: 2,
            group_of: vec![0, 1, 1],
        };
        let exact = {
            let mut t =
                build_tracker(&PolicyConfig::Plain(SelectionPolicy::ProportionalDense), 3).unwrap();
            t.process_all(&rs);
            t
        };
        let grouped = {
            let mut t = build_tracker(&grouping.to_policy(), 3).unwrap();
            t.process_all(&rs);
            t
        };
        // Against the raw vertex-level answer the grouped tracker looks wrong …
        let naive = compare_trackers(grouped.as_ref(), exact.as_ref(), 2);
        assert!(naive.mean_total_variation > 0.0);
        // … but after coarsening the exact answer to groups it is exact.
        let fair = compare_grouped_tracker(grouped.as_ref(), exact.as_ref(), &grouping, 2);
        assert!(fair.is_exact(), "{fair:?}");
    }

    #[test]
    fn coarsening_merges_vertices_of_the_same_group() {
        let grouping = Grouping {
            num_groups: 2,
            group_of: vec![0, 0, 1],
        };
        let origins = set(&[
            (ov(0), 1.0),
            (ov(1), 2.0),
            (ov(2), 3.0),
            (Origin::Unknown, 1.0),
        ]);
        let coarse = coarsen_to_groups(&origins, &grouping);
        assert_eq!(coarse.len(), 3);
        assert_eq!(coarse.quantity_from(Origin::Group(GroupId::new(0))), 3.0);
        assert_eq!(coarse.quantity_from(Origin::Group(GroupId::new(1))), 3.0);
        assert_eq!(coarse.quantity_from(Origin::Unknown), 1.0);
    }
}
