//! Descriptive statistics over provenance origin sets.
//!
//! The paper's use cases (Figures 2 and 9) present provenance as
//! *distributions*: pie charts of the origins contributing to a buffer, the
//! number of contributing vertices, whether a vertex is financed by few or
//! many sources. This module turns an [`OriginSet`] into those summaries.

use serde::{Deserialize, Serialize};

use tin_core::ids::Origin;
use tin_core::origins::OriginSet;
use tin_core::quantity::qty_is_zero;

/// A normalised provenance distribution: each origin's share of the buffered
/// quantity, sorted by descending share.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceDistribution {
    /// `(origin, fraction)` pairs, fractions summing to 1 (unless empty).
    pub shares: Vec<(Origin, f64)>,
    /// The total quantity the distribution describes.
    pub total: f64,
}

impl ProvenanceDistribution {
    /// Build a distribution from an origin set. Returns an empty
    /// distribution for an empty buffer.
    pub fn from_origins(origins: &OriginSet) -> Self {
        let total = origins.total();
        if qty_is_zero(total) {
            return ProvenanceDistribution::default();
        }
        let shares = origins.iter().map(|(o, q)| (o, q / total)).collect();
        ProvenanceDistribution { shares, total }
    }

    /// Number of distinct origins.
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// True if the distribution is empty.
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }

    /// The share (0–1) of a given origin.
    pub fn share_of(&self, origin: Origin) -> f64 {
        self.shares
            .iter()
            .find(|(o, _)| *o == origin)
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }

    /// Shannon entropy of the distribution in bits. 0 for a single origin,
    /// `log2(n)` for `n` equally contributing origins. A useful scalar for
    /// "does this vertex receive funds from numerous or few sources?"
    pub fn entropy_bits(&self) -> f64 {
        self.shares
            .iter()
            .filter(|(_, p)| *p > 0.0)
            .map(|(_, p)| -p * p.log2())
            .sum()
    }

    /// Herfindahl–Hirschman concentration index (Σ pᵢ²): 1 when a single
    /// origin dominates, →0 for many small contributors.
    pub fn concentration(&self) -> f64 {
        self.shares.iter().map(|(_, p)| p * p).sum()
    }

    /// Total-variation distance to another distribution:
    /// `½ · Σ_o |p(o) − q(o)|`, between 0 (identical compositions) and 1
    /// (disjoint origin sets). Comparing the pie charts of consecutive
    /// Figure 2 samples with this metric quantifies how much a vertex's
    /// provenance composition shifted between two points in time.
    pub fn total_variation(&self, other: &ProvenanceDistribution) -> f64 {
        let mut origins: std::collections::BTreeSet<Origin> =
            self.shares.iter().map(|(o, _)| *o).collect();
        origins.extend(other.shares.iter().map(|(o, _)| *o));
        0.5 * origins
            .into_iter()
            .map(|o| (self.share_of(o) - other.share_of(o)).abs())
            .sum::<f64>()
    }

    /// Number of origins needed to cover `fraction` of the quantity
    /// (origins are already sorted by descending share).
    pub fn origins_covering(&self, fraction: f64) -> usize {
        let mut acc = 0.0;
        for (i, (_, p)) in self.shares.iter().enumerate() {
            acc += p;
            // Tolerate floating-point rounding in the cumulative sum.
            if acc >= fraction - 1e-9 {
                return i + 1;
            }
        }
        self.shares.len()
    }
}

/// Classification of a vertex by how concentrated its provenance is, used in
/// financial-forensics reporting ("accounts that receive funds from numerous
/// or few sources", Section 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceProfile {
    /// Buffer is empty.
    Empty,
    /// A single origin contributes more than 90% of the quantity.
    SingleSource,
    /// At most five origins contribute.
    FewSources,
    /// More than five origins contribute.
    ManySources,
}

/// Classify an origin set into a [`SourceProfile`].
pub fn classify_sources(origins: &OriginSet) -> SourceProfile {
    if origins.is_empty() {
        return SourceProfile::Empty;
    }
    let dist = ProvenanceDistribution::from_origins(origins);
    if dist.shares.first().map(|(_, p)| *p).unwrap_or(0.0) > 0.9 {
        SourceProfile::SingleSource
    } else if origins.len() <= 5 {
        SourceProfile::FewSources
    } else {
        SourceProfile::ManySources
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::ids::VertexId;

    fn ov(i: u32) -> Origin {
        Origin::Vertex(VertexId::new(i))
    }

    fn set(pairs: &[(u32, f64)]) -> OriginSet {
        OriginSet::from_pairs(pairs.iter().map(|&(i, q)| (ov(i), q)))
    }

    #[test]
    fn empty_distribution() {
        let d = ProvenanceDistribution::from_origins(&OriginSet::empty());
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.total, 0.0);
        assert_eq!(d.entropy_bits(), 0.0);
    }

    #[test]
    fn shares_sum_to_one() {
        let d = ProvenanceDistribution::from_origins(&set(&[(1, 3.0), (2, 1.0)]));
        assert_eq!(d.len(), 2);
        let sum: f64 = d.shares.iter().map(|(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((d.share_of(ov(1)) - 0.75).abs() < 1e-12);
        assert!((d.share_of(ov(2)) - 0.25).abs() < 1e-12);
        assert_eq!(d.share_of(ov(9)), 0.0);
        assert_eq!(d.total, 4.0);
    }

    #[test]
    fn entropy_of_uniform_distribution() {
        let d =
            ProvenanceDistribution::from_origins(&set(&[(1, 1.0), (2, 1.0), (3, 1.0), (4, 1.0)]));
        assert!((d.entropy_bits() - 2.0).abs() < 1e-9);
        let single = ProvenanceDistribution::from_origins(&set(&[(1, 5.0)]));
        assert_eq!(single.entropy_bits(), 0.0);
    }

    #[test]
    fn concentration_index() {
        let single = ProvenanceDistribution::from_origins(&set(&[(1, 5.0)]));
        assert!((single.concentration() - 1.0).abs() < 1e-12);
        let uniform = ProvenanceDistribution::from_origins(&set(&[(1, 1.0), (2, 1.0)]));
        assert!((uniform.concentration() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn total_variation_distance() {
        let a = ProvenanceDistribution::from_origins(&set(&[(1, 3.0), (2, 1.0)]));
        let same_composition = ProvenanceDistribution::from_origins(&set(&[(1, 6.0), (2, 2.0)]));
        let disjoint = ProvenanceDistribution::from_origins(&set(&[(3, 5.0)]));
        assert!(a.total_variation(&a) < 1e-12);
        assert!(a.total_variation(&same_composition) < 1e-12);
        assert!((a.total_variation(&disjoint) - 1.0).abs() < 1e-12);
        // Symmetric, and a partial overlap lands strictly in between.
        let shifted = ProvenanceDistribution::from_origins(&set(&[(1, 1.0), (2, 3.0)]));
        let d = a.total_variation(&shifted);
        assert!((d - shifted.total_variation(&a)).abs() < 1e-12);
        assert!((d - 0.5).abs() < 1e-12);
        // The empty distribution carries no mass at all, so only the ½·Σ|p|
        // term remains: the distance degenerates to 0.5.
        assert!((a.total_variation(&ProvenanceDistribution::default()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn origins_covering_fraction() {
        let d = ProvenanceDistribution::from_origins(&set(&[(1, 6.0), (2, 3.0), (3, 1.0)]));
        assert_eq!(d.origins_covering(0.5), 1);
        assert_eq!(d.origins_covering(0.9), 2);
        assert_eq!(d.origins_covering(1.0), 3);
        assert_eq!(ProvenanceDistribution::default().origins_covering(0.5), 0);
    }

    #[test]
    fn source_classification() {
        assert_eq!(classify_sources(&OriginSet::empty()), SourceProfile::Empty);
        assert_eq!(
            classify_sources(&set(&[(1, 100.0), (2, 1.0)])),
            SourceProfile::SingleSource
        );
        assert_eq!(
            classify_sources(&set(&[(1, 2.0), (2, 2.0), (3, 1.0)])),
            SourceProfile::FewSources
        );
        let many: Vec<(u32, f64)> = (0..10).map(|i| (i, 1.0)).collect();
        assert_eq!(classify_sources(&set(&many)), SourceProfile::ManySources);
    }
}
