//! Statistics over transfer paths (how-provenance, Section 6 / Table 10).
//!
//! The path tracker records, for every buffered quantity element, the route
//! it followed from its origin. This module summarises those routes: length
//! distribution, the most common routes into a vertex, and the per-dataset
//! aggregates reported in Table 10.

use serde::{Deserialize, Serialize};

use tin_core::ids::VertexId;
use tin_core::tracker::path::PathTracker;
use tin_core::tracker::ProvenanceTracker;

/// Aggregate path statistics for a whole tracker (one Table 10 row).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PathStatistics {
    /// Number of buffered quantity elements.
    pub num_elements: usize,
    /// Average number of relays per element ("avg. path length").
    pub avg_path_length: f64,
    /// Maximum number of relays over all elements.
    pub max_path_length: usize,
    /// Bytes used to store provenance entries.
    pub entries_bytes: usize,
    /// Bytes used to store the paths themselves.
    pub paths_bytes: usize,
}

/// Compute aggregate path statistics from a [`PathTracker`].
pub fn statistics(tracker: &PathTracker) -> PathStatistics {
    let mut num_elements = 0usize;
    let mut total_hops = 0usize;
    let mut max_hops = 0usize;
    for v in 0..tracker.num_vertices() {
        for e in tracker.elements(VertexId::from(v)) {
            num_elements += 1;
            total_hops += e.hops();
            max_hops = max_hops.max(e.hops());
        }
    }
    let fp = tracker.footprint();
    PathStatistics {
        num_elements,
        avg_path_length: if num_elements == 0 {
            0.0
        } else {
            total_hops as f64 / num_elements as f64
        },
        max_path_length: max_hops,
        entries_bytes: fp.entries_bytes,
        paths_bytes: fp.paths_bytes,
    }
}

/// A route into a vertex together with how much buffered quantity followed it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteShare {
    /// The route (origin first, then each relay vertex).
    pub route: Vec<VertexId>,
    /// Total buffered quantity that followed this route.
    pub quantity: f64,
    /// Number of buffered elements that followed this route.
    pub elements: usize,
}

/// The most significant routes (by quantity) into vertex `v`.
pub fn top_routes(tracker: &PathTracker, v: VertexId, k: usize) -> Vec<RouteShare> {
    let mut agg: std::collections::BTreeMap<Vec<VertexId>, (f64, usize)> =
        std::collections::BTreeMap::new();
    for e in tracker.elements(v) {
        let entry = agg.entry(e.path.clone()).or_insert((0.0, 0));
        entry.0 += e.qty;
        entry.1 += 1;
    }
    let mut routes: Vec<RouteShare> = agg
        .into_iter()
        .map(|(route, (quantity, elements))| RouteShare {
            route,
            quantity,
            elements,
        })
        .collect();
    routes.sort_by(|a, b| b.quantity.total_cmp(&a.quantity));
    routes.truncate(k);
    routes
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::interaction::{paper_running_example, Interaction};

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn statistics_on_running_example() {
        let mut t = PathTracker::lifo(3);
        t.process_all(&paper_running_example());
        let stats = statistics(&t);
        assert!(stats.num_elements > 0);
        assert!(stats.avg_path_length > 0.0);
        assert!(stats.max_path_length >= 1);
        assert!(stats.entries_bytes > 0);
        assert!(stats.paths_bytes > 0);
        // The tracker's own average agrees with ours.
        assert!((stats.avg_path_length - t.average_path_length()).abs() < 1e-12);
    }

    #[test]
    fn statistics_of_empty_tracker() {
        let t = PathTracker::lifo(4);
        let stats = statistics(&t);
        assert_eq!(stats.num_elements, 0);
        assert_eq!(stats.avg_path_length, 0.0);
        assert_eq!(stats.max_path_length, 0);
    }

    #[test]
    fn top_routes_aggregates_by_route() {
        // Two parallel two-hop routes into vertex 3, one carrying more
        // quantity than the other.
        let rs = vec![
            Interaction::new(0u32, 1u32, 1.0, 10.0),
            Interaction::new(0u32, 2u32, 2.0, 4.0),
            Interaction::new(1u32, 3u32, 3.0, 10.0),
            Interaction::new(2u32, 3u32, 4.0, 4.0),
        ];
        let mut t = PathTracker::fifo(4);
        t.process_all(&rs);
        let routes = top_routes(&t, v(3), 10);
        assert_eq!(routes.len(), 2);
        assert_eq!(routes[0].route, vec![v(0), v(1)]);
        assert!((routes[0].quantity - 10.0).abs() < 1e-9);
        assert_eq!(routes[1].route, vec![v(0), v(2)]);
        assert_eq!(routes[1].elements, 1);
        // k limits the number of routes returned.
        assert_eq!(top_routes(&t, v(3), 1).len(), 1);
        // A vertex with an empty buffer has no routes.
        assert!(top_routes(&t, v(0), 5).is_empty());
    }

    #[test]
    fn long_chains_increase_max_path_length() {
        let n = 12u32;
        let mut t = PathTracker::lifo(n as usize);
        for i in 0..n - 1 {
            t.process(&Interaction::new(i, i + 1, i as f64 + 1.0, 3.0));
        }
        let stats = statistics(&t);
        assert_eq!(stats.max_path_length, (n - 2) as usize);
    }
}
