//! Allow-directive parsing.
//!
//! Two forms suppress a lint, both requiring a written justification:
//!
//! * Comment form, for real workspace code:
//!   `// tin-lint: allow(<lint>): <justification>`
//! * Attribute form, for fixtures that never compile as part of the
//!   workspace: `#[lint::allow(<lint>, reason = "<justification>")]`
//!
//! A directive suppresses matching diagnostics on its own line and on the
//! first following line that holds any code — so it can sit above the
//! offending construct or trail it on the same line. A directive with an
//! unknown lint name or an empty justification is itself reported.

use crate::diagnostics::Diagnostic;
use crate::lints::LINT_NAMES;

/// One parsed allow-directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// Lint name this directive suppresses.
    pub lint: String,
    /// The written justification (may be empty — reported as malformed).
    pub justification: String,
    /// Line the directive appears on (1-indexed).
    pub line: usize,
    /// The next line after `line` that contains code (the construct the
    /// directive covers when it is written above it).
    pub covers_line: usize,
}

/// Extract every directive from the raw source, plus diagnostics for
/// malformed ones (unknown lint name, missing justification).
pub fn parse(file: &str, src: &str) -> (Vec<Directive>, Vec<Diagnostic>) {
    let mut directives = Vec::new();
    let mut problems = Vec::new();
    let lines: Vec<&str> = src.lines().collect();
    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let parsed = parse_comment_form(raw).or_else(|| parse_attribute_form(raw));
        let Some((lint, justification)) = parsed else {
            continue;
        };
        if !LINT_NAMES.contains(&lint.as_str()) {
            problems.push(Diagnostic::new(
                "malformed-directive",
                file,
                line_no,
                format!(
                    "allow-directive names unknown lint `{lint}` (known: {})",
                    LINT_NAMES.join(", ")
                ),
            ));
            continue;
        }
        if justification.trim().is_empty() {
            problems.push(Diagnostic::new(
                "malformed-directive",
                file,
                line_no,
                format!(
                    "allow({lint}) directive has no justification — say why the exception is sound"
                ),
            ));
            continue;
        }
        // The covered line: the next line below that holds code. Skips
        // blank lines, further comments, and attributes so a directive can
        // sit in a comment block above the construct it excuses.
        let covers_line = (idx + 1..lines.len())
            .find(|&j| {
                let t = lines[j].trim();
                !t.is_empty()
                    && !t.starts_with("//")
                    && !t.starts_with("#[")
                    && !t.starts_with("#!")
            })
            .map(|j| j + 1)
            .unwrap_or(line_no);
        directives.push(Directive {
            lint,
            justification,
            line: line_no,
            covers_line,
        });
    }
    (directives, problems)
}

/// `// tin-lint: allow(<lint>): <justification>` (anywhere in the line, so
/// it can trail code).
fn parse_comment_form(line: &str) -> Option<(String, String)> {
    let start = line.find("// tin-lint: allow(")?;
    let rest = &line[start + "// tin-lint: allow(".len()..];
    let close = rest.find(')')?;
    let lint = rest[..close].trim().to_string();
    let after = rest[close + 1..].trim_start();
    let justification = after.strip_prefix(':').unwrap_or("").trim().to_string();
    Some((lint, justification))
}

/// `#[lint::allow(<lint>, reason = "<justification>")]` — fixture-only form.
fn parse_attribute_form(line: &str) -> Option<(String, String)> {
    let start = line.find("#[lint::allow(")?;
    let rest = &line[start + "#[lint::allow(".len()..];
    let close = rest.rfind(")]")?;
    let inner = &rest[..close];
    let (lint, tail) = match inner.find(',') {
        Some(comma) => (inner[..comma].trim(), inner[comma + 1..].trim()),
        None => (inner.trim(), ""),
    };
    let justification = tail
        .strip_prefix("reason")
        .and_then(|t| t.trim_start().strip_prefix('='))
        .map(|t| t.trim().trim_matches('"').to_string())
        .unwrap_or_default();
    Some((lint.to_string(), justification))
}

/// Is a diagnostic of `lint` at `line` suppressed by one of `directives`?
pub fn suppressed(directives: &[Directive], lint: &str, line: usize) -> bool {
    directives
        .iter()
        .any(|d| d.lint == lint && (d.line == line || d.covers_line == line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comment_form_parses() {
        let src = "let x = 1; // tin-lint: allow(determinism): order-independent fold\n";
        let (ds, problems) = parse("f.rs", src);
        assert!(problems.is_empty());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].lint, "determinism");
        assert_eq!(ds[0].justification, "order-independent fold");
        assert!(suppressed(&ds, "determinism", 1));
        assert!(!suppressed(&ds, "hot-path-alloc", 1));
    }

    #[test]
    fn directive_above_covers_next_code_line() {
        let src = "// tin-lint: allow(channel-protocol): test-only helper\n\n// more\nrx.recv().unwrap();\n";
        let (ds, _) = parse("f.rs", src);
        assert_eq!(ds[0].covers_line, 4);
        assert!(suppressed(&ds, "channel-protocol", 4));
    }

    #[test]
    fn missing_justification_is_reported() {
        let (ds, problems) = parse("f.rs", "// tin-lint: allow(determinism)\n");
        assert!(ds.is_empty());
        assert_eq!(problems.len(), 1);
        assert_eq!(problems[0].lint, "malformed-directive");
    }

    #[test]
    fn unknown_lint_is_reported() {
        let (ds, problems) = parse("f.rs", "// tin-lint: allow(made-up): because\n");
        assert!(ds.is_empty());
        assert_eq!(problems.len(), 1);
    }

    #[test]
    fn attribute_form_parses() {
        let src = "#[lint::allow(hot-path-alloc, reason = \"cold constructor\")]\nfn f() {}\n";
        let (ds, problems) = parse("f.rs", src);
        assert!(problems.is_empty());
        assert_eq!(ds[0].lint, "hot-path-alloc");
        assert_eq!(ds[0].justification, "cold constructor");
        assert_eq!(ds[0].covers_line, 2);
    }
}
