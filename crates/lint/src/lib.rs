//! `tin-lint` — workspace-aware static analysis for the tin provenance
//! engine.
//!
//! Five invariants that ordinary `clippy` cannot see keep this codebase
//! honest, and this crate enforces them offline with a hand-rolled lexer
//! and token-level matchers (no `syn`, no dependencies):
//!
//! * **`determinism`** — no `HashMap`/`HashSet` iteration that accumulates
//!   floats or emits per-vertex output in `crates/core` and `crates/shard`;
//!   hash iteration order would break the bit-identical
//!   sequential-vs-sharded equivalence the engine guarantees.
//! * **`channel-protocol`** — every `recv()`-family call in `crates/shard`
//!   handles peer disconnect explicitly instead of `.unwrap()`ing; panicking
//!   on a dead channel defeats the fail-fast sentinel protocol.
//! * **`tracker-conformance`** — every `impl ProvenanceTracker` wires the
//!   take/put migration hooks and spike-monitor plumbing through the shared
//!   implementation (`impl_migration_hooks!`/`impl_spike_monitor_hooks!`),
//!   so the factory trackers cannot drift apart again.
//! * **`hot-path-alloc`** — no `Vec::new`/`vec!`/`format!`/`.collect()`/
//!   `Box::new` in the kernel modules (`sparse_vec`, `dense_vec`,
//!   `adaptive_vec`, `simd`), whose steady state is allocation-free.
//! * **`checkpoint-durability`** — no `write_all`/`fs::write` without an
//!   `sync_all`/`sync_data` in the same function inside the checkpoint
//!   module: a checkpoint visible under its final name must be on disk,
//!   not in the page cache.
//!
//! Exceptions are explicit and audited: a finding is suppressed only by a
//! justified allow-directive (see [`directives`]), and a malformed
//! directive is itself a finding.
//!
//! Run `cargo run -p tin-lint -- --workspace` (the CI gate) for human
//! diagnostics, `--json` for machine-readable output.

pub mod diagnostics;
pub mod directives;
pub mod lexer;
pub mod lints;
pub mod workspace;

pub use diagnostics::{to_json, Diagnostic};

/// Lint a single source text with the given lints, applying (and checking)
/// its allow-directives. This is the unit the workspace runner and the
/// fixture tests share.
pub fn lint_source(file: &str, src: &str, lint_names: &[&str]) -> Vec<Diagnostic> {
    let (directives, mut diags) = directives::parse(file, src);
    let tokens = lexer::lex(src);
    for lint in lint_names {
        for d in lints::run(lint, file, &tokens) {
            if !directives::suppressed(&directives, d.lint, d.line) {
                diags.push(d);
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_requires_matching_lint() {
        let src = "// tin-lint: allow(hot-path-alloc): wrong lint\nlet m = rx.recv().unwrap();\n";
        let diags = lint_source("f.rs", src, &["channel-protocol"]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].lint, "channel-protocol");
    }

    #[test]
    fn justified_directive_suppresses() {
        let src =
            "// tin-lint: allow(channel-protocol): startup handshake, peers provably alive\nlet m = rx.recv().unwrap();\n";
        assert!(lint_source("f.rs", src, &["channel-protocol"]).is_empty());
    }

    #[test]
    fn trailing_directive_suppresses_same_line() {
        let src = "let m = rx.recv().unwrap(); // tin-lint: allow(channel-protocol): test rig\n";
        assert!(lint_source("f.rs", src, &["channel-protocol"]).is_empty());
    }
}
