//! CLI for `tin-lint`.
//!
//! ```text
//! tin-lint --workspace [--root DIR] [--json]   # lint crates/ and src/
//! tin-lint [--json] FILE...                    # lint specific files
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error. CI runs
//! `cargo run -p tin-lint -- --workspace` as a required gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--help" | "-h" => {
                println!(
                    "tin-lint: static analysis for the tin workspace\n\n\
                     USAGE:\n  tin-lint --workspace [--root DIR] [--json]\n  \
                     tin-lint [--json] FILE...\n\n\
                     Lints: {}",
                    tin_lint::lints::LINT_NAMES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            path => files.push(PathBuf::from(path)),
        }
    }
    if !workspace && files.is_empty() {
        return usage("pass --workspace or at least one file");
    }

    let diags = if workspace {
        match tin_lint::workspace::run(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!(
                    "tin-lint: failed to walk workspace at {}: {e}",
                    root.display()
                );
                return ExitCode::from(2);
            }
        }
    } else {
        let mut diags = Vec::new();
        for file in &files {
            let rel = file.to_string_lossy().replace('\\', "/");
            let lints = tin_lint::workspace::applicable_lints(&rel);
            match std::fs::read_to_string(file) {
                Ok(src) => diags.extend(tin_lint::lint_source(&rel, &src, &lints)),
                Err(e) => {
                    eprintln!("tin-lint: cannot read {rel}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        diags
    };

    if json {
        println!("{}", tin_lint::to_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.human());
        }
        if diags.is_empty() {
            println!("tin-lint: clean");
        } else {
            println!(
                "tin-lint: {} finding{} — fix or add a justified allow-directive",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" }
            );
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("tin-lint: {problem} (see --help)");
    ExitCode::from(2)
}
