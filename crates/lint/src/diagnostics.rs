//! Diagnostics and their human/JSON renderings.

/// One lint finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Lint name (`determinism`, `channel-protocol`, `tracker-conformance`,
    /// `hot-path-alloc`, or `malformed-directive`).
    pub lint: &'static str,
    /// Path as reported (workspace-relative when run via `--workspace`).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        lint: &'static str,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            lint,
            file: file.into(),
            line,
            message: message.into(),
        }
    }

    /// `path/to/file.rs:42: [lint-name] message` — the classic clickable
    /// compiler-diagnostic shape.
    pub fn human(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Render diagnostics as a JSON array (hand-rolled: this crate is
/// dependency-free). Stable field order: lint, file, line, message.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(d.lint),
            escape(&d.file),
            d.line,
            escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering_is_clickable() {
        let d = Diagnostic::new("determinism", "crates/core/src/x.rs", 7, "msg");
        assert_eq!(d.human(), "crates/core/src/x.rs:7: [determinism] msg");
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let d = Diagnostic::new("channel-protocol", "a\\b.rs", 1, "say \"hi\"");
        let json = to_json(&[d]);
        assert!(json.contains(r#""file": "a\\b.rs""#));
        assert!(json.contains(r#"say \"hi\""#));
    }

    #[test]
    fn empty_is_an_empty_array() {
        assert_eq!(to_json(&[]), "[]");
    }
}
