//! Workspace walking and per-lint applicability.
//!
//! `tin-lint --workspace` walks every `.rs` file under `crates/` and `src/`
//! (skipping build output, vendored stubs, and the lint fixtures, which are
//! deliberately-violating snippets). Each lint binds to the code whose
//! invariant it enforces:
//!
//! | lint                  | applies to                                     |
//! |-----------------------|------------------------------------------------|
//! | `determinism`         | `crates/core/src/`, `crates/shard/src/`        |
//! | `channel-protocol`    | `crates/shard/src/`                            |
//! | `tracker-conformance` | `crates/core/src/tracker/`                     |
//! | `hot-path-alloc`      | kernel modules under `crates/core/src/`        |
//! | `checkpoint-durability` | `crates/core/src/checkpoint.rs`              |
//! | `obs-conformance`     | `crates/core/src/`, `crates/shard/src/`        |
//! | `bounded-retry`       | `crates/shard/src/`, `crates/core/src/checkpoint.rs` |
//! | `metric-naming`       | `crates/core/src/`, `crates/shard/src/`, `crates/obs/src/` |

use crate::diagnostics::Diagnostic;
use std::path::{Path, PathBuf};

/// Kernel modules bound by the hot-path allocation lint.
pub const KERNEL_MODULES: &[&str] = &[
    "sparse_vec.rs",
    "dense_vec.rs",
    "adaptive_vec.rs",
    "simd.rs",
];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "fixtures", "vendor", ".git"];

/// Lints applicable to the workspace-relative path `rel`.
pub fn applicable_lints(rel: &str) -> Vec<&'static str> {
    let rel = rel.replace('\\', "/");
    let mut lints = Vec::new();
    if rel.starts_with("crates/core/src/") || rel.starts_with("crates/shard/src/") {
        lints.push("determinism");
    }
    if rel.starts_with("crates/shard/src/") {
        lints.push("channel-protocol");
    }
    if rel.starts_with("crates/core/src/tracker/") {
        lints.push("tracker-conformance");
    }
    if rel.starts_with("crates/core/src/")
        && KERNEL_MODULES
            .iter()
            .any(|k| rel.ends_with(&format!("/{k}")))
    {
        lints.push("hot-path-alloc");
    }
    if rel == "crates/core/src/checkpoint.rs" {
        lints.push("checkpoint-durability");
    }
    if rel.starts_with("crates/core/src/") || rel.starts_with("crates/shard/src/") {
        lints.push("obs-conformance");
    }
    if rel.starts_with("crates/shard/src/") || rel == "crates/core/src/checkpoint.rs" {
        lints.push("bounded-retry");
    }
    if rel.starts_with("crates/core/src/")
        || rel.starts_with("crates/shard/src/")
        || rel.starts_with("crates/obs/src/")
    {
        lints.push("metric-naming");
    }
    lints
}

/// Every `.rs` file under `<root>/crates` and `<root>/src`, sorted, as
/// workspace-relative paths.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from))
        .collect();
    rel.sort();
    Ok(rel)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`. Diagnostics come back sorted
/// by (file, line, lint) with allow-directives already applied.
pub fn run(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for rel in workspace_files(root)? {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        // The lint crate's own docs and tests quote directive syntax as
        // examples; no lint binds to it, so skip it rather than teach the
        // directive scanner to distinguish mentions from uses.
        if rel_str.starts_with("crates/lint/") {
            continue;
        }
        let lints = applicable_lints(&rel_str);
        let src = std::fs::read_to_string(root.join(&rel))?;
        // Directive problems are reported even in files no lint binds to, so
        // a typoed or justification-free directive can never rot silently.
        diags.extend(crate::lint_source(&rel_str, &src, &lints));
    }
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    Ok(diags)
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn applicability_table() {
        assert_eq!(
            applicable_lints("crates/shard/src/engine.rs"),
            vec![
                "determinism",
                "channel-protocol",
                "obs-conformance",
                "bounded-retry",
                "metric-naming"
            ]
        );
        assert_eq!(
            applicable_lints("crates/core/src/tracker/grouped.rs"),
            vec![
                "determinism",
                "tracker-conformance",
                "obs-conformance",
                "metric-naming"
            ]
        );
        assert_eq!(
            applicable_lints("crates/core/src/sparse_vec.rs"),
            vec![
                "determinism",
                "hot-path-alloc",
                "obs-conformance",
                "metric-naming"
            ]
        );
        assert_eq!(
            applicable_lints("crates/core/src/checkpoint.rs"),
            vec![
                "determinism",
                "checkpoint-durability",
                "obs-conformance",
                "bounded-retry",
                "metric-naming"
            ]
        );
        assert_eq!(
            applicable_lints("crates/obs/src/metrics.rs"),
            vec!["metric-naming"]
        );
        assert!(applicable_lints("crates/cli/src/lib.rs").is_empty());
        assert!(applicable_lints("crates/lint/src/lib.rs").is_empty());
    }
}
