//! A hand-rolled Rust lexer sufficient for token-level lint matching.
//!
//! This is deliberately *not* a full Rust parser: the lints in this crate
//! only need a faithful token stream with line numbers, which means the
//! lexer's one hard job is never mis-classifying the things that would make
//! token matching lie — comments, string/char literals (including raw and
//! byte forms), lifetimes vs. char literals, and nested block comments.
//! Everything else degrades gracefully to punctuation tokens.

/// A single lexed token with the 1-indexed line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `HashMap`, `recv`, ...).
    Ident,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// String, raw-string, byte-string, char, or numeric literal.
    Literal,
    /// Punctuation. Common compound operators (`::`, `+=`, `->`, ...) are
    /// lexed as a single token so lints can match them directly.
    Punct,
    /// `(`, `[`, `{`.
    OpenDelim,
    /// `)`, `]`, `}`.
    CloseDelim,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Compound operators lexed as one token, longest first.
const COMPOUND: &[&str] = &[
    "..=", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "..", "<<", ">>",
];

/// Lex `src` into a flat token stream. Comments and whitespace are dropped
/// (allow-directives are collected separately from the raw source by
/// [`crate::directives`]). The lexer never fails: bytes it does not
/// understand become single-character punctuation tokens.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. doc comments): skip to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (end, newlines) = scan_string(bytes, i);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let (end, newlines) = scan_raw_or_byte(bytes, i);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident not
                // followed by a closing quote; a char literal always closes.
                let (tok, end) = scan_quote(src, bytes, i, line);
                tokens.push(tok);
                i = end;
            }
            b'(' | b'[' | b'{' => {
                tokens.push(Token {
                    kind: TokenKind::OpenDelim,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
            b')' | b']' | b'}' => {
                tokens.push(Token {
                    kind: TokenKind::CloseDelim,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop before `..` (range operator), which is punctuation.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                let rest = &src[i..];
                let compound = COMPOUND.iter().find(|op| rest.starts_with(**op));
                let text = match compound {
                    Some(op) => (*op).to_string(),
                    None => (c as char).to_string(),
                };
                i += text.len();
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    tokens
}

/// Scan a `"..."` string starting at `start`; returns (end index, newlines).
fn scan_string(bytes: &[u8], start: usize) -> (usize, usize) {
    let mut i = start + 1;
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, newlines),
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, newlines)
}

/// Does `r"`, `r#"`, `b"`, `br"`, `br#"`, `rb...` start here?
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (r, b in either order), then optional `#`s,
    // then a quote.
    let mut letters = 0;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') && letters < 2 {
        j += 1;
        letters += 1;
    }
    let raw = bytes[i..j].contains(&b'r');
    if raw {
        while j < bytes.len() && bytes[j] == b'#' {
            j += 1;
        }
    }
    letters > 0 && bytes.get(j) == Some(&b'"')
}

/// Scan a raw/byte string starting at `start`; returns (end, newlines).
fn scan_raw_or_byte(bytes: &[u8], start: usize) -> (usize, usize) {
    let mut i = start;
    while i < bytes.len() && (bytes[i] == b'r' || bytes[i] == b'b') {
        i += 1;
    }
    let mut hashes = 0;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    let raw = bytes[start..i].contains(&b'r');
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if !raw => i += 2,
            b'"' => {
                // A raw string only closes on `"` followed by `hashes` #s.
                let closing = (0..hashes).all(|k| bytes.get(i + 1 + k) == Some(&b'#'));
                if closing {
                    return (i + 1 + hashes, newlines);
                }
                i += 1;
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, newlines)
}

/// Scan from a `'`: either a lifetime (`'a`) or a char literal (`'x'`).
fn scan_quote(src: &str, bytes: &[u8], start: usize, line: usize) -> (Token, usize) {
    let next = bytes.get(start + 1).copied();
    let is_ident_start = next.is_some_and(|c| c.is_ascii_alphabetic() || c == b'_');
    if is_ident_start && bytes.get(start + 2) != Some(&b'\'') {
        // Lifetime: `'` + identifier with no closing quote right after one
        // character. (`'a'` is a char literal; `'abc` is a lifetime.)
        let mut i = start + 1;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        // `'a'` where the ident is exactly one char was excluded above, but
        // `'ab'` is not valid Rust; treat a trailing quote as part of a char
        // literal anyway to stay out of trouble.
        if bytes.get(i) == Some(&b'\'') {
            i += 1;
            return (
                Token {
                    kind: TokenKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                },
                i,
            );
        }
        return (
            Token {
                kind: TokenKind::Lifetime,
                text: src[start..i].to_string(),
                line,
            },
            i,
        );
    }
    // Char literal, possibly escaped: `'x'`, `'\n'`, `'\u{1F600}'`.
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    (
        Token {
            kind: TokenKind::Literal,
            text: src[start..i].to_string(),
            line,
        },
        i,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_are_dropped_and_lines_tracked() {
        let toks = lex("a // x\n/* b \n c */ d");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].text, "a");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].text, "d");
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(texts("a /* x /* y */ z */ b"), vec!["a", "b"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(texts(r#"x "for in {" y"#), vec!["x", "\"for in {\"", "y"]);
        assert_eq!(
            texts(r##"x r#"recv().unwrap()"# y"##),
            vec!["x", "r#\"recv().unwrap()\"#", "y"]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("&'a str 'x' '\\n'");
        assert_eq!(toks[1].kind, TokenKind::Lifetime);
        assert_eq!(toks[1].text, "'a");
        assert_eq!(toks[3].kind, TokenKind::Literal);
        assert_eq!(toks[3].text, "'x'");
        assert_eq!(toks[4].text, "'\\n'");
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        assert_eq!(
            texts("a += b :: c -> d"),
            vec!["a", "+=", "b", "::", "c", "->", "d"]
        );
    }

    #[test]
    fn numbers_including_floats() {
        assert_eq!(texts("1.5f64 0..10"), vec!["1.5f64", "0", "..", "10"]);
    }
}
