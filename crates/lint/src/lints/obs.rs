//! L6 — obs conformance: a bare `println!`/`eprintln!` in the engine
//! crates (`crates/core`, `crates/shard`) bypasses the `tin-obs` facade —
//! it is invisible to the metrics registry and the flight recorder, it
//! interleaves nondeterministically with worker threads, and in the CLI's
//! case it corrupts the byte-identical stdout contract the shard-count
//! smoke test diffs. Engine code reports through metrics, spans, or a
//! returned error; user-facing text belongs to the CLI layer. Genuinely
//! justified prints (none exist today) need an explicit
//! `// tin-lint: allow(obs-conformance): <why>` directive.

use super::{in_ranges, test_mod_ranges};
use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};

const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

pub fn check(file: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    let skip = test_mod_ranges(tokens);
    let mut diags = Vec::new();
    for i in 0..tokens.len() {
        if in_ranges(&skip, i) {
            continue;
        }
        // `println ! ( ... )` — a macro invocation, not e.g. a doc-comment
        // mention or an identifier that merely contains the name.
        let name = &tokens[i];
        if name.kind != TokenKind::Ident || !PRINT_MACROS.contains(&name.text.as_str()) {
            continue;
        }
        let Some(bang) = tokens.get(i + 1) else {
            continue;
        };
        if !bang.is_punct("!") {
            continue;
        }
        let Some(open) = tokens.get(i + 2) else {
            continue;
        };
        if open.kind != TokenKind::OpenDelim {
            continue;
        }
        diags.push(Diagnostic::new(
            "obs-conformance",
            file,
            name.line,
            format!(
                "`{}!` in engine code bypasses the tin-obs facade; record a metric or \
                 span (or return an error) instead — or justify a cold-path print with \
                 `// tin-lint: allow(obs-conformance): <why>`",
                name.text
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod unit {
    use crate::lexer::lex;

    fn check(src: &str) -> Vec<crate::diagnostics::Diagnostic> {
        super::check("f.rs", &lex(src))
    }

    #[test]
    fn fires_on_bare_prints() {
        assert_eq!(check("fn f() { println!(\"hi\"); }").len(), 1);
        assert_eq!(check("fn f() { eprintln!(\"warn: {x}\"); }").len(), 1);
        assert_eq!(check("fn f(x: u32) -> u32 { dbg!(x) }").len(), 1);
    }

    #[test]
    fn ignores_test_modules_and_lookalikes() {
        assert!(check("mod tests { fn t() { println!(\"ok\"); } }").is_empty());
        // An identifier that merely contains the name is not a macro call.
        assert!(check("fn f() { my_println(); let println_count = 1; }").is_empty());
        // `writeln!` into an explicit sink is how the CLI builds output.
        assert!(check("fn f(out: &mut String) { writeln!(out, \"x\").unwrap(); }").is_empty());
    }
}
