//! The eight workspace lints, over flat token streams from [`crate::lexer`].
//!
//! Each lint is a pure function `(file, tokens) -> Vec<Diagnostic>`; the
//! caller ([`crate::lint_source`]) filters the result through the file's
//! allow-directives. Lints are token-level pattern matchers, not a type
//! checker: they are tuned so that every firing is either a real violation
//! of the invariant or close enough that an explicit, justified
//! allow-directive is the right fix.

pub mod alloc;
pub mod channel;
pub mod determinism;
pub mod durability;
pub mod naming;
pub mod obs;
pub mod retry;
pub mod tracker;

use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};

/// Every lint name, in stable order. `malformed-directive` is reserved for
/// directive-parsing problems and is not a matchable lint.
pub const LINT_NAMES: &[&str] = &[
    "determinism",
    "channel-protocol",
    "tracker-conformance",
    "hot-path-alloc",
    "checkpoint-durability",
    "obs-conformance",
    "bounded-retry",
    "metric-naming",
];

/// Run one lint by name over a token stream.
pub fn run(lint: &str, file: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    match lint {
        "determinism" => determinism::check(file, tokens),
        "channel-protocol" => channel::check(file, tokens),
        "tracker-conformance" => tracker::check(file, tokens),
        "hot-path-alloc" => alloc::check(file, tokens),
        "checkpoint-durability" => durability::check(file, tokens),
        "obs-conformance" => obs::check(file, tokens),
        "bounded-retry" => retry::check(file, tokens),
        "metric-naming" => naming::check(file, tokens),
        other => panic!("unknown lint `{other}`"),
    }
}

/// Index of the delimiter closing the group opened at `open` (which must be
/// an [`TokenKind::OpenDelim`]). Returns `tokens.len() - 1` on unbalanced
/// input rather than panicking — lints degrade, they don't crash.
pub(crate) fn matching_close(tokens: &[Token], open: usize) -> usize {
    debug_assert_eq!(tokens[open].kind, TokenKind::OpenDelim);
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::OpenDelim => depth += 1,
            TokenKind::CloseDelim => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Token-index ranges covering `mod tests { ... }` bodies (the workspace
/// idiom for `#[cfg(test)]` modules). Production invariants do not bind
/// test scaffolding, so lints skip these ranges.
pub(crate) fn test_mod_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("mod")
            && tokens[i + 1].kind == TokenKind::Ident
            && (tokens[i + 1].text == "tests" || tokens[i + 1].text.starts_with("test_"))
            && tokens[i + 2].kind == TokenKind::OpenDelim
            && tokens[i + 2].text == "{"
        {
            let close = matching_close(tokens, i + 2);
            ranges.push((i, close));
            i = close + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

pub(crate) fn in_ranges(ranges: &[(usize, usize)], i: usize) -> bool {
    ranges.iter().any(|&(a, b)| i >= a && i <= b)
}
