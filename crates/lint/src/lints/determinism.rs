//! L1 — determinism: iterating a `HashMap`/`HashSet` while accumulating
//! floating-point state or emitting per-vertex output makes results depend
//! on the hasher's iteration order. Float addition is not associative, so
//! even a "sum over all entries" silently stops being bit-identical between
//! runs — exactly the property the sequential-vs-sharded equivalence tests
//! pin down. The fix is a `BTreeMap`/`BTreeSet`, an explicit sort before
//! the loop, or a justified allow-directive for genuinely order-independent
//! folds (integer counters, max-tracking, and the like).

use super::{in_ranges, matching_close, test_mod_ranges};
use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;

pub fn check(file: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    let skip = test_mod_ranges(tokens);
    let hash_names = hash_typed_names(tokens);
    let mut diags = Vec::new();

    let mut i = 0;
    while i < tokens.len() {
        if in_ranges(&skip, i) || !tokens[i].is_ident("for") {
            i += 1;
            continue;
        }
        // `for <pat> in <expr> { body }` — find `in` and the body brace at
        // nesting depth 0 (Rust forbids bare struct literals in a for head,
        // so the first depth-0 `{` opens the body).
        let Some(in_idx) = find_at_depth0(tokens, i + 1, |t| t.is_ident("in")) else {
            i += 1;
            continue;
        };
        let Some(body_open) = find_at_depth0(tokens, in_idx + 1, |t| {
            t.kind == TokenKind::OpenDelim && t.text == "{"
        }) else {
            i += 1;
            continue;
        };
        let body_close = matching_close(tokens, body_open);
        let expr = &tokens[in_idx + 1..body_open];
        let body = &tokens[body_open..=body_close];

        if let Some(name) = hash_ordered_source(expr, &hash_names) {
            if let Some(sink) = order_sensitive_sink(body) {
                diags.push(Diagnostic::new(
                    "determinism",
                    file,
                    tokens[i].line,
                    format!(
                        "iteration over hash-ordered `{name}` {sink}; HashMap/HashSet order is \
                         nondeterministic — use a BTreeMap/BTreeSet, sort before the loop, or \
                         justify with `// tin-lint: allow(determinism): <why>`"
                    ),
                ));
            }
        }
        i = body_open + 1;
    }
    diags
}

/// Names bound to `HashMap`/`HashSet` values in this file: `let` bindings,
/// struct fields, and typed params (`name: HashMap<...>`).
fn hash_typed_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..tokens.len() {
        // `let [mut] NAME ... HashMap/HashSet ... ;` (bounded lookahead).
        if tokens[i].is_ident("let") {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].is_ident("mut") {
                j += 1;
            }
            if j < tokens.len() && tokens[j].kind == TokenKind::Ident {
                let name = &tokens[j].text;
                let window = &tokens[j + 1..tokens.len().min(j + 60)];
                let mut saw_hash = false;
                for t in window {
                    if t.is_punct(";") {
                        break;
                    }
                    if t.is_ident("HashMap") || t.is_ident("HashSet") {
                        saw_hash = true;
                        break;
                    }
                }
                if saw_hash {
                    names.insert(name.clone());
                }
            }
        }
        // `NAME : [&mut ...] HashMap/HashSet <` — fields and params.
        if tokens[i].kind == TokenKind::Ident && i + 2 < tokens.len() && tokens[i + 1].is_punct(":")
        {
            let window = &tokens[i + 2..tokens.len().min(i + 8)];
            if window
                .iter()
                .take_while(|t| !t.is_punct(",") && !t.is_punct(";"))
                .any(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
            {
                names.insert(tokens[i].text.clone());
            }
        }
    }
    names
}

/// Does the for-loop head iterate a hash-ordered container? Returns the name
/// to report. Direct constructor calls (`HashMap::new()`) count too.
fn hash_ordered_source(expr: &[Token], hash_names: &BTreeSet<String>) -> Option<String> {
    for t in expr {
        if t.kind == TokenKind::Ident {
            if t.text == "HashMap" || t.text == "HashSet" {
                return Some(t.text.clone());
            }
            if hash_names.contains(&t.text) {
                return Some(t.text.clone());
            }
        }
    }
    None
}

/// Does the loop body accumulate floats or emit per-vertex output? Returns a
/// short description of the sink for the message.
fn order_sensitive_sink(body: &[Token]) -> Option<&'static str> {
    for (i, t) in body.iter().enumerate() {
        if t.is_punct("+=") || t.is_punct("-=") || t.is_punct("*=") || t.is_punct("/=") {
            return Some("accumulates with a compound assignment");
        }
        if t.is_punct(".") {
            if let Some(next) = body.get(i + 1) {
                if next.is_ident("push")
                    || next.is_ident("push_str")
                    || next.is_ident("send")
                    || next.is_ident("extend")
                {
                    return Some("emits per-entry output");
                }
            }
        }
        if t.kind == TokenKind::Ident
            && (t.text == "println"
                || t.text == "writeln"
                || t.text == "write"
                || t.text == "print")
            && body.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            return Some("emits per-entry output");
        }
    }
    None
}

/// First token at delimiter depth 0 (relative to `start`) matching `pred`.
fn find_at_depth0(tokens: &[Token], start: usize, pred: impl Fn(&Token) -> bool) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(start) {
        match t.kind {
            TokenKind::OpenDelim => {
                if depth == 0 && pred(t) {
                    return Some(i);
                }
                depth += 1;
            }
            TokenKind::CloseDelim => {
                depth = depth.checked_sub(1)?;
            }
            _ if depth == 0 && pred(t) => return Some(i),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fires_on_hashmap_iteration_with_float_accumulation() {
        let src = "fn f() { let m: HashMap<u32, f64> = HashMap::new(); let mut s = 0.0; for (_, v) in m.iter() { s += v; } }";
        let d = check("x.rs", &lex(src));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains('m'));
    }

    #[test]
    fn clean_on_btreemap() {
        let src = "fn f() { let m: BTreeMap<u32, f64> = BTreeMap::new(); let mut s = 0.0; for (_, v) in m.iter() { s += v; } }";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn clean_when_loop_only_counts() {
        let src = "fn f(m: HashMap<u32, f64>) -> usize { let mut n = 0; for _ in m.keys() { n = n.max(1); } n }";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "mod tests { fn f(m: HashMap<u32, f64>) { let mut s = 0.0; for v in m.values() { s += v; } } }";
        assert!(check("x.rs", &lex(src)).is_empty());
    }
}
