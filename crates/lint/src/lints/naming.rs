//! L8 — metric naming: every metric registered through the `tin-obs`
//! facade (`.counter("…")`, `.gauge("…")`, `.histogram("…")`) must be
//! snake_case and carry a unit suffix (`_ns`, `_bytes`, `_total`,
//! `_ratio`). The telemetry stream and `tin-cli report` are consumed by
//! people and scripts that never see the registration site: a name that
//! encodes its unit reads unambiguously in a JSONL record, and a uniform
//! convention keeps dashboards greppable as the metric catalogue grows.
//! A deliberate exception needs an explicit
//! `// tin-lint: allow(metric-naming): <why>` directive.

use super::{in_ranges, test_mod_ranges};
use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};

/// Registration methods on the `tin-obs` registry that take a metric name
/// as their first argument.
const REGISTRATION_METHODS: &[&str] = &["counter", "gauge", "histogram"];

/// Accepted unit suffixes, mirroring the metrics catalogue in README.md.
const UNIT_SUFFIXES: &[&str] = &["_ns", "_bytes", "_total", "_ratio"];

fn is_snake_case(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some('a'..='z'))
        && chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_'))
}

pub fn check(file: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    let skip = test_mod_ranges(tokens);
    let mut diags = Vec::new();
    for i in 1..tokens.len() {
        if in_ranges(&skip, i) {
            continue;
        }
        // `. counter ( "name"` — a registry method call whose first
        // argument is a string literal. Names built at runtime are rare and
        // fall to code review (the lint cannot evaluate them).
        let method = &tokens[i];
        if method.kind != TokenKind::Ident
            || !REGISTRATION_METHODS.contains(&method.text.as_str())
            || !tokens[i - 1].is_punct(".")
        {
            continue;
        }
        let Some(open) = tokens.get(i + 1) else {
            continue;
        };
        if open.kind != TokenKind::OpenDelim || open.text != "(" {
            continue;
        }
        let Some(arg) = tokens.get(i + 2) else {
            continue;
        };
        if arg.kind != TokenKind::Literal || !arg.text.starts_with('"') {
            continue;
        }
        let name = arg.text.trim_matches('"');
        if !is_snake_case(name) {
            diags.push(Diagnostic::new(
                "metric-naming",
                file,
                arg.line,
                format!(
                    "metric name {name:?} is not snake_case; telemetry consumers expect \
                     `[a-z][a-z0-9_]*` names"
                ),
            ));
            continue;
        }
        if !UNIT_SUFFIXES.iter().any(|s| name.ends_with(s)) {
            diags.push(Diagnostic::new(
                "metric-naming",
                file,
                arg.line,
                format!(
                    "metric name {name:?} has no unit suffix; end it with one of \
                     `_ns`, `_bytes`, `_total`, `_ratio` so the unit survives into \
                     the telemetry stream — or justify an exception with \
                     `// tin-lint: allow(metric-naming): <why>`"
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod unit {
    use crate::lexer::lex;

    fn check(src: &str) -> Vec<crate::diagnostics::Diagnostic> {
        super::check("f.rs", &lex(src))
    }

    #[test]
    fn fires_on_missing_suffix_and_bad_case() {
        assert_eq!(
            check("fn f(r: &mut Registry) { r.counter(\"events\", \"count\"); }").len(),
            1
        );
        assert_eq!(
            check("fn f(r: &mut Registry) { r.gauge(\"QueueDepth\", \"msgs\"); }").len(),
            1
        );
        assert_eq!(
            check("fn f(r: &mut Registry) { r.histogram(\"latencyNs\", \"ns\"); }").len(),
            1
        );
    }

    #[test]
    fn accepts_suffixed_snake_case_and_ignores_lookalikes() {
        assert!(
            check("fn f(r: &mut Registry) { r.counter(\"events_total\", \"count\"); }").is_empty()
        );
        assert!(check("fn f(r: &mut Registry) { r.histogram(\"batch_ns\", \"ns\"); }").is_empty());
        assert!(
            check("fn f(r: &mut Registry) { r.gauge(\"imbalance_ratio\", \"permille\"); }")
                .is_empty()
        );
        // Not a method call on a registry: a free function or a name built
        // at runtime.
        assert!(check("fn f() { counter(\"Whatever\"); }").is_empty());
        assert!(check("fn f(r: &mut Registry, n: &str) { r.counter(n, \"count\"); }").is_empty());
        // Test modules register throwaway names freely.
        assert!(
            check("mod tests { fn t(r: &mut Registry) { r.counter(\"x\", \"c\"); } }").is_empty()
        );
    }
}
