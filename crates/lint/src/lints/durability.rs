//! L5 — checkpoint durability: the checkpoint module promises that a file
//! visible under its final name is complete and on disk (temp sibling →
//! `write_all` → fsync → rename → directory fsync). A function that calls
//! `write_all` or the `fs::write` shortcut without also calling
//! `sync_all`/`sync_data` publishes bytes the kernel may still be holding in
//! the page cache — exactly the window a crash-recovery subsystem exists to
//! close. Every unsynced write is either a real durability hole or a
//! deliberate cold path that deserves a justified allow-directive.

use super::{in_ranges, matching_close, test_mod_ranges};
use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};

pub fn check(file: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    let skip = test_mod_ranges(tokens);
    let mut diags = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") || in_ranges(&skip, i) {
            i += 1;
            continue;
        }
        // Find the function's body: skip the parameter list (and any other
        // parenthesised group in the signature), stop at `;` for bodiless
        // trait methods.
        let mut j = i + 1;
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokenKind::OpenDelim && t.text == "(" {
                j = matching_close(tokens, j) + 1;
                continue;
            }
            if t.kind == TokenKind::OpenDelim && t.text == "{" {
                body = Some((j, matching_close(tokens, j)));
                break;
            }
            if t.is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some((open, close)) = body else {
            i = j + 1;
            continue;
        };
        let synced = (open..=close)
            .any(|k| tokens[k].is_ident("sync_all") || tokens[k].is_ident("sync_data"));
        if !synced {
            for k in open..=close {
                if let Some(call) = unsynced_write(tokens, k) {
                    diags.push(Diagnostic::new(
                        "checkpoint-durability",
                        file,
                        tokens[k].line,
                        format!(
                            "`{call}` without `sync_all`/`sync_data` in the same function: \
                             checkpoint bytes must reach disk before they become visible; \
                             write to a temp sibling, fsync, then rename — or mark a \
                             non-durable path with \
                             `// tin-lint: allow(checkpoint-durability): <why>`"
                        ),
                    ));
                }
            }
        }
        i = close + 1;
    }
    diags
}

/// A call that puts bytes into a file without any durability guarantee:
/// `.write_all(...)` or the `fs::write(...)` convenience.
fn unsynced_write(tokens: &[Token], k: usize) -> Option<&'static str> {
    let calls = tokens
        .get(k + 1)
        .is_some_and(|t| t.kind == TokenKind::OpenDelim && t.text == "(");
    if !calls {
        return None;
    }
    if tokens[k].is_ident("write_all") && k > 0 && tokens[k - 1].is_punct(".") {
        return Some(".write_all()");
    }
    if tokens[k].is_ident("write")
        && k > 1
        && tokens[k - 1].is_punct("::")
        && tokens[k - 2].is_ident("fs")
    {
        return Some("fs::write");
    }
    None
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fires_on_unsynced_writes() {
        for (src, call) in [
            (
                "fn save(f: &mut File, b: &[u8]) -> io::Result<()> { f.write_all(b) }",
                ".write_all()",
            ),
            (
                "fn dump(p: &Path, b: &[u8]) { fs::write(p, b).unwrap(); }",
                "fs::write",
            ),
            (
                "fn dump(p: &Path, b: &[u8]) { std::fs::write(p, b).unwrap(); }",
                "fs::write",
            ),
        ] {
            let d = check("x.rs", &lex(src));
            assert_eq!(d.len(), 1, "{src}");
            assert!(d[0].message.contains(call), "{src}");
        }
    }

    #[test]
    fn clean_when_the_same_function_syncs() {
        for src in [
            "fn save(f: &mut File, b: &[u8]) -> io::Result<()> { f.write_all(b)?; f.sync_all() }",
            "fn save(f: &mut File, b: &[u8]) -> io::Result<()> { f.write_all(b)?; f.sync_data() }",
        ] {
            assert!(check("x.rs", &lex(src)).is_empty(), "{src}");
        }
    }

    #[test]
    fn clean_on_unrelated_code() {
        for src in [
            "fn read(p: &Path) -> io::Result<Vec<u8>> { fs::read(p) }",
            "fn f(w: &mut W) { w.write_fmt(args).unwrap(); }",
            // `write_all` as a mention, not a call.
            "fn f() { let write_all = 3; }",
        ] {
            assert!(check("x.rs", &lex(src)).is_empty(), "{src}");
        }
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "mod tests { fn corrupt(p: &Path) { fs::write(p, b\"x\").unwrap(); } }";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn bodiless_trait_methods_are_skipped() {
        let src = "trait Sink { fn save(&mut self, b: &[u8]) -> io::Result<()>; }";
        assert!(check("x.rs", &lex(src)).is_empty());
    }
}
