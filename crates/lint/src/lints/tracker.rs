//! L3 — tracker conformance: every `impl ProvenanceTracker` must wire the
//! take/put migration hooks and (when the tracker owns a `SpikeMonitor`)
//! the spike-monitor hooks through the shared implementation in
//! `tracker::mod` — either by invoking `crate::impl_migration_hooks!` /
//! `crate::impl_spike_monitor_hooks!` in the impl body, or by delegating
//! explicitly to `shared_take` / `shared_put` / `shared_arm_spike_monitor`.
//! Hand-rolled copies of that plumbing are exactly how the 13 factory
//! trackers drifted apart before the dedup; this lint keeps them converged.
//! Trackers that are genuinely not shardable (no migration support by
//! design) document that with a justified allow-directive.

use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};

pub fn check(file: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let file_has_monitor_store = has_seq(tokens, &["Option", "<", "SpikeMonitor", ">"]);

    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // `impl [<...>] ProvenanceTracker for NAME [where ...] { body }`.
        let Some((name, name_line, body_open)) = match_tracker_impl(tokens, i) else {
            i += 1;
            continue;
        };
        let body_close = super::matching_close(tokens, body_open);
        let body = &tokens[body_open..=body_close];

        let has_macro_hooks = body.iter().any(|t| t.is_ident("impl_migration_hooks"));
        let has_shared_delegation = body.iter().any(|t| t.is_ident("shared_take"))
            && body.iter().any(|t| t.is_ident("shared_put"));
        if !has_macro_hooks && !has_shared_delegation {
            diags.push(Diagnostic::new(
                "tracker-conformance",
                file,
                name_line,
                format!(
                    "impl ProvenanceTracker for {name} does not wire take/put migration hooks \
                     through the shared implementation — invoke crate::impl_migration_hooks! \
                     (or delegate to shared_take/shared_put), or justify why this tracker is \
                     not shardable with `// tin-lint: allow(tracker-conformance): <why>`"
                ),
            ));
        }

        if file_has_monitor_store {
            let has_spike_hooks = body.iter().any(|t| t.is_ident("impl_spike_monitor_hooks"))
                || body.iter().any(|t| t.is_ident("shared_arm_spike_monitor"));
            if !has_spike_hooks {
                diags.push(Diagnostic::new(
                    "tracker-conformance",
                    file,
                    name_line,
                    format!(
                        "{name} owns a SpikeMonitor store but its ProvenanceTracker impl does \
                         not route the spike hooks through the shared implementation — invoke \
                         crate::impl_spike_monitor_hooks! (or delegate to \
                         shared_arm_spike_monitor/shared_take_footprint_spike)"
                    ),
                ));
            }
        }
        i = body_close + 1;
    }
    diags
}

/// If `impl_idx` starts `impl ... ProvenanceTracker for NAME ... {`, return
/// `(NAME, line of NAME, index of the body brace)`.
fn match_tracker_impl(tokens: &[Token], impl_idx: usize) -> Option<(String, usize, usize)> {
    // Scan a bounded window for `ProvenanceTracker` before the body brace;
    // generics may nest `<...>` but not `{`.
    let mut j = impl_idx + 1;
    let mut trait_idx = None;
    while j < tokens.len() && j < impl_idx + 40 {
        let t = &tokens[j];
        if t.kind == TokenKind::OpenDelim && t.text == "{" {
            break;
        }
        if t.is_ident("ProvenanceTracker") {
            trait_idx = Some(j);
            break;
        }
        j += 1;
    }
    let trait_idx = trait_idx?;
    // `for NAME` must follow (otherwise this is the trait definition or an
    // unrelated `impl SomethingElse`).
    let mut k = trait_idx + 1;
    while k < tokens.len() && !tokens[k].is_ident("for") {
        if tokens[k].kind == TokenKind::OpenDelim && tokens[k].text == "{" {
            return None;
        }
        k += 1;
    }
    let name_tok = tokens.get(k + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    // Body brace: first `{` at depth 0 after the name (where-clauses cannot
    // contain braces).
    let mut m = k + 2;
    let mut depth = 0usize;
    while m < tokens.len() {
        match tokens[m].kind {
            TokenKind::OpenDelim if tokens[m].text == "{" && depth == 0 => {
                return Some((name_tok.text.clone(), name_tok.line, m));
            }
            TokenKind::OpenDelim => depth += 1,
            TokenKind::CloseDelim => depth = depth.saturating_sub(1),
            _ => {}
        }
        m += 1;
    }
    None
}

fn has_seq(tokens: &[Token], seq: &[&str]) -> bool {
    tokens
        .windows(seq.len())
        .any(|w| w.iter().zip(seq).all(|(t, s)| t.text == *s))
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fires_on_impl_without_hooks() {
        let src = "impl ProvenanceTracker for Foo { fn origins(&self) {} }";
        let d = check("x.rs", &lex(src));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Foo"));
    }

    #[test]
    fn clean_with_macro_hooks() {
        let src = "impl ProvenanceTracker for Foo { crate::impl_migration_hooks!(); }";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn clean_with_shared_delegation() {
        let src = "impl ProvenanceTracker for Foo { fn take_vertex_state(&mut self, v: VertexId) -> Option<S> { shared_take(self, v) } fn put_vertex_state(&mut self, v: VertexId, s: S) { shared_put(self, v, s) } }";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn monitored_tracker_needs_spike_hooks() {
        let src = "struct Foo { monitor: Option<SpikeMonitor> } impl ProvenanceTracker for Foo { crate::impl_migration_hooks!(); }";
        let d = check("x.rs", &lex(src));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("SpikeMonitor"));
    }

    #[test]
    fn monitored_tracker_with_spike_macro_is_clean() {
        let src = "struct Foo { monitor: Option<SpikeMonitor> } impl ProvenanceTracker for Foo { crate::impl_migration_hooks!(); crate::impl_spike_monitor_hooks!(); }";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn trait_definition_itself_is_not_an_impl() {
        let src = "pub trait ProvenanceTracker { fn origins(&self); }";
        assert!(check("x.rs", &lex(src)).is_empty());
    }
}
