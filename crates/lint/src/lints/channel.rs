//! L2 — channel protocol: a `recv()`/`recv_timeout()`/`try_recv()` on a
//! shard mpsc channel whose `Result` is `.unwrap()`ed or `.expect()`ed
//! turns a peer's death into a panic in *this* thread — which detaches the
//! panic from the failing shard, defeats the sentinel's fail-fast
//! broadcast, and (before the sentinel existed) deadlocked the remaining
//! workers. Every receive must match on the `Result` and treat `Err` /
//! `Disconnected` as peer death.

use super::{in_ranges, test_mod_ranges};
use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};

const RECV_METHODS: &[&str] = &["recv", "recv_timeout", "try_recv"];

pub fn check(file: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    let skip = test_mod_ranges(tokens);
    let mut diags = Vec::new();
    for i in 0..tokens.len() {
        if in_ranges(&skip, i) {
            continue;
        }
        // `. recv ( ... ) . unwrap|expect`
        if !tokens[i].is_punct(".") {
            continue;
        }
        let Some(method) = tokens.get(i + 1) else {
            continue;
        };
        if method.kind != TokenKind::Ident || !RECV_METHODS.contains(&method.text.as_str()) {
            continue;
        }
        let Some(open) = tokens.get(i + 2) else {
            continue;
        };
        if open.kind != TokenKind::OpenDelim || open.text != "(" {
            continue;
        }
        let close = super::matching_close(tokens, i + 2);
        let after = &tokens[close + 1..tokens.len().min(close + 3)];
        if after.len() == 2
            && after[0].is_punct(".")
            && (after[1].is_ident("unwrap") || after[1].is_ident("expect"))
        {
            diags.push(Diagnostic::new(
                "channel-protocol",
                file,
                method.line,
                format!(
                    "`.{}()` result is `.{}()`ed; a peer's death must be handled as \
                     disconnect (match on the Result and abort the wavefront), not turned \
                     into a panic on this thread",
                    method.text, after[1].text
                ),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fires_on_unwrapped_recv() {
        let d = check("x.rs", &lex("let msg = rx.recv().unwrap();"));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("recv"));
    }

    #[test]
    fn fires_on_expected_recv_timeout() {
        let d = check(
            "x.rs",
            &lex("let msg = rx.recv_timeout(d).expect(\"alive\");"),
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn clean_on_matched_recv() {
        let src =
            "match rx.recv() { Ok(m) => handle(m), Err(_) => return Err(BatchAbort::MainLost), }";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn clean_on_let_else() {
        let src = "let Ok(m) = rx.recv() else { return; };";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn unwrap_elsewhere_is_fine() {
        assert!(check("x.rs", &lex("let x = maybe.unwrap();")).is_empty());
    }
}
