//! L7 — bounded retry: the self-healing machinery promises that every
//! failure-recovery loop terminates — a respawn budget, a retry attempt
//! cap, a backoff schedule, a deadline. An unconditional `loop { retry }`
//! in `crates/shard` or the checkpoint store turns one crashed worker (or
//! one wedged disk) into a coordinator that spins forever, which is worse
//! than the fail-fast behavior recovery replaced. Any `loop`/`while` body
//! that retries, respawns, restarts or heals must live in a function that
//! visibly references its bound (`max*`, `*budget*`, `*backoff*`,
//! `*attempts*`, `*limit*`, `*deadline*`, `*timeout*`). `for` loops are
//! inherently bounded by their iterator and are not scanned.

use super::{in_ranges, matching_close, test_mod_ranges};
use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};

/// Identifier substrings that mark a loop as failure-recovery machinery.
const RETRY_MARKERS: &[&str] = &["retry", "respawn", "restart", "reconnect", "heal"];

/// Identifier substrings that count as an explicit bound or backoff.
const BOUND_MARKERS: &[&str] = &[
    "max", "budget", "backoff", "attempts", "limit", "deadline", "timeout",
];

pub fn check(file: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    let skip = test_mod_ranges(tokens);
    let mut diags = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") || in_ranges(&skip, i) {
            i += 1;
            continue;
        }
        // Locate the function body: skip parenthesised signature groups,
        // stop at `;` for bodiless trait methods.
        let mut j = i + 1;
        let mut body = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokenKind::OpenDelim && t.text == "(" {
                j = matching_close(tokens, j) + 1;
                continue;
            }
            if t.kind == TokenKind::OpenDelim && t.text == "{" {
                body = Some((j, matching_close(tokens, j)));
                break;
            }
            if t.is_punct(";") {
                break;
            }
            j += 1;
        }
        let Some((open, close)) = body else {
            i = j + 1;
            continue;
        };
        let bounded = (open..=close).any(|k| has_marker(&tokens[k], BOUND_MARKERS));
        if !bounded {
            for k in open..=close {
                if let Some((keyword, line)) = unbounded_retry_loop(tokens, k, close) {
                    diags.push(Diagnostic::new(
                        "bounded-retry",
                        file,
                        line,
                        format!(
                            "`{keyword}` loop retries without an explicit bound: recovery \
                             loops must reference a budget, attempt cap, backoff or \
                             deadline in the enclosing function (one wedged resource must \
                             not spin the coordinator forever) — or mark a deliberately \
                             unbounded loop with \
                             `// tin-lint: allow(bounded-retry): <why>`"
                        ),
                    ));
                }
            }
        }
        i = close + 1;
    }
    diags
}

/// Is token `k` a `loop`/`while` keyword whose body contains retry-flavored
/// identifiers? Returns the keyword and its line for the diagnostic.
fn unbounded_retry_loop(
    tokens: &[Token],
    k: usize,
    fn_close: usize,
) -> Option<(&'static str, usize)> {
    let keyword = if tokens[k].is_ident("loop") {
        "loop"
    } else if tokens[k].is_ident("while") {
        "while"
    } else {
        return None;
    };
    // Find the loop body `{`, skipping parenthesised groups in a `while`
    // condition. A `loop` keyword is followed directly by its body.
    let mut j = k + 1;
    while j <= fn_close {
        let t = &tokens[j];
        if t.kind == TokenKind::OpenDelim && t.text == "(" {
            j = matching_close(tokens, j) + 1;
            continue;
        }
        if t.kind == TokenKind::OpenDelim && t.text == "{" {
            let close = matching_close(tokens, j);
            let retries = (j..=close).any(|m| has_marker(&tokens[m], RETRY_MARKERS));
            return retries.then_some((keyword, tokens[k].line));
        }
        if t.is_punct(";") {
            return None;
        }
        j += 1;
    }
    None
}

fn has_marker(token: &Token, markers: &[&str]) -> bool {
    if token.kind != TokenKind::Ident {
        return false;
    }
    let lower = token.text.to_ascii_lowercase();
    markers.iter().any(|m| lower.contains(m))
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fires_on_unbounded_retry_loops() {
        for src in [
            "fn f(c: &mut Conn) { loop { if c.retry().is_ok() { break; } } }",
            "fn f(p: &mut Pool) { while !p.healthy() { p.respawn_worker(); } }",
            "fn f(s: &mut S) { loop { s.restart(); } }",
            "fn f(s: &mut S) { while s.down() { s.heal(); } }",
        ] {
            let d = check("x.rs", &lex(src));
            assert_eq!(d.len(), 1, "{src}");
            assert_eq!(d[0].lint, "bounded-retry");
        }
    }

    #[test]
    fn clean_when_the_function_references_a_bound() {
        for src in [
            "fn f(c: &mut Conn, max_tries: u32) { let mut n = 0; loop { if c.retry().is_ok() \
             || n >= max_tries { break; } n += 1; } }",
            "fn f(s: &mut S) { while s.down() { if s.respawns_used >= s.respawn_budget { \
             return; } s.respawn(); } }",
            "fn f(c: &mut C) { loop { if c.retry_with_backoff().is_ok() { break; } } }",
            "fn f(c: &mut C) { let deadline = now() + WAIT; while c.retry().is_err() { if \
             now() > deadline { break; } } }",
        ] {
            assert!(check("x.rs", &lex(src)).is_empty(), "{src}");
        }
    }

    #[test]
    fn clean_on_loops_that_do_not_retry() {
        for src in [
            "fn drain(v: &mut Vec<u32>) { while let Some(_) = v.pop() {} }",
            "fn spin() { loop { step(); } }",
            // `for` loops are bounded by their iterator.
            "fn f(s: &mut S) { for _ in 0..3 { s.retry(); } }",
        ] {
            assert!(check("x.rs", &lex(src)).is_empty(), "{src}");
        }
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "mod tests { fn f(c: &mut C) { loop { c.retry(); } } }";
        assert!(check("x.rs", &lex(src)).is_empty());
    }
}
