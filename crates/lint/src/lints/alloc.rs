//! L4 — hot-path allocation: the kernel modules (`sparse_vec.rs`,
//! `dense_vec.rs`, `adaptive_vec.rs`, `simd.rs`) sit inside the
//! per-interaction inner loop, and the zero-allocation property is load
//! bearing — the alloc-counting tests pin it down for the steady state.
//! `Vec::new`/`vec![...]`/`format!`/`.collect()`/`Box::new` in these files
//! either allocates on the hot path or is a cold-path exception that
//! deserves a justified allow-directive so the next reader knows which.

use super::{in_ranges, test_mod_ranges};
use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};

pub fn check(file: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    let skip = test_mod_ranges(tokens);
    let mut diags = Vec::new();
    for i in 0..tokens.len() {
        if in_ranges(&skip, i) {
            continue;
        }
        let t = &tokens[i];
        let construct: Option<&str> = if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                // `Vec::new` / `Box::new`
                "Vec" | "Box"
                    if next_is(tokens, i + 1, "::") && next_ident_is(tokens, i + 2, "new") =>
                {
                    Some(if t.text == "Vec" {
                        "Vec::new"
                    } else {
                        "Box::new"
                    })
                }
                // `vec![...]` / `format!(...)`
                "vec" if next_is(tokens, i + 1, "!") => Some("vec!"),
                "format" if next_is(tokens, i + 1, "!") => Some("format!"),
                _ => None,
            }
        } else if t.is_punct(".")
            && next_ident_is(tokens, i + 1, "collect")
            && tokens.get(i + 2).is_some_and(|n| {
                n.is_punct("::") || (n.kind == TokenKind::OpenDelim && n.text == "(")
            })
        {
            Some(".collect()")
        } else {
            None
        };
        if let Some(construct) = construct {
            let line = if t.is_punct(".") {
                tokens[i + 1].line
            } else {
                t.line
            };
            diags.push(Diagnostic::new(
                "hot-path-alloc",
                file,
                line,
                format!(
                    "`{construct}` in a kernel module allocates; keep the per-interaction \
                     path allocation-free (reuse buffers / preallocate), or mark a cold path \
                     with `// tin-lint: allow(hot-path-alloc): <why>`"
                ),
            ));
        }
    }
    diags
}

fn next_is(tokens: &[Token], i: usize, punct: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(punct))
}

fn next_ident_is(tokens: &[Token], i: usize, ident: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_ident(ident))
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fires_on_each_construct() {
        for (src, construct) in [
            ("let v = Vec::new();", "Vec::new"),
            ("let v = vec![1, 2];", "vec!"),
            ("let s = format!(\"{x}\");", "format!"),
            ("let v: Vec<_> = it.collect();", ".collect()"),
            ("let v = it.collect::<Vec<_>>();", ".collect()"),
            ("let b = Box::new(x);", "Box::new"),
        ] {
            let d = check("x.rs", &lex(src));
            assert_eq!(d.len(), 1, "{src}");
            assert!(d[0].message.contains(construct), "{src}");
        }
    }

    #[test]
    fn clean_on_reuse_patterns() {
        for src in [
            "buf.clear(); buf.push(x);",
            "let v = Vec::with_capacity(n);",
            "out.extend_from_slice(&src);",
        ] {
            assert!(check("x.rs", &lex(src)).is_empty(), "{src}");
        }
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "mod tests { fn f() { let v = vec![1]; } }";
        assert!(check("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn collect_mention_without_call_is_fine() {
        // e.g. in an ident like `collected` or a path that is not a call.
        assert!(check("x.rs", &lex("let collected = 3;")).is_empty());
    }
}
