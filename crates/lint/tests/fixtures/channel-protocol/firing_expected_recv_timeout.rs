//! FIRING: .expect() on recv_timeout() — same panic-on-disconnect hazard,
//! with a message that lies about the invariant.
use std::sync::mpsc::Receiver;
use std::time::Duration;

fn poll(rx: &Receiver<u64>) -> u64 {
    rx.recv_timeout(Duration::from_millis(10))
        .expect("worker always alive")
}
