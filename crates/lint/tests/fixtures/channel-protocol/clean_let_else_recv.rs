//! CLEAN: let-else handles the disconnect arm without panicking.
use std::sync::mpsc::Receiver;

fn drain(rx: &Receiver<u64>) -> u64 {
    let mut last = 0;
    loop {
        let Ok(m) = rx.recv() else {
            return last;
        };
        last = m;
    }
}
