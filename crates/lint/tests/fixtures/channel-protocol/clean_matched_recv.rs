//! CLEAN: the Result is matched and Err (peer death) aborts the wavefront.
use std::sync::mpsc::Receiver;

enum Abort {
    PeerLost,
}

fn next_message(rx: &Receiver<u64>) -> Result<u64, Abort> {
    match rx.recv() {
        Ok(m) => Ok(m),
        Err(_) => Err(Abort::PeerLost),
    }
}
