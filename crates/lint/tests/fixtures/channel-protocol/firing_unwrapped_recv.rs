//! FIRING: unwrapping recv() panics on peer death instead of treating the
//! disconnect as a protocol event.
use std::sync::mpsc::Receiver;

fn next_message(rx: &Receiver<u64>) -> u64 {
    rx.recv().unwrap()
}
