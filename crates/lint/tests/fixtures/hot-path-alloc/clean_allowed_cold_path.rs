//! CLEAN: a constructor allocation with a justification, plus test-module
//! code which the lint never binds.
fn zeros(dim: usize) -> Vec<f64> {
    #[lint::allow(hot-path-alloc, reason = "runs once per vertex at setup, not per interaction")]
    let values = vec![0.0; dim];
    values
}

mod tests {
    fn scratch() -> Vec<u64> {
        vec![1, 2, 3]
    }
}
