//! FIRING: allocating constructs on the per-interaction path.
fn merge_keys(keys: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for k in keys {
        out.push(*k);
    }
    let label = format!("{} keys", out.len());
    drop(label);
    out
}
