//! CLEAN: the kernel idiom — clear and refill a caller-owned buffer,
//! preallocate with capacity at setup time.
fn merge_into(dst: &mut Vec<u64>, src: &[u64]) {
    dst.clear();
    if dst.capacity() < src.len() {
        dst.reserve(src.len() - dst.capacity());
    }
    dst.extend_from_slice(src);
}
