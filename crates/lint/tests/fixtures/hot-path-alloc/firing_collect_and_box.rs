//! FIRING: .collect() and Box::new allocate per call.
fn doubled(vals: &[f64]) -> Box<Vec<f64>> {
    let doubled: Vec<f64> = vals.iter().map(|v| v * 2.0).collect();
    Box::new(doubled)
}
