//! Clean: the respawn loop references an explicit budget and a backoff
//! constant, so each pass visibly consumes a bounded resource.

pub fn heal_within_budget(pool: &mut Pool, max_restarts: usize) -> bool {
    let mut used = 0;
    loop {
        if pool.healthy() {
            return true;
        }
        if used >= max_restarts {
            return false;
        }
        std::thread::sleep(pool.restart_backoff(used));
        pool.respawn_all();
        used += 1;
    }
}
