//! Firing: a supervisor that respawns a worker forever — no budget, no
//! backoff, no deadline. One persistently-crashing worker spins this loop
//! for the rest of the process's life.

pub fn keep_worker_alive(pool: &mut Pool, shard: usize) {
    loop {
        if pool.is_healthy(shard) {
            break;
        }
        pool.respawn(shard);
    }
}
