//! Clean: ordinary loops that drain queues or iterate a fixed range are
//! not retry machinery — and `for` loops are bounded by their iterator
//! even when they do retry.

pub fn drain(queue: &mut Vec<Job>) -> usize {
    let mut handled = 0;
    while let Some(job) = queue.pop() {
        job.run();
        handled += 1;
    }
    handled
}

pub fn warm_up(conn: &mut Conn) {
    for _ in 0..3 {
        let _ = conn.retry_handshake();
    }
}
