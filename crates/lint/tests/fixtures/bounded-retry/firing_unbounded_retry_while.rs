//! Firing: a `while` loop that retries an I/O operation until it succeeds.
//! A wedged disk makes this loop — and the checkpoint it guards — hang
//! forever instead of surfacing an error.

pub fn save_until_it_sticks(store: &mut Store, bytes: &[u8]) {
    let mut done = false;
    while !done {
        done = store.retry_write(bytes).is_ok();
    }
}
