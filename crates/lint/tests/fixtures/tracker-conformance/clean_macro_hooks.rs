//! CLEAN: migration and spike hooks both come from the shared macros.
struct ConformingTracker {
    rows: Vec<f64>,
    monitor: Option<SpikeMonitor>,
}

impl ProvenanceTracker for ConformingTracker {
    crate::impl_migration_hooks!();
    crate::impl_spike_monitor_hooks!();
}
