//! CLEAN: a deliberately unsharded tracker, exempted with a justification.
struct ReplayOnlyTracker {
    log: Vec<u64>,
}

#[lint::allow(tracker-conformance, reason = "replays the full log per query; never built by the sharded engine")]
impl ProvenanceTracker for ReplayOnlyTracker {
    fn name(&self) -> &'static str {
        "replay-only"
    }
}
