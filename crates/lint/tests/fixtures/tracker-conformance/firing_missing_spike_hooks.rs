//! FIRING: the tracker owns a SpikeMonitor store but its impl never wires
//! the spike hooks through the shared implementation.
struct MonitoredTracker {
    rows: Vec<f64>,
    monitor: Option<SpikeMonitor>,
}

impl ProvenanceTracker for MonitoredTracker {
    crate::impl_migration_hooks!();
}
