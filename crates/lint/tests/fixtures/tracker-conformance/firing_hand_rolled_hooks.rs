//! FIRING: the impl re-implements take/put by hand instead of routing
//! through the shared implementation — exactly the drift the lint forbids.
struct HandRolledTracker {
    rows: Vec<f64>,
}

impl ProvenanceTracker for HandRolledTracker {
    fn take_vertex_state(&mut self, v: VertexId) -> Option<ShardVertexState> {
        let row = std::mem::take(&mut self.rows[v.index()]);
        Some(ShardVertexState::new(row))
    }

    fn put_vertex_state(&mut self, v: VertexId, state: ShardVertexState) {
        self.rows[v.index()] = state.downcast();
    }
}
