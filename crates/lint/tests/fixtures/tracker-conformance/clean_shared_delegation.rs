//! CLEAN: no monitor, and take/put delegate to the shared free functions.
struct DelegatingTracker {
    rows: Vec<f64>,
}

impl ProvenanceTracker for DelegatingTracker {
    fn take_vertex_state(&mut self, v: VertexId) -> Option<ShardVertexState> {
        shared_take(self, v)
    }

    fn put_vertex_state(&mut self, v: VertexId, state: ShardVertexState) {
        shared_put(self, v, state)
    }
}
