//! FIRING: iterating a HashMap while accumulating an f64 — the sum depends
//! on hash iteration order because float addition is not associative.
use std::collections::HashMap;

fn total_buffered(buffered: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_, qty) in buffered.iter() {
        total += qty;
    }
    total
}
