//! CLEAN: hash iteration with a justified allow-directive for an
//! order-independent fold (integer count — no floats, no output).
use std::collections::HashMap;

fn live_entries(depths: &HashMap<u32, u32>) -> u64 {
    let mut count = 0u64;
    #[lint::allow(determinism, reason = "integer count is order-independent")]
    for (_, d) in depths.iter() {
        if *d > 0 {
            count += 1;
        }
    }
    count
}
