//! FIRING: iterating a HashSet and pushing per-vertex rows — output order
//! changes run to run.
use std::collections::HashSet;

fn report_rows(active: &HashSet<u32>) -> Vec<String> {
    let mut rows = Vec::new();
    for v in active.iter() {
        rows.push(v.to_string());
    }
    rows
}
