//! CLEAN: entries are collected and sorted before the order-sensitive loop,
//! so hash order never reaches the accumulator.
use std::collections::HashMap;

fn total_buffered(buffered: &HashMap<u32, f64>) -> f64 {
    let mut entries: Vec<(u32, f64)> = buffered.iter().map(|(k, v)| (*k, *v)).collect();
    entries.sort_unstable_by_key(|&(k, _)| k);
    let mut total = 0.0;
    for (_, qty) in entries {
        total += qty;
    }
    total
}
