//! CLEAN: a BTreeMap iterates in key order, so the fold is deterministic.
use std::collections::BTreeMap;

fn total_buffered(buffered: &BTreeMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_, qty) in buffered.iter() {
        total += qty;
    }
    total
}
