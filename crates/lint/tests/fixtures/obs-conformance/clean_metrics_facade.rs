// Reporting through the tin-obs facade: counters and spans, no prints.
pub fn on_spike(obs: &mut tin_obs::Obs, spikes: tin_obs::CounterId) {
    obs.metrics.inc(spikes);
}

// writeln! into an explicit sink is fine — output the caller owns.
pub fn render(out: &mut String, done: usize) {
    use std::fmt::Write as _;
    writeln!(out, "processed {done}").unwrap();
}
