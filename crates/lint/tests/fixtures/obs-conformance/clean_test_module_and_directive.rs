// Test modules may print freely, and a justified cold-path print is
// allowed with an explicit directive.
pub fn recovery_banner(path: &str) {
    // tin-lint: allow(obs-conformance): one-shot recovery banner on startup, before any worker exists
    eprintln!("recovering from checkpoint {path}");
}

mod tests {
    pub fn debug_dump(xs: &[u64]) {
        println!("{xs:?}");
    }
}
