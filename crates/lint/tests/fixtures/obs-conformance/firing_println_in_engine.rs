// A bare println! in engine code: invisible to tin-obs, nondeterministic
// interleaving with worker threads, and it pollutes the byte-identical
// stdout contract.
pub fn process_batch(done: usize, total: usize) {
    println!("processed {done}/{total}");
}
