// eprintln! and dbg! are just as invisible to the metrics registry.
pub fn on_spike(bytes: usize) -> usize {
    eprintln!("footprint spike: {bytes} bytes");
    dbg!(bytes)
}
