// CamelCase and dashed metric names break the `[a-z][a-z0-9_]*` contract
// the telemetry readers and dashboards grep for.
fn register(obs: &mut Obs) -> (GaugeId, CounterId) {
    let depth = obs.metrics.gauge("QueueDepth_total", "messages");
    let spread = obs.metrics.counter("busy-spread_ns", "ns");
    (depth, spread)
}
