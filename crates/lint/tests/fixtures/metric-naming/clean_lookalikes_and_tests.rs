// Free functions, runtime-built names and test modules are out of scope:
// the lint only binds to literal names at registry registration sites.
fn counter(name: &str) -> usize {
    name.len()
}

fn not_a_registration(n: &str, obs: &mut Obs) -> usize {
    let dynamic = obs.metrics.counter(n, "count");
    counter("Whatever Name") + dynamic.index()
}

mod tests {
    fn throwaway_names_are_fine(obs: &mut Obs) {
        let _ = obs.metrics.counter("x", "count");
        let _ = obs.metrics.gauge("Y", "units");
    }
}
