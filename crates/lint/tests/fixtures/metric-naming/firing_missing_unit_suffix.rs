// A metric registered without a unit suffix: the name is lost on telemetry
// consumers who only ever see the JSONL record.
fn register(obs: &mut Obs) -> (CounterId, HistogramId) {
    let replayed = obs.metrics.counter("replayed_interactions", "count");
    let latency = obs.metrics.histogram("tracker_latency", "ns");
    (replayed, latency)
}
