// Snake_case names carrying one of the accepted unit suffixes.
fn register(obs: &mut Obs) -> (CounterId, GaugeId, HistogramId, GaugeId) {
    let replayed = obs.metrics.counter("replayed_interactions_total", "count");
    let spread = obs.metrics.gauge("barrier_busy_spread_ns", "ns");
    let migrated = obs.metrics.histogram("migrated_state_bytes", "bytes");
    let imbalance = obs.metrics.gauge("batch_imbalance_ratio", "permille");
    (replayed, spread, migrated, imbalance)
}
