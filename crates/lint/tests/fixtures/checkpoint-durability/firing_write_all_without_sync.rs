// A "durable" save that never fsyncs: the bytes may still sit in the page
// cache when the process crashes, yet the file is already visible under its
// final name.
fn save_checkpoint(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = File::create(path)?;
    file.write_all(bytes)?;
    Ok(())
}
