// `fs::write` is the worst of both worlds for a checkpoint: no fsync AND
// the destructive truncate happens under the final name, so a crash leaves
// a torn file where a valid checkpoint used to be.
fn overwrite_latest(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    std::fs::write(dir.join("ckpt-latest.tin"), bytes)
}
