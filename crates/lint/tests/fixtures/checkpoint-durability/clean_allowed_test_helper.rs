// Reading is always fine, and a deliberately non-durable write can be
// allowed with a justification the next reader sees.
fn read_checkpoint(path: &Path) -> io::Result<Vec<u8>> {
    fs::read(path)
}

fn scratch_note(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // tin-lint: allow(checkpoint-durability): debug scratch file, never read back after a crash
    fs::write(path, bytes)
}

mod tests {
    // Test corruption helpers clobber files on purpose; test modules are
    // exempt wholesale.
    fn corrupt(path: &Path) {
        fs::write(path, b"garbage").unwrap();
    }
}
