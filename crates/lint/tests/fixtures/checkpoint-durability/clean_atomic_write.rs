// The blessed pattern: temp sibling, write, fsync, rename, directory fsync.
// The sync calls in the same function satisfy the lint.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}
