//! Fixture-driven lint tests: every lint is demonstrated by at least two
//! firing and two clean fixtures under `tests/fixtures/<lint>/`.
//!
//! Fixtures are `.rs` snippets that are never compiled as part of the
//! workspace — they exist to pin down each lint's firing boundary, so a
//! matcher regression (either direction) fails this suite. The naming
//! convention IS the oracle: `firing_*.rs` must produce at least one
//! diagnostic of the directory's lint, `clean_*.rs` must produce none.

use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixtures_for(lint: &str) -> Vec<(String, String)> {
    let dir = fixtures_root().join(lint);
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.ends_with(".rs") {
            let src = std::fs::read_to_string(&path).unwrap();
            out.push((name, src));
        }
    }
    out.sort();
    assert!(
        out.iter().filter(|(n, _)| n.starts_with("firing_")).count() >= 2,
        "lint `{lint}` needs at least two firing fixtures"
    );
    assert!(
        out.iter().filter(|(n, _)| n.starts_with("clean_")).count() >= 2,
        "lint `{lint}` needs at least two clean fixtures"
    );
    out
}

fn check_lint(lint: &str) {
    for (name, src) in fixtures_for(lint) {
        let diags = tin_lint::lint_source(&name, &src, &[lint]);
        let fired: Vec<_> = diags.iter().filter(|d| d.lint == lint).collect();
        let malformed: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == "malformed-directive")
            .collect();
        assert!(
            malformed.is_empty(),
            "{lint}/{name}: fixture directives must be well-formed: {malformed:?}"
        );
        if name.starts_with("firing_") {
            assert!(
                !fired.is_empty(),
                "{lint}/{name}: expected at least one `{lint}` diagnostic, got none"
            );
            for d in &fired {
                assert!(d.line > 0, "{lint}/{name}: diagnostic missing a line");
                assert_eq!(d.file, name);
            }
        } else {
            assert!(
                fired.is_empty(),
                "{lint}/{name}: expected no diagnostics, got: {:?}",
                fired.iter().map(|d| d.human()).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn determinism_fixtures() {
    check_lint("determinism");
}

#[test]
fn channel_protocol_fixtures() {
    check_lint("channel-protocol");
}

#[test]
fn tracker_conformance_fixtures() {
    check_lint("tracker-conformance");
}

#[test]
fn hot_path_alloc_fixtures() {
    check_lint("hot-path-alloc");
}

#[test]
fn checkpoint_durability_fixtures() {
    check_lint("checkpoint-durability");
}

#[test]
fn obs_conformance_fixtures() {
    check_lint("obs-conformance");
}

#[test]
fn bounded_retry_fixtures() {
    check_lint("bounded-retry");
}

#[test]
fn metric_naming_fixtures() {
    check_lint("metric-naming");
}

/// The firing fixtures double as a JSON-output regression test: rendering
/// must produce valid-looking, line-anchored records.
#[test]
fn json_output_is_well_formed() {
    let (name, src) = fixtures_for("channel-protocol")
        .into_iter()
        .find(|(n, _)| n.starts_with("firing_"))
        .unwrap();
    let diags = tin_lint::lint_source(&name, &src, &["channel-protocol"]);
    let json = tin_lint::to_json(&diags);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"lint\": \"channel-protocol\""));
    assert!(json.contains("\"line\": "));
}

/// The workspace itself must lint clean — the same invariant CI enforces
/// with `cargo run -p tin-lint -- --workspace`, pinned here so a plain
/// `cargo test` catches violations too.
#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = tin_lint::workspace::run(&root).unwrap();
    assert!(
        diags.is_empty(),
        "workspace lint findings:\n{}",
        diags
            .iter()
            .map(|d| d.human())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
