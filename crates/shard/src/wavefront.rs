//! Deterministic wavefront scheduling: maximal conflict-free batches.
//!
//! Every provenance tracker's `process(r)` reads and writes only the
//! per-vertex state of `r.src` and `r.dst` (one source vector is debited,
//! one destination vector is credited — Algorithms 1–3 of the paper). Two
//! interactions whose `{src, dst}` sets are disjoint therefore touch
//! disjoint state and *commute exactly*, bit for bit, under every selection
//! policy — the same observation the temporal-quantity algebra literature
//! makes about operations on disjoint vertex supports. The scheduler scans
//! the time-ordered stream once and greedily cuts it into **wavefronts**:
//! maximal runs of consecutive interactions with pairwise-disjoint endpoint
//! sets. Everything inside a wavefront may execute concurrently; wavefronts
//! execute in stream order.
//!
//! Two tracker families key behaviour to *global* stream coordinates rather
//! than per-vertex state: count-windowed tracking resets at multiples of the
//! window length `W`, and time-windowed tracking resets when the timestamp
//! crosses a multiple of the duration `D`. A wavefront must not straddle
//! such an epoch boundary (the reset touches every vertex), so the scheduler
//! additionally cuts at the boundary dictated by its [`EpochRule`].

use tin_core::interaction::Interaction;
use tin_core::policy::PolicyConfig;

/// Global-epoch constraint a batch must respect, derived from the policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EpochRule {
    /// No global epochs: batches are cut only by conflicts and size.
    None,
    /// Count-based windows (Section 5.3.1): no batch may span a global
    /// interaction index that is a multiple of `W`.
    Count(usize),
    /// Time-based windows: every interaction of a batch must fall in the
    /// same window epoch `floor(t / D)`.
    Time(f64),
}

impl EpochRule {
    /// The epoch rule imposed by a policy configuration.
    pub fn for_policy(config: &PolicyConfig) -> EpochRule {
        match config {
            PolicyConfig::Windowed { window } => EpochRule::Count(*window),
            PolicyConfig::TimeWindowed { duration } => EpochRule::Time(*duration),
            _ => EpochRule::None,
        }
    }
}

/// Default cap on wavefront length: bounds the per-batch bookkeeping and the
/// latency before results of early interactions are applied.
pub const DEFAULT_MAX_BATCH: usize = 4096;

/// Greedy scanner that cuts a time-ordered stream into maximal
/// conflict-free wavefronts (see the module docs).
///
/// The batcher is incremental: [`WavefrontScheduler::offer`] answers, in
/// O(1), whether the next interaction may join the currently open batch or
/// must start a new one. Conflict detection uses a stamped array (one `u64`
/// batch id per vertex), so opening a new batch never clears anything.
#[derive(Clone, Debug)]
pub struct WavefrontScheduler {
    /// `stamp[v] == batch_id` iff vertex v is already touched by the open batch.
    stamp: Vec<u64>,
    /// Id of the currently open batch (stamps with older ids are stale).
    batch_id: u64,
    /// Number of interactions in the currently open batch.
    batch_len: usize,
    /// Global index of the first interaction of the open batch.
    batch_start: usize,
    /// Window epoch (`floor(t / D)`) of the open batch under a time rule.
    batch_time_epoch: u64,
    epoch: EpochRule,
    max_batch: usize,
}

impl WavefrontScheduler {
    /// Create a scheduler over `num_vertices` vertices with the given epoch
    /// rule and the [`DEFAULT_MAX_BATCH`] size cap.
    pub fn new(num_vertices: usize, epoch: EpochRule) -> Self {
        Self::with_max_batch(num_vertices, epoch, DEFAULT_MAX_BATCH)
    }

    /// Create a scheduler with an explicit batch size cap (at least 1).
    pub fn with_max_batch(num_vertices: usize, epoch: EpochRule, max_batch: usize) -> Self {
        WavefrontScheduler {
            stamp: vec![0; num_vertices],
            batch_id: 0,
            batch_len: 0,
            batch_start: 0,
            batch_time_epoch: 0,
            epoch,
            max_batch: max_batch.max(1),
        }
    }

    /// Number of interactions in the currently open batch.
    pub fn open_batch_len(&self) -> usize {
        self.batch_len
    }

    /// Offer the interaction at global stream index `index` to the open
    /// batch. Returns `true` if it joined; `false` if it conflicts (shared
    /// endpoint, size cap, or epoch boundary), in which case the caller must
    /// dispatch the open batch, call [`WavefrontScheduler::begin_batch`],
    /// and offer the interaction again (a fresh batch always accepts).
    pub fn offer(&mut self, r: &Interaction, index: usize) -> bool {
        let s = r.src.index();
        let d = r.dst.index();
        if self.batch_len == 0 {
            self.admit(r, index, s, d);
            return true;
        }
        if self.batch_len >= self.max_batch
            || self.stamp[s] == self.batch_id
            || self.stamp[d] == self.batch_id
        {
            return false;
        }
        match self.epoch {
            EpochRule::None => {}
            EpochRule::Count(w) => {
                // The open batch covers [batch_start, index]; it must not
                // span a multiple of W strictly inside that range — i.e. the
                // batch may *end* at a boundary but not continue past one.
                if index.is_multiple_of(w) {
                    return false;
                }
            }
            EpochRule::Time(d_len) => {
                if time_epoch(r.time.value(), d_len) != self.batch_time_epoch {
                    return false;
                }
            }
        }
        self.admit(r, index, s, d);
        true
    }

    /// Close the open batch and start an empty one. Returns the
    /// `(start_index, len)` of the batch that was closed.
    pub fn begin_batch(&mut self) -> (usize, usize) {
        let closed = (self.batch_start, self.batch_len);
        self.batch_id += 1;
        self.batch_len = 0;
        closed
    }

    fn admit(&mut self, r: &Interaction, index: usize, s: usize, d: usize) {
        if self.batch_len == 0 {
            self.batch_id += 1;
            self.batch_start = index;
            if let EpochRule::Time(d_len) = self.epoch {
                self.batch_time_epoch = time_epoch(r.time.value(), d_len);
            }
        }
        self.stamp[s] = self.batch_id;
        self.stamp[d] = self.batch_id;
        self.batch_len += 1;
    }
}

/// Window epoch of a timestamp under duration `d` (the `floor(t / D)` of the
/// time-windowed tracker).
#[inline]
fn time_epoch(t: f64, d: f64) -> u64 {
    (t / d).floor() as u64
}

/// Split a whole stream into wavefronts, returning `(start, len)` pairs.
/// Convenience for tests and offline batch planning; the engine drives the
/// scheduler incrementally instead.
pub fn plan_wavefronts(
    num_vertices: usize,
    epoch: EpochRule,
    interactions: &[Interaction],
) -> Vec<(usize, usize)> {
    let mut scheduler = WavefrontScheduler::new(num_vertices, epoch);
    let mut out = Vec::new();
    for (i, r) in interactions.iter().enumerate() {
        if !scheduler.offer(r, i) {
            out.push(scheduler.begin_batch());
            let joined = scheduler.offer(r, i);
            debug_assert!(joined, "a fresh batch always accepts");
        }
    }
    if scheduler.open_batch_len() > 0 {
        out.push(scheduler.begin_batch());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::interaction::paper_running_example;

    fn r(src: u32, dst: u32, t: f64) -> Interaction {
        Interaction::new(src, dst, t, 1.0)
    }

    /// The wavefront batcher must never place two interactions that share an
    /// endpoint into the same batch (the satellite's correctness unit test).
    #[test]
    fn batches_are_conflict_free() {
        // A stream engineered with overlapping endpoints in many patterns.
        let stream: Vec<Interaction> = vec![
            r(0, 1, 1.0), // batch 0
            r(2, 3, 1.0), // batch 0
            r(4, 5, 1.0), // batch 0
            r(1, 6, 2.0), // conflicts on 1 -> batch 1
            r(7, 8, 2.0), // batch 1
            r(8, 9, 2.0), // conflicts on 8 -> batch 2
            r(0, 2, 3.0), // batch 2
            r(3, 4, 3.0), // batch 2
            r(2, 4, 3.0), // conflicts on 2 and 4 -> batch 3
        ];
        let plan = plan_wavefronts(10, EpochRule::None, &stream);
        assert_eq!(plan, vec![(0, 3), (3, 2), (5, 3), (8, 1)]);
        // Property: within every batch, all endpoint sets are disjoint.
        for &(start, len) in &plan {
            let mut seen = std::collections::HashSet::new();
            for x in &stream[start..start + len] {
                assert!(seen.insert(x.src), "src conflict inside batch at {start}");
                assert!(seen.insert(x.dst), "dst conflict inside batch at {start}");
            }
        }
    }

    #[test]
    fn conflict_freedom_on_random_streams() {
        // Deterministic pseudo-random stream over few vertices (lots of
        // conflicts), checked exhaustively.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let mut stream = Vec::new();
        let mut t = 0.0;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let src = (x % 7) as u32;
            let dst = ((x >> 16) % 7) as u32;
            if src == dst {
                continue;
            }
            t += ((x >> 32) % 3) as f64 * 0.25;
            stream.push(r(src, dst, t));
        }
        for epoch in [EpochRule::None, EpochRule::Count(16), EpochRule::Time(2.0)] {
            let plan = plan_wavefronts(7, epoch, &stream);
            let total: usize = plan.iter().map(|&(_, l)| l).sum();
            assert_eq!(total, stream.len(), "every interaction is scheduled");
            let mut next = 0;
            for &(start, len) in &plan {
                assert_eq!(start, next, "batches tile the stream in order");
                next = start + len;
                let mut seen = std::collections::HashSet::new();
                for x in &stream[start..start + len] {
                    assert!(seen.insert(x.src));
                    assert!(seen.insert(x.dst));
                }
            }
        }
    }

    #[test]
    fn count_epochs_cut_at_window_multiples() {
        // 10 pairwise-disjoint interactions, W = 4: cuts after global
        // indices 4 and 8 regardless of conflicts.
        let stream: Vec<Interaction> = (0..10).map(|i| r(2 * i, 2 * i + 1, i as f64)).collect();
        let plan = plan_wavefronts(20, EpochRule::Count(4), &stream);
        assert_eq!(plan, vec![(0, 4), (4, 4), (8, 2)]);
    }

    #[test]
    fn time_epochs_keep_batches_within_one_window() {
        // Disjoint interactions with timestamps 0,1,2,3,4,5 and D = 2.5:
        // epochs 0,0,0,1,1,2.
        let stream: Vec<Interaction> = (0..6).map(|i| r(2 * i, 2 * i + 1, i as f64)).collect();
        let plan = plan_wavefronts(12, EpochRule::Time(2.5), &stream);
        assert_eq!(plan, vec![(0, 3), (3, 2), (5, 1)]);
    }

    #[test]
    fn size_cap_limits_batches() {
        let stream: Vec<Interaction> = (0..9).map(|i| r(2 * i, 2 * i + 1, 0.0)).collect();
        let mut scheduler = WavefrontScheduler::with_max_batch(18, EpochRule::None, 4);
        let mut lens = Vec::new();
        for (i, x) in stream.iter().enumerate() {
            if !scheduler.offer(x, i) {
                lens.push(scheduler.begin_batch().1);
                assert!(scheduler.offer(x, i));
            }
        }
        lens.push(scheduler.begin_batch().1);
        assert_eq!(lens, vec![4, 4, 1]);
    }

    #[test]
    fn running_example_is_fully_sequential() {
        // The 3-vertex running example has a shared vertex between every
        // consecutive pair of interactions except r1 -> r2 (v1→v2 then
        // v2→v0: they share v2).
        let plan = plan_wavefronts(3, EpochRule::None, &paper_running_example());
        for &(_, len) in &plan {
            assert_eq!(len, 1, "3-vertex example admits no parallelism");
        }
    }

    #[test]
    fn epoch_rule_from_policy() {
        use tin_core::policy::SelectionPolicy;
        assert_eq!(
            EpochRule::for_policy(&PolicyConfig::Windowed { window: 7 }),
            EpochRule::Count(7)
        );
        assert_eq!(
            EpochRule::for_policy(&PolicyConfig::TimeWindowed { duration: 1.5 }),
            EpochRule::Time(1.5)
        );
        assert_eq!(
            EpochRule::for_policy(&PolicyConfig::Plain(SelectionPolicy::Fifo)),
            EpochRule::None
        );
    }
}
