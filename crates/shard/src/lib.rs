//! # tin-shard — sharded parallel provenance with deterministic wavefronts
//!
//! The paper maintains provenance "in real-time, as new interactions take
//! place in a streaming fashion"; the sequential
//! [`tin_core::engine::ProvenanceEngine`] caps that at one core. This crate
//! adds a vertex-hash-partitioned parallel execution engine that produces
//! **bit-identical** provenance:
//!
//! * [`wavefront::WavefrontScheduler`] cuts the time-ordered stream into
//!   maximal batches of interactions with pairwise-disjoint `{src, dst}`
//!   sets — such interactions touch disjoint per-vertex state and commute
//!   exactly under every selection policy;
//! * [`engine::ShardedEngine`] fans each wavefront out to `N` worker shards
//!   over `std::thread` + `std::sync::mpsc`, shipping cross-shard transfers
//!   as packed provenance-delta messages (the per-vertex buffers move
//!   wholesale, keeping the SoA key/value layout of
//!   `tin_core::sparse_vec`), and merges per-shard flow and footprint
//!   accounting into one [`tin_core::engine::EngineReport`];
//! * [`engine::run_ensemble_sharded`] is the sharded counterpart of
//!   [`tin_core::engine::run_ensemble`];
//! * [`engine::ShardedEngine::with_self_healing`] upgrades worker-death
//!   fail-fast to supervised in-run recovery (pool respawn + snapshot
//!   restore + bounded deterministic replay, budgeted by
//!   [`engine::RecoveryPolicy`]) with results bit-identical to an
//!   undisturbed run.
//!
//! ```
//! use tin_core::interaction::paper_running_example;
//! use tin_core::policy::{PolicyConfig, SelectionPolicy};
//! use tin_shard::ShardedEngine;
//!
//! let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
//! let mut engine = ShardedEngine::new(&config, 3, 2).unwrap();
//! engine.process_all(&paper_running_example()).unwrap();
//! let report = engine.report().unwrap();
//! assert_eq!(report.interactions, 6);
//! assert!((report.total_quantity - 21.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod wavefront;

pub use engine::{run_ensemble_sharded, shard_of, RecoveryPolicy, RecoveryStats, ShardedEngine};
pub use wavefront::{EpochRule, WavefrontScheduler, DEFAULT_MAX_BATCH};

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::engine::ProvenanceEngine;
    use tin_core::ids::VertexId;
    use tin_core::interaction::{paper_running_example, Interaction};
    use tin_core::policy::{PolicyConfig, SelectionPolicy};

    fn all_configs(num_vertices: usize) -> Vec<PolicyConfig> {
        let mut configs: Vec<PolicyConfig> = SelectionPolicy::all()
            .into_iter()
            .map(PolicyConfig::Plain)
            .collect();
        configs.push(PolicyConfig::Selective {
            tracked: vec![VertexId::new(1)],
        });
        configs.push(PolicyConfig::Grouped {
            num_groups: 2,
            group_of: (0..num_vertices).map(|v| (v % 2) as u32).collect(),
        });
        configs.push(PolicyConfig::Windowed { window: 3 });
        configs.push(PolicyConfig::TimeWindowed { duration: 2.5 });
        configs.push(PolicyConfig::adaptive());
        configs.push(PolicyConfig::budget(4));
        configs.push(PolicyConfig::PathTracking { lifo: true });
        configs.push(PolicyConfig::GenerationPaths { most_recent: false });
        configs
    }

    /// A deterministic synthetic stream with enough vertices for real
    /// parallelism and plenty of conflicts, full relays and partial
    /// transfers.
    fn synthetic_stream(num_vertices: u32, len: usize) -> Vec<Interaction> {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut out = Vec::with_capacity(len);
        let mut t = 0.0;
        while out.len() < len {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let src = (x % u64::from(num_vertices)) as u32;
            let dst = ((x >> 24) % u64::from(num_vertices)) as u32;
            if src == dst {
                continue;
            }
            t += ((x >> 48) % 4) as f64 * 0.5;
            let qty = 0.25 + ((x >> 8) % 64) as f64;
            out.push(Interaction::new(src, dst, t, qty));
        }
        out
    }

    /// Every policy, every shard count: the sharded engine reproduces the
    /// sequential engine bit for bit on a conflict-heavy synthetic stream.
    #[test]
    fn sharded_matches_sequential_exactly() {
        let n = 23usize;
        let stream = synthetic_stream(n as u32, 400);
        for config in all_configs(n) {
            let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
            sequential.process_all(&stream).unwrap();
            let seq_report = sequential.report();
            for shards in [1usize, 2, 4, 7] {
                let mut sharded = ShardedEngine::new(&config, n, shards).unwrap();
                sharded.process_all(&stream).unwrap();
                let report = sharded.report().unwrap();
                assert_eq!(
                    report.total_quantity,
                    seq_report.total_quantity,
                    "total mismatch: {} shards={shards}",
                    config.key()
                );
                assert_eq!(
                    report.newborn_quantity,
                    seq_report.newborn_quantity,
                    "newborn mismatch: {} shards={shards}",
                    config.key()
                );
                for v in 0..n {
                    let v = VertexId::from(v);
                    assert_eq!(
                        sharded.buffered(v).unwrap(),
                        sequential.buffered(v),
                        "buffered mismatch at {v}: {} shards={shards}",
                        config.key()
                    );
                    assert_eq!(
                        sharded.origins(v).unwrap(),
                        sequential.origins(v),
                        "origins mismatch at {v}: {} shards={shards}",
                        config.key()
                    );
                }
            }
        }
    }

    /// Mid-stream queries quiesce correctly and keep matching the
    /// sequential engine afterwards.
    #[test]
    fn interleaved_queries_stay_consistent() {
        let n = 16usize;
        let stream = synthetic_stream(n as u32, 120);
        let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
        let mut sequential = ProvenanceEngine::new(&config, n).unwrap();
        let mut sharded = ShardedEngine::new(&config, n, 3).unwrap();
        for (i, r) in stream.iter().enumerate() {
            sequential.process(r).unwrap();
            sharded.process(r).unwrap();
            if i % 37 == 0 {
                let v = VertexId::new((i % n) as u32);
                assert_eq!(sharded.buffered(v).unwrap(), sequential.buffered(v));
                assert_eq!(sharded.origins(v).unwrap(), sequential.origins(v));
            }
        }
        let report = sharded.report().unwrap();
        assert_eq!(report.interactions, stream.len());
        assert_eq!(
            report.newborn_quantity,
            sequential.report().newborn_quantity
        );
    }

    /// The sharded engine rejects exactly what the sequential engine
    /// rejects, and keeps running afterwards.
    #[test]
    fn validation_matches_sequential() {
        let config = PolicyConfig::Plain(SelectionPolicy::Lifo);
        let mut engine = ShardedEngine::new(&config, 3, 2).unwrap();
        assert!(engine
            .process(&Interaction::new(1u32, 1u32, 1.0, 2.0))
            .is_err());
        assert!(engine
            .process(&Interaction::new(0u32, 1u32, 1.0, 0.0))
            .is_err());
        assert!(engine
            .process(&Interaction::new(0u32, 9u32, 1.0, 2.0))
            .is_err());
        engine
            .process(&Interaction::new(0u32, 1u32, 5.0, 2.0))
            .unwrap();
        assert!(engine
            .process(&Interaction::new(0u32, 1u32, 4.0, 2.0))
            .is_err());
        engine
            .process(&Interaction::new(1u32, 2u32, 5.0, 1.0))
            .unwrap();
        let report = engine.report().unwrap();
        assert_eq!(report.interactions, 2);
        // An invalid config fails synchronously.
        assert!(ShardedEngine::new(&PolicyConfig::Windowed { window: 0 }, 3, 2).is_err());
    }

    /// The running example end-state through the sharded engine (single
    /// shard, trivially; many shards, via the migration protocol).
    #[test]
    fn running_example_end_state() {
        for shards in [1usize, 2, 3] {
            let config = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
            let mut engine = ShardedEngine::new(&config, 3, shards).unwrap();
            engine.process_all(&paper_running_example()).unwrap();
            assert!((engine.buffered(VertexId::new(0)).unwrap() - 3.0).abs() < 1e-9);
            assert!((engine.buffered(VertexId::new(1)).unwrap() - 2.0).abs() < 1e-9);
            assert!((engine.buffered(VertexId::new(2)).unwrap() - 4.0).abs() < 1e-9);
            let report = engine.report().unwrap();
            assert!((report.newborn_quantity - 9.0).abs() < 1e-9);
            assert!((report.relayed_quantity - 12.0).abs() < 1e-9);
            assert!(report.footprint.total() > 0);
            assert!(report.peak_footprint_bytes >= report.footprint.total());
            assert_eq!(engine.num_shards(), shards);
            assert_eq!(engine.policy_key(), "prop_sparse");
            assert!(format!("{engine:?}").contains("prop_sparse"));
        }
    }

    /// The sharded ensemble mirrors the sequential ensemble.
    #[test]
    fn ensemble_matches_sequential() {
        let n = 12usize;
        let stream = synthetic_stream(n as u32, 150);
        let configs = vec![
            PolicyConfig::Plain(SelectionPolicy::NoProvenance),
            PolicyConfig::Plain(SelectionPolicy::ProportionalSparse),
            PolicyConfig::Windowed { window: 8 },
        ];
        let sequential = tin_core::engine::run_ensemble(&configs, n, &stream).unwrap();
        let sharded = run_ensemble_sharded(&configs, n, &stream, 3).unwrap();
        assert_eq!(sequential.len(), sharded.len());
        for (a, b) in sequential.iter().zip(&sharded) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.interactions, b.interactions);
            assert_eq!(a.total_quantity, b.total_quantity);
            assert_eq!(a.newborn_quantity, b.newborn_quantity);
        }
        // Invalid members abort the ensemble.
        let bad = vec![PolicyConfig::Windowed { window: 0 }];
        assert!(run_ensemble_sharded(&bad, n, &stream, 2).is_err());
    }

    /// `buffered_all` returns the same values as per-vertex `buffered`
    /// queries, in one message round per shard.
    #[test]
    fn buffered_all_matches_pointwise_queries() {
        let n = 17usize;
        let stream = synthetic_stream(n as u32, 90);
        let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
        let mut engine = ShardedEngine::new(&config, n, 3).unwrap();
        engine.process_all(&stream).unwrap();
        let all = engine.buffered_all().unwrap();
        assert_eq!(all.len(), n);
        for (i, q) in all.iter().enumerate() {
            assert_eq!(
                *q,
                engine.buffered(VertexId::from(i)).unwrap(),
                "vertex {i}"
            );
        }
    }

    /// `shard_of` is total, deterministic and covers all shards on a dense
    /// id range.
    #[test]
    fn shard_assignment_spreads() {
        let shards = 4usize;
        let mut seen = vec![0usize; shards];
        for v in 0..256u32 {
            let s = shard_of(VertexId::new(v), shards);
            assert!(s < shards);
            assert_eq!(s, shard_of(VertexId::new(v), shards), "deterministic");
            seen[s] += 1;
        }
        assert!(seen.iter().all(|&c| c > 16), "no shard starves: {seen:?}");
    }
}
