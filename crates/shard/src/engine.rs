//! The sharded parallel provenance engine.
//!
//! ## Execution model
//!
//! `N` worker shards each own a full tracker replica built from the same
//! [`PolicyConfig`]. Vertices are hash-partitioned: shard `h(v)` holds the
//! *authoritative* per-vertex state of `v`; every other replica's slot for
//! `v` is hollow. The main thread validates the stream, accounts flow
//! (Algorithm 1's newborn-vs-relayed split), and cuts it into conflict-free
//! wavefronts with the [`WavefrontScheduler`]; each wavefront fans out to
//! the shards over `std::sync::mpsc` channels:
//!
//! * an interaction whose endpoints share an owner is processed *locally*
//!   by that shard's tracker — the exact same `process` code path as the
//!   sequential engine;
//! * a cross-shard interaction is processed by the **destination owner**:
//!   the source owner first ships the source vertex's state as a packed
//!   provenance-delta message (the native per-vertex buffers move wholesale
//!   — sparse vectors keep the SoA key/value layout of
//!   `tin_core::sparse_vec`), the destination owner installs it, runs
//!   `process`, and ships the updated source state home. A shard therefore
//!   never touches another shard's vectors.
//!
//! Because interactions inside a wavefront touch pairwise-disjoint vertex
//! pairs, each per-vertex state sees exactly the same operation sequence, in
//! the same order, executed by the same tracker code as a sequential run —
//! so `origins`, `buffered` and the flow totals are **bit-identical** to
//! [`tin_core::engine::ProvenanceEngine`] for every policy (enforced by the
//! `sharded_equivalence` test suite). Global window epochs (count- and
//! time-based resets) are kept deterministic by cutting wavefronts at epoch
//! boundaries and syncing every shard's epoch clock
//! ([`tin_core::ProvenanceTracker::sync_epoch`]) before it touches state.
//!
//! ## What is *not* identical
//!
//! Memory accounting differs: every shard allocates its own `|V|`-slot spine
//! and the merged [`EngineReport::footprint`] sums the per-shard breakdowns,
//! so index bytes scale with the shard count (that memory is genuinely
//! allocated). `peak_footprint_bytes` is the maximum, over time, of the sum
//! of the *latest* per-shard footprint samples — a synchronized global
//! estimate, sampled on the same spike-or-interval schedule as the
//! sequential engine, not the (inflated) sum of each shard's individual
//! peak. [`EngineReport::runtime_secs`] also
//! means something different here: the sequential engine times only
//! `tracker.process` calls, while this engine times the *main thread's*
//! work — scheduling, dispatch, quiesce waits and query rounds — and
//! excludes worker compute running concurrently. Compare
//! sharded-vs-sequential throughput with external wall-clock timing (as
//! `bench_baseline`'s scaling section does), not with `runtime_secs`.
//!
//! ## Failure model
//!
//! The protocol is deadlock-free for well-behaved workers: every shard
//! sends its exports unconditionally before waiting on anything, and
//! returns depend only on exports, so all dispatched wavefronts drain
//! without main-thread intervention. A worker that dies mid-computation
//! (panic, or any early exit) **fails fast** instead of hanging its peers:
//!
//! * a `PanicSentinel` drop guard on every worker thread broadcasts
//!   `PeerFailed` to all peers and `WorkerFailed` to the main thread the
//!   moment the worker unwinds;
//! * a peer blocked mid-wavefront on the dead worker's state wakes up on
//!   the broadcast, abandons the wavefront and exits cleanly (its own
//!   peers were notified by the same broadcast, so nobody waits on *it*);
//! * the main thread turns the notification — or any closed channel — into
//!   [`TinError::WorkerLost`] and **poisons** the engine: the failing call
//!   and every subsequent operation return the error instead of blocking
//!   on a channel that will never be served.
//!
//! `process` drains completion messages without blocking, so a death
//! surfaces on the next call rather than at the final report. The
//! `failure_injection` integration tests kill a live worker mid-stream
//! (via [`ShardedEngine::inject_worker_panic`]) and assert the error
//! surfaces promptly on every public entry point.
//!
//! ## Supervised self-healing
//!
//! [`ShardedEngine::with_self_healing`] upgrades the poison path to
//! in-run recovery. While healing is enabled the coordinator keeps a
//! bounded **replay buffer** of the interactions processed since its most
//! recent **recovery snapshot** — an in-memory [`Checkpoint`] refreshed
//! whenever the buffer reaches [`RecoveryPolicy::snapshot_every`] and at
//! every durable periodic save (so the restore point never lags the
//! newest durable file). When a worker loss surfaces — a `WorkerFailed`
//! notification, a closed channel, or a blocking receive exceeding
//! [`RecoveryPolicy::hang_timeout`] — the coordinator:
//!
//! 1. **abandons the wounded pool wholesale**: a best-effort `Shutdown`
//!    nudges survivors (a hung worker's peers never saw a sentinel
//!    broadcast), the old channels and join handles are detached, and a
//!    brand-new generation of workers is spawned on fresh channels — so a
//!    straggler message from the old generation (say, the *second*
//!    `WorkerFailed` of a double kill) can never reach the new receiver;
//! 2. **restores** the recovery snapshot exactly like
//!    [`ShardedEngine::resume_from`] (epoch sync, `Restore` routing,
//!    counter seeding), and
//! 3. **replays** the buffered suffix through the normal scheduling path.
//!    The replayed wavefront cuts may differ from the original run's, but
//!    conflict-free wavefronts commute bit-for-bit and newborn folding
//!    stays in strict stream order, so the results — and the final stdout
//!    — are byte-identical to an undisturbed run (enforced by the
//!    `self_healing` proptests).
//!
//! Respawns draw on a budget ([`RecoveryPolicy::max_worker_restarts`],
//! exponential backoff): a worker that dies *during* recovery consumes
//! another unit, and an exhausted budget falls back to the original
//! fail-fast poisoning. A permanently hung worker's generation is
//! detached, not joined — those threads are leaked by design (joining a
//! hung thread would block recovery forever); their channels die with the
//! generation and any late sends fail harmlessly.
//!
//! ## Durable checkpoints
//!
//! [`ShardedEngine::checkpoint`] quiesces the engine — every shard finishes
//! every wavefront and advances its epoch clock to the same global stream
//! position — then collects each shard's owned per-vertex payloads
//! ([`tin_core::ProvenanceTracker::encode_vertex_state`]) into **one**
//! shard-count-independent [`Checkpoint`] file, byte-identical to what a
//! sequential engine at the same stream position captures.
//! [`ShardedEngine::resume_from`] repartitions such a file across a possibly
//! *different* shard count: the main thread decodes every payload with a
//! probe tracker, syncs all shards to the checkpoint's epoch *first* (so
//! window resets fired by the sync cannot clobber restored state), then
//! routes each vertex state to its new owner.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tin_core::checkpoint::{Checkpoint, CheckpointStore, SaveStats, StreamCursor};
use tin_core::codec::ByteReader;
use tin_core::engine::{newborn_quantity, validate_stream_step, EngineReport};
use tin_core::error::{Result, TinError};
use tin_core::ids::VertexId;
use tin_core::interaction::Interaction;
use tin_core::memory::FootprintBreakdown;
use tin_core::origins::OriginSet;
use tin_core::policy::PolicyConfig;
use tin_core::quantity::Quantity;
use tin_core::stream::InteractionSource;
use tin_core::tracker::{build_tracker, ProvenanceTracker, ShardVertexState};
use tin_obs::{
    CounterId, GaugeId, HistogramId, Obs, Recorder, Registry, SpaceSaving, SpanEvent, Telemetry,
};

use crate::wavefront::{EpochRule, WavefrontScheduler};

/// Deterministic vertex → shard assignment (Fibonacci hashing of the raw
/// id, so consecutive vertex ids spread across shards).
#[inline]
pub fn shard_of(v: VertexId, num_shards: usize) -> usize {
    ((u64::from(v.raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize % num_shards
}

/// Maximum number of wavefronts in flight before the main thread blocks on
/// completions (bounds queued messages and the newborn reassembly buffers).
const MAX_IN_FLIGHT: usize = 8;

/// How many locally processed interactions between two footprint samples on
/// a shard (mirrors the sequential engine's
/// `ProvenanceEngine::FOOTPRINT_SAMPLE_INTERVAL`).
const SHARD_SAMPLE_INTERVAL: usize = 1024;

/// Span capacity of each worker's private flight recorder. Workers ship and
/// clear their spans at every sync barrier, so this only bounds the spans
/// of one barrier-to-barrier window.
const WORKER_TRACE_CAPACITY: usize = 4096;

/// Default number of interactions between two in-memory recovery snapshots —
/// the bound on the coordinator-side replay buffer (see [`RecoveryPolicy`]).
const DEFAULT_SNAPSHOT_EVERY: usize = 4096;

/// Configuration for supervised worker recovery
/// ([`ShardedEngine::with_self_healing`]). See the module docs for the
/// recovery sequence this parameterises.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Worker-pool respawns allowed over the engine's lifetime before a
    /// failure falls through to the fail-fast poison path. Zero makes
    /// every failure terminal (equivalent to not enabling self-healing).
    pub max_worker_restarts: usize,
    /// Base delay before the *second* and later respawn attempts, doubling
    /// per consecutive restart (exponential backoff; the first respawn is
    /// immediate).
    pub restart_backoff: Duration,
    /// Interactions between two in-memory recovery snapshots. This bounds
    /// both the replay buffer's memory and the worst-case replay cost of a
    /// recovery; smaller values trade steady-state snapshot overhead for a
    /// tighter recovery-time objective.
    pub snapshot_every: usize,
    /// Declare a worker *hung* — and recover as if it had died — when a
    /// blocking coordinator receive exceeds this. `None` (the default)
    /// waits forever, which is the right call when worker compute per
    /// wavefront is unbounded.
    pub hang_timeout: Option<Duration>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_worker_restarts: 3,
            restart_backoff: Duration::from_millis(10),
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            hang_timeout: None,
        }
    }
}

/// What supervised recovery has actually done on one engine — the CLI and
/// benches read the measured recovery-time objective from here.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Successful recoveries (pool respawn + restore + replay).
    pub recoveries: usize,
    /// Worker threads spawned by recovery: `num_shards` per respawn
    /// attempt, including attempts that themselves failed.
    pub workers_respawned: usize,
    /// Interactions re-processed from the replay buffer by successful
    /// recoveries.
    pub replayed_interactions: usize,
    /// Wall-clock seconds of the most recent successful recovery, from
    /// failure detection to the end of replay (the measured RTO).
    pub last_rto_secs: f64,
    /// Wall-clock seconds spent across *all* recovery attempts, successful
    /// or not.
    pub total_recovery_secs: f64,
}

/// Metric handles for the per-shard metrics. Workers register exactly these
/// (and nothing else) into their private registries; the main thread
/// registers them *first* into the user's [`Obs`] so worker deltas fold in
/// by index via [`Registry::merge_prefix_from`] — the two sides share this
/// one registration function precisely so the layouts cannot drift.
struct WorkerMetricIds {
    /// Same-owner interactions processed locally.
    locals: CounterId,
    /// Cross-shard interactions processed after importing the source state.
    imports: CounterId,
    /// Per-vertex states shipped between shards (exports + returns).
    migrations: CounterId,
    /// Footprint spikes caught by the shard's spike monitor.
    spikes: CounterId,
    /// Wall time of one shard's share of one wavefront.
    batch_ns: HistogramId,
    /// Deferred messages queued behind the current wavefront.
    backlog_depth: GaugeId,
    /// Early-arrived peer states parked for later wavefronts.
    stash_depth: GaugeId,
}

fn register_worker_metrics(metrics: &mut Registry) -> WorkerMetricIds {
    WorkerMetricIds {
        locals: metrics.counter("shard_local_interactions_total", "interactions"),
        imports: metrics.counter("shard_import_interactions_total", "interactions"),
        migrations: metrics.counter("shard_state_migrations_total", "states"),
        spikes: metrics.counter("footprint_spikes_total", "spikes"),
        batch_ns: metrics.histogram("shard_batch_ns", "ns"),
        backlog_depth: metrics.gauge("shard_backlog_messages_total", "messages"),
        stash_depth: metrics.gauge("shard_stash_states_total", "states"),
    }
}

/// A worker's private observability state: metrics registered by
/// [`register_worker_metrics`], a flight recorder sharing the main sink's
/// epoch (so worker spans land on the same timeline), and the two skew
/// sketches ([`SpaceSaving`]) of the hottest vertices this shard touched
/// and migrated since the previous barrier.
struct WorkerObs {
    ids: WorkerMetricIds,
    metrics: Registry,
    trace: Recorder,
    /// Hottest vertices by touch count (each processed interaction offers
    /// its source and destination once).
    touch: SpaceSaving,
    /// Hottest vertices by migrated state bytes (exports shipped out plus
    /// borrowed states shipped home).
    migrated: SpaceSaving,
}

/// One shard's accumulated metrics, spans and skew sketches since its
/// previous sync barrier, attached to the [`FromShard::Synced`]
/// acknowledgement. The main thread folds deltas in shard-id order, so the
/// merged registry is deterministic regardless of acknowledgement arrival
/// order.
struct WorkerObsDelta {
    metrics: Registry,
    events: Vec<SpanEvent>,
    touch: SpaceSaving,
    migrated: SpaceSaving,
}

/// One wavefront's worth of work for one shard.
struct BatchCmd {
    /// Global stream index of the wavefront's first interaction.
    start: usize,
    /// Timestamp of the wavefront's first interaction (epoch sync).
    start_time: f64,
    /// Same-owner interactions, `(offset_in_batch, interaction)`.
    locals: Vec<(u32, Interaction)>,
    /// Vertices this shard owns whose state must be shipped to another
    /// shard for a cross-shard interaction, `(vertex, destination shard)`.
    exports: Vec<(VertexId, usize)>,
    /// Cross-shard interactions this shard processes once the source vertex
    /// state arrives, `(offset_in_batch, interaction)`.
    imports: Vec<(u32, Interaction)>,
    /// Number of lent-out vertex states that come home during this batch.
    returns_expected: usize,
}

/// A migrating per-vertex state.
struct StateMsg {
    vertex: VertexId,
    state: ShardVertexState,
    /// `false`: an export travelling to the borrowing shard; `true`: the
    /// state returning to its owner after the borrowed interaction.
    coming_home: bool,
}

enum ToShard {
    Batch(Box<BatchCmd>),
    State(StateMsg),
    /// Quiesce: advance the epoch clock to the global stream position and
    /// acknowledge.
    Sync {
        processed: usize,
        now: f64,
    },
    QueryOrigins(VertexId),
    QueryBuffered(VertexId),
    /// Buffered quantities of every vertex this shard owns, in one message.
    QueryBufferedAll,
    QueryFootprint,
    /// Checkpoint capture: encode the state of every vertex this shard owns
    /// (the engine quiesces first, so every shard captures at the identical
    /// global stream position).
    CaptureStates,
    /// Recovery: install one decoded vertex state on its (new) owner. Sent
    /// strictly after the epoch [`ToShard::Sync`], so resets fired by the
    /// sync cannot clobber the restored state.
    Restore {
        vertex: VertexId,
        state: ShardVertexState,
    },
    /// Create the worker's private observability state, recording spans
    /// against `epoch` (the main sink's trace epoch, so all spans share one
    /// timeline). Sent once by [`ShardedEngine::with_observability`].
    EnableObs {
        epoch: Instant,
    },
    /// Change the worker's footprint sampling interval
    /// ([`ShardedEngine::with_footprint_sample_interval`]).
    SetSampleInterval(usize),
    /// Broadcast by a dying worker's [`PanicSentinel`]: shard `shard` is
    /// gone. A worker blocked mid-wavefront on the dead peer's state wakes
    /// up and exits instead of waiting forever.
    PeerFailed,
    /// Test hook ([`ShardedEngine::inject_worker_panic`]): panic on receipt,
    /// exercising the real unwind-and-broadcast failure path.
    InjectPanic,
    /// Test hook ([`ShardedEngine::inject_worker_stall`]): sleep for the
    /// given milliseconds on receipt, exercising hang detection
    /// ([`RecoveryPolicy::hang_timeout`]) without killing anything.
    InjectStall(u64),
    Shutdown,
}

enum FromShard {
    BatchDone {
        start: usize,
        shard: usize,
        /// `(offset_in_batch, newborn_quantity)` for every interaction this
        /// shard processed.
        newborn: Vec<(u32, f64)>,
        /// A fresh full-footprint sample (total bytes), attached when the
        /// shard's spike-or-interval schedule fired after this batch. The
        /// main thread folds it into the synchronized global peak.
        footprint: Option<usize>,
    },
    Origins(OriginSet),
    Buffered(Quantity),
    /// `(vertex raw id, buffered)` for every owned vertex.
    BufferedAll(Vec<(u32, Quantity)>),
    Footprint {
        shard: usize,
        breakdown: FootprintBreakdown,
    },
    /// `(vertex raw id, checkpoint payload)` for every owned vertex.
    StatesCaptured(Vec<(u32, Vec<u8>)>),
    /// Sync acknowledgement, carrying the shard's observability delta when
    /// instrumentation is enabled.
    Synced {
        shard: usize,
        obs: Option<Box<WorkerObsDelta>>,
    },
    /// Sent by a dying worker's [`PanicSentinel`]: the engine must poison
    /// itself and surface [`TinError::WorkerLost`].
    WorkerFailed {
        shard: usize,
    },
}

/// Reassembly buffer for one in-flight wavefront.
struct PendingBatch {
    len: usize,
    involved_shards: usize,
    done_shards: usize,
    /// Newborn quantity per offset, filled by shard completions.
    newborn: Vec<f64>,
}

/// Drop guard armed for the whole lifetime of a worker thread: if the
/// worker unwinds (or exits early without disarming), every peer and the
/// main thread are notified so nobody blocks on the dead worker's channels.
struct PanicSentinel {
    shard_id: usize,
    peers: Vec<Sender<ToShard>>,
    main_tx: Sender<FromShard>,
    armed: bool,
}

impl PanicSentinel {
    fn new(shard_id: usize, peers: Vec<Sender<ToShard>>, main_tx: Sender<FromShard>) -> Self {
        PanicSentinel {
            shard_id,
            peers,
            main_tx,
            armed: true,
        }
    }

    /// Clean shutdown: the worker is exiting because it was told to (or the
    /// failure was already broadcast by someone else); no notification.
    fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for PanicSentinel {
    fn drop(&mut self) {
        if !self.armed && !std::thread::panicking() {
            return;
        }
        for (peer, tx) in self.peers.iter().enumerate() {
            if peer != self.shard_id {
                // A send can only fail if the peer is already gone — fine.
                let _ = tx.send(ToShard::PeerFailed);
            }
        }
        let _ = self.main_tx.send(FromShard::WorkerFailed {
            shard: self.shard_id,
        });
    }
}

/// Why a worker abandoned a wavefront mid-flight.
enum BatchAbort {
    /// A peer shard died (its sentinel broadcast reached us, or a send to
    /// it failed) — the wavefront can never complete.
    PeerLost,
    /// The channel from the main thread closed mid-wavefront.
    MainLost,
}

/// The main thread's observability state: the user's [`Obs`] with the
/// shared worker-metric prefix registered first (the
/// [`Registry::merge_prefix_from`] layout contract), followed by the
/// main-thread scheduling, barrier and checkpoint metrics.
struct ShardObsState {
    obs: Obs,
    /// Worker-prefix handles: valid into every worker delta registry too
    /// (the layouts are identical by construction), which is how
    /// [`ShardedEngine::collect_sync_acks`] reads each shard's busy time
    /// without a snapshot.
    worker_ids: WorkerMetricIds,
    wavefront_size: HistogramId,
    wavefronts: CounterId,
    inflight: GaugeId,
    barrier_ns: HistogramId,
    footprint_bytes: GaugeId,
    /// Per-barrier-window spread (max − min) of the shards' busy time.
    busy_spread: GaugeId,
    /// Per-barrier-window max/mean shard busy time, in permille (1000 =
    /// perfectly balanced).
    imbalance: GaugeId,
    ckpt_capture_ns: HistogramId,
    ckpt_encode_ns: HistogramId,
    ckpt_write_ns: HistogramId,
    ckpt_retries: CounterId,
    ckpt_bytes: GaugeId,
    respawns: CounterId,
    recoveries: CounterId,
    replayed: CounterId,
    recovery_ns: HistogramId,
}

impl ShardObsState {
    fn new(mut obs: Obs) -> Self {
        // Worker prefix first: shard deltas merge into the registry by
        // index, so the prefix layouts must be identical.
        let worker_ids = register_worker_metrics(&mut obs.metrics);
        let m = &mut obs.metrics;
        let wavefront_size = m.histogram("wavefront_batch_interactions_total", "interactions");
        let wavefronts = m.counter("wavefronts_total", "wavefronts");
        let inflight = m.gauge("wavefronts_in_flight_total", "wavefronts");
        let barrier_ns = m.histogram("sync_barrier_ns", "ns");
        let footprint_bytes = m.gauge("footprint_bytes", "bytes");
        let busy_spread = m.gauge("barrier_busy_spread_ns", "ns");
        let imbalance = m.gauge("batch_imbalance_ratio", "permille");
        let ckpt_capture_ns = m.histogram("checkpoint_capture_ns", "ns");
        let ckpt_encode_ns = m.histogram("checkpoint_encode_ns", "ns");
        let ckpt_write_ns = m.histogram("checkpoint_write_ns", "ns");
        let ckpt_retries = m.counter("checkpoint_retries_total", "attempts");
        let ckpt_bytes = m.gauge("checkpoint_bytes", "bytes");
        let respawns = m.counter("worker_respawns_total", "workers");
        let recoveries = m.counter("recoveries_total", "recoveries");
        let replayed = m.counter("replayed_interactions_total", "interactions");
        let recovery_ns = m.histogram("recovery_ns", "ns");
        ShardObsState {
            obs,
            worker_ids,
            wavefront_size,
            wavefronts,
            inflight,
            barrier_ns,
            footprint_bytes,
            busy_spread,
            imbalance,
            ckpt_capture_ns,
            ckpt_encode_ns,
            ckpt_write_ns,
            ckpt_retries,
            ckpt_bytes,
            respawns,
            recoveries,
            replayed,
            recovery_ns,
        }
    }

    /// Fold one [`CheckpointStore::save`]'s timing figures into the
    /// checkpoint metrics.
    fn record_save(&mut self, stats: Option<SaveStats>) {
        let Some(s) = stats else { return };
        self.obs
            .metrics
            .observe(self.ckpt_encode_ns, secs_to_ns(s.encode_secs));
        self.obs
            .metrics
            .observe(self.ckpt_write_ns, secs_to_ns(s.write_secs));
        self.obs.metrics.add(self.ckpt_retries, s.retries as u64);
        self.obs
            .metrics
            .set_gauge(self.ckpt_bytes, s.encoded_bytes as u64);
    }
}

/// An attached live-telemetry stream: the JSONL sink, its
/// every-N-interactions cadence, and the stream position of the last record
/// (so the quiesce syncs of post-run queries do not emit stale barriers
/// after the `final` record).
struct TelemetryState {
    sink: Telemetry,
    every: usize,
    last_at: Option<u64>,
}

/// Seconds (as measured) to integer nanoseconds for histogram observation.
fn secs_to_ns(secs: f64) -> u64 {
    if secs <= 0.0 {
        0
    } else {
        (secs * 1e9).round().min(u64::MAX as f64) as u64
    }
}

/// A parallel drop-in for [`tin_core::engine::ProvenanceEngine`]: same validation, flow
/// accounting and report surface, bit-identical provenance, `N`-way shard
/// parallelism (see the module docs).
pub struct ShardedEngine {
    config: PolicyConfig,
    policy_key: String,
    num_vertices: usize,
    num_shards: usize,
    scheduler: WavefrontScheduler,
    to_shards: Vec<Sender<ToShard>>,
    from_shards: Receiver<FromShard>,
    handles: Vec<JoinHandle<()>>,
    /// Interactions of the currently open (undispatched) wavefront.
    open_batch: Vec<Interaction>,
    /// Global index of the first interaction of the open wavefront.
    open_start: usize,
    /// In-flight wavefronts keyed by start index.
    in_flight: BTreeMap<usize, PendingBatch>,
    /// Start index of the next wavefront to fold into the flow totals.
    next_fold: usize,
    processed: usize,
    /// Stream position the shards were last quiesced at: a repeated quiesce
    /// with no interactions in between is a no-op, so query loops (e.g. the
    /// CLI printing every vertex) pay the synchronisation round once.
    synced_through: usize,
    last_time: Option<f64>,
    total_quantity: Quantity,
    newborn_quantity: Quantity,
    busy_secs: f64,
    /// The most recent full-footprint sample (total bytes) of each shard.
    latest_footprint: Vec<usize>,
    /// Maximum, over time, of `latest_footprint.iter().sum()` — the
    /// synchronized global footprint peak reported by [`Self::report`].
    peak_footprint: usize,
    /// Durable checkpoint store and interval, when periodic checkpoints are
    /// enabled via [`Self::with_durable_checkpoints`].
    durable: Option<(CheckpointStore, usize)>,
    /// Durable checkpoints written so far (periodic and on-demand).
    checkpoints_taken: usize,
    /// Set on the first worker failure; every subsequent operation returns
    /// this error instead of touching the (dead) channels.
    poisoned: Option<TinError>,
    /// Observability sink, when attached via [`Self::with_observability`].
    /// Boxed so the uninstrumented engine pays one pointer and one branch.
    obs: Option<Box<ShardObsState>>,
    /// Live telemetry stream ([`Self::with_telemetry`]): records are
    /// emitted every `every` interactions and at every sync barrier.
    telemetry: Option<Box<TelemetryState>>,
    /// Supervised-recovery configuration ([`Self::with_self_healing`]).
    /// `None` (the default): worker death poisons the engine (fail fast).
    recovery: Option<RecoveryPolicy>,
    /// The in-memory restore point recovery rebuilds from — refreshed when
    /// the replay buffer reaches [`RecoveryPolicy::snapshot_every`] and at
    /// every durable periodic save. `None` iff `recovery` is `None`.
    recovery_snapshot: Option<Checkpoint>,
    /// Interactions processed since `recovery_snapshot` — deterministically
    /// replayed after a restore. Empty when `recovery` is `None`.
    replay_buffer: VecDeque<Interaction>,
    /// What recovery has done so far ([`Self::recovery_stats`]).
    recovery_stats: RecoveryStats,
    /// Pool respawns consumed from [`RecoveryPolicy::max_worker_restarts`].
    restarts_used: usize,
    /// Footprint sample interval to re-arm on a respawned pool
    /// ([`Self::with_footprint_sample_interval`]).
    sample_interval: Option<usize>,
    /// Test hook ([`Self::inject_panic_on_respawn`]): how many upcoming
    /// respawned pools immediately receive an injected panic.
    respawn_panics: usize,
}

impl ShardedEngine {
    /// Build a sharded engine for `config` over `num_vertices` vertices with
    /// `num_shards` worker shards (values are clamped to at least 1).
    ///
    /// # Errors
    /// Propagates [`TinError::InvalidConfig`] from the tracker factory (the
    /// configuration is validated once up front; worker replicas cannot
    /// fail afterwards).
    pub fn new(config: &PolicyConfig, num_vertices: usize, num_shards: usize) -> Result<Self> {
        // Validate the configuration on the caller's thread so errors
        // surface synchronously.
        let probe = build_tracker(config, num_vertices)?;
        drop(probe);
        let num_shards = num_shards.max(1);

        let (to_shards, from_shards, handles) = spawn_pool(config, num_vertices, num_shards);

        Ok(ShardedEngine {
            config: config.clone(),
            policy_key: config.key(),
            num_vertices,
            num_shards,
            scheduler: WavefrontScheduler::new(num_vertices, EpochRule::for_policy(config)),
            to_shards,
            from_shards,
            handles,
            open_batch: Vec::new(),
            open_start: 0,
            in_flight: BTreeMap::new(),
            next_fold: 0,
            processed: 0,
            synced_through: 0,
            last_time: None,
            total_quantity: 0.0,
            newborn_quantity: 0.0,
            busy_secs: 0.0,
            latest_footprint: vec![0; num_shards],
            peak_footprint: 0,
            durable: None,
            checkpoints_taken: 0,
            poisoned: None,
            obs: None,
            telemetry: None,
            recovery: None,
            recovery_snapshot: None,
            replay_buffer: VecDeque::new(),
            recovery_stats: RecoveryStats::default(),
            restarts_used: 0,
            sample_interval: None,
            respawn_panics: 0,
        })
    }

    /// Write a durable [`Checkpoint`] into `store` every `every`
    /// interactions. Each capture quiesces the engine (all shards reach the
    /// same stream position), so pick an interval coarse enough for the
    /// workload — the CLI default is 10 000.
    ///
    /// # Errors
    /// Returns [`TinError::InvalidConfig`] if `every` is zero.
    pub fn with_durable_checkpoints(
        mut self,
        store: CheckpointStore,
        every: usize,
    ) -> Result<Self> {
        if every == 0 {
            return Err(TinError::InvalidConfig(
                "durable checkpoint interval must be positive".into(),
            ));
        }
        self.durable = Some((store, every));
        Ok(self)
    }

    /// Attach an observability sink: metrics and spans from the main thread
    /// and every shard worker land in `obs`. Workers accumulate into
    /// private registries and ship deltas at each sync barrier, where they
    /// are merged in shard-id order — instrumentation therefore adds no
    /// cross-thread synchronisation and leaves results bit-identical.
    /// Worker spans share the sink's trace epoch, so the exported trace
    /// shows one timeline (tid 0 = main thread, tid `shard + 1` = workers).
    ///
    /// # Errors
    /// [`TinError::WorkerLost`] if a shard worker died.
    pub fn with_observability(mut self, obs: Obs) -> Result<Self> {
        let state = Box::new(ShardObsState::new(obs));
        let epoch = state.obs.trace.epoch();
        for shard in 0..self.num_shards {
            self.send_to(shard, ToShard::EnableObs { epoch })?;
        }
        self.obs = Some(state);
        Ok(self)
    }

    /// Take a full footprint sample every `every` locally processed
    /// interactions on each shard (default: every
    /// 1024, mirroring the sequential engine). Spike-triggered samples are
    /// unaffected.
    ///
    /// # Errors
    /// [`TinError::InvalidConfig`] if `every` is zero;
    /// [`TinError::WorkerLost`] if a shard worker died.
    pub fn with_footprint_sample_interval(mut self, every: usize) -> Result<Self> {
        if every == 0 {
            return Err(TinError::InvalidConfig(
                "footprint sample interval must be positive".into(),
            ));
        }
        for shard in 0..self.num_shards {
            self.send_to(shard, ToShard::SetSampleInterval(every))?;
        }
        // Remembered so a pool respawned by supervised recovery is re-armed
        // with the same interval.
        self.sample_interval = Some(every);
        Ok(self)
    }

    /// Enable supervised self-healing: worker losses (panics, closed
    /// channels, and — when [`RecoveryPolicy::hang_timeout`] is set — hung
    /// workers) are recovered in-run by respawning the pool, restoring the
    /// most recent snapshot and replaying the buffered suffix, instead of
    /// poisoning the engine. See the module docs for the full sequence and
    /// the bit-identity argument.
    ///
    /// Seeds the restore point with an immediate snapshot, so an engine
    /// resumed mid-stream ([`Self::resume_from`]) never falls back to
    /// position zero.
    ///
    /// # Errors
    /// [`TinError::InvalidConfig`] if `policy.snapshot_every` is zero;
    /// [`TinError::WorkerLost`] if a shard worker died before enabling.
    pub fn with_self_healing(mut self, policy: RecoveryPolicy) -> Result<Self> {
        if policy.snapshot_every == 0 {
            return Err(TinError::InvalidConfig(
                "recovery snapshot interval must be positive".into(),
            ));
        }
        self.recovery = Some(policy);
        let snapshot = self.checkpoint_attempt()?;
        self.adopt_snapshot(snapshot);
        Ok(self)
    }

    /// What supervised recovery has done so far — in particular the
    /// measured recovery-time objective of the latest heal
    /// ([`RecoveryStats::last_rto_secs`]).
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery_stats
    }

    /// Test hook: make worker `shard` sleep `millis` on its next message,
    /// exercising hang detection ([`RecoveryPolicy::hang_timeout`]) without
    /// killing anything. The stalled worker's generation is abandoned by
    /// the recovery; when the sleep ends the worker drains its `Shutdown`
    /// nudge and exits.
    ///
    /// # Errors
    /// [`TinError::WorkerLost`] if the engine is already poisoned or the
    /// worker is already gone.
    pub fn inject_worker_stall(&mut self, shard: usize, millis: u64) -> Result<()> {
        self.check_poisoned()?;
        self.send_to(shard, ToShard::InjectStall(millis))
    }

    /// Test hook: each of the next `times` respawned pools immediately
    /// receives an injected panic, exercising the worker-dies-*during*-
    /// recovery path (each failed attempt consumes respawn budget).
    pub fn inject_panic_on_respawn(&mut self, times: usize) {
        self.respawn_panics = times;
    }

    /// The attached observability sink, if any. Worker metrics lag until
    /// the next sync barrier; use [`Self::take_obs`] for final numbers.
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_deref().map(|s| &s.obs)
    }

    /// Quiesce (folding every worker's outstanding metric and span deltas
    /// into the sink) and detach the observability sink.
    ///
    /// # Errors
    /// [`TinError::WorkerLost`] if a shard worker died.
    pub fn take_obs(&mut self) -> Result<Option<Obs>> {
        if self.obs.is_none() {
            return Ok(None);
        }
        self.with_heal(Self::quiesce)?;
        Ok(self.obs.take().map(|s| s.obs))
    }

    /// Detach the observability sink *without* quiescing — the crash
    /// forensics path. A quiesce needs live workers; after a worker loss
    /// this returns whatever the sink held at the last completed barrier
    /// (plus all coordinator-side metrics and spans), which is exactly the
    /// black box a post-mortem wants.
    pub fn take_obs_unsynced(&mut self) -> Option<Obs> {
        self.obs.take().map(|s| s.obs)
    }

    /// Stream a delta-encoded telemetry record (see [`tin_obs::Telemetry`])
    /// every `every` interactions and at every sync barrier. Attaches a
    /// default observability sink if none is present.
    ///
    /// # Errors
    /// [`TinError::InvalidConfig`] if `every` is zero;
    /// [`TinError::WorkerLost`] if a shard worker died while attaching the
    /// implicit observability sink.
    pub fn with_telemetry(mut self, sink: Telemetry, every: usize) -> Result<Self> {
        if every == 0 {
            return Err(TinError::InvalidConfig(
                "telemetry interval must be positive".into(),
            ));
        }
        if self.obs.is_none() {
            self = self.with_observability(Obs::new())?;
        }
        self.telemetry = Some(Box::new(TelemetryState {
            sink,
            every,
            last_at: None,
        }));
        Ok(self)
    }

    /// Emit one telemetry record right now, tagged with `source` (the CLI
    /// uses `"final"` for the end-of-run record). Quiesces all shards
    /// first, so the record carries every worker's metrics up to the
    /// current stream position — an explicitly requested record is worth a
    /// barrier. Returns `false` without side effects when no telemetry
    /// stream is attached.
    ///
    /// # Errors
    /// Propagates sink write failures as [`TinError::Io`], and
    /// [`TinError::WorkerLost`] if a shard worker died during the quiesce.
    pub fn emit_telemetry(&mut self, source: &str) -> Result<bool> {
        if self.obs.is_none() || self.telemetry.is_none() {
            return Ok(false);
        }
        self.quiesce()?;
        self.emit_record(source)
    }

    /// Emit one record from the coordinator's current view, without forcing
    /// a barrier: worker metrics are as of the last sync. The internal
    /// interval and barrier emission points go through here — the hot path
    /// must not pay a quiesce per record.
    fn emit_record(&mut self, source: &str) -> Result<bool> {
        let Some(o) = self.obs.as_deref() else {
            return Ok(false);
        };
        let Some(t) = self.telemetry.as_deref_mut() else {
            return Ok(false);
        };
        let snap = o.obs.snapshot();
        t.sink.emit(self.processed as u64, source, &snap)?;
        t.last_at = Some(self.processed as u64);
        Ok(true)
    }

    /// Quiesce all shards at the current stream position and capture one
    /// shard-count-independent [`Checkpoint`] of the full engine state.
    ///
    /// # Errors
    /// [`TinError::WorkerLost`] if a shard worker died (and, when
    /// self-healing is enabled, the respawn budget is exhausted).
    pub fn checkpoint(&mut self) -> Result<Checkpoint> {
        self.with_heal(Self::checkpoint_attempt)
    }

    /// One capture attempt ([`Self::checkpoint`] owns the heal-and-retry
    /// loop; recovery itself captures through here).
    fn checkpoint_attempt(&mut self) -> Result<Checkpoint> {
        self.quiesce()?;
        let start = Instant::now();
        for shard in 0..self.num_shards {
            self.send_to(shard, ToShard::CaptureStates)?;
        }
        let mut states: Vec<(u32, Vec<u8>)> = Vec::with_capacity(self.num_vertices);
        for _ in 0..self.num_shards {
            match self.recv()? {
                FromShard::StatesCaptured(entries) => states.extend(entries),
                _ => unreachable!("quiesced shards answer queries in order"),
            }
        }
        // Each shard reports its owned subset; merge into global vertex
        // order so the file is independent of the shard count that wrote it.
        states.sort_unstable_by_key(|(v, _)| *v);
        debug_assert_eq!(states.len(), self.num_vertices);
        let capture = start.elapsed();
        self.busy_secs += capture.as_secs_f64();
        if let Some(o) = self.obs.as_deref_mut() {
            o.obs.metrics.observe_duration(o.ckpt_capture_ns, capture);
            o.obs.trace.record("checkpoint_capture", 0, start);
        }
        Ok(Checkpoint {
            policy: self.config.clone(),
            num_vertices: self.num_vertices,
            cursor: StreamCursor {
                processed: self.processed,
                last_time: self.last_time,
                total_quantity: self.total_quantity,
                newborn_quantity: self.newborn_quantity,
                peak_footprint_bytes: self.peak_footprint,
            },
            states,
        })
    }

    /// Capture the current state and save it into `store` (atomic write,
    /// retry, retention). Returns the checkpoint file's path.
    ///
    /// # Errors
    /// Propagates capture errors and the store's [`TinError::Io`] failures.
    pub fn checkpoint_to(&mut self, store: &mut CheckpointStore) -> Result<PathBuf> {
        let checkpoint = self.checkpoint()?;
        let path = store.save(&checkpoint)?;
        self.checkpoints_taken += 1;
        let stats = store.last_save_stats();
        if let Some(o) = self.obs.as_deref_mut() {
            o.record_save(stats);
        }
        Ok(path)
    }

    /// Rebuild a sharded engine from a durable [`Checkpoint`], repartitioned
    /// across `num_shards` workers — the checkpoint may have been captured
    /// by a sequential engine or by a sharded engine with a *different*
    /// shard count. Provenance state, stream position and flow counters all
    /// resume bit-identically; the caller then replays the interaction
    /// stream starting at interaction `checkpoint.cursor.processed`.
    ///
    /// # Errors
    /// Propagates factory errors for the embedded policy,
    /// [`TinError::CorruptCheckpoint`] for undecodable vertex payloads, and
    /// [`TinError::WorkerLost`] if a worker dies during recovery.
    pub fn resume_from(checkpoint: &Checkpoint, num_shards: usize) -> Result<Self> {
        let mut engine = Self::new(&checkpoint.policy, checkpoint.num_vertices, num_shards)?;
        engine.install_states(checkpoint)?;
        Ok(engine)
    }

    /// Restore `checkpoint` into this engine's (idle) worker pool: epoch
    /// sync, per-vertex state routing, counter seeding. Shared by
    /// [`Self::resume_from`] (fresh engine) and supervised recovery (fresh
    /// *pool*). The workers must hold no in-flight work.
    fn install_states(&mut self, checkpoint: &Checkpoint) -> Result<()> {
        // A probe tracker of the run's configuration decodes the type-erased
        // payloads the shard protocol moves around.
        let probe = build_tracker(&checkpoint.policy, checkpoint.num_vertices)?;
        let processed = checkpoint.cursor.processed;
        let now = checkpoint.cursor.last_time.unwrap_or(0.0);
        // Epoch sync strictly before any install (per-shard channels are
        // FIFO): window resets fired on the empty replicas are harmless, and
        // every epoch clock ends up at the checkpoint's position.
        self.sync_barrier(processed, now)?;
        for (v, bytes) in &checkpoint.states {
            let mut r = ByteReader::new(bytes, "states");
            let state = probe.decode_vertex_state(&mut r)?;
            r.expect_end()?;
            let vertex = VertexId::new(*v);
            let shard = shard_of(vertex, self.num_shards);
            self.send_to(shard, ToShard::Restore { vertex, state })?;
        }
        // Barrier: a second sync round-trip confirms every install was
        // consumed (or surfaces a worker death) before the engine is handed
        // back.
        self.sync_barrier(processed, now)?;
        self.processed = processed;
        self.open_start = processed;
        self.next_fold = processed;
        self.synced_through = processed;
        self.last_time = checkpoint.cursor.last_time;
        self.total_quantity = checkpoint.cursor.total_quantity;
        self.newborn_quantity = checkpoint.cursor.newborn_quantity;
        // `max`: on a fresh engine this seeds the checkpoint's peak; during
        // recovery the live peak (≥ the snapshot's) must survive.
        self.peak_footprint = self
            .peak_footprint
            .max(checkpoint.cursor.peak_footprint_bytes);
        Ok(())
    }

    /// One sync round-trip to every shard: advance epoch clocks to
    /// (`processed`, `now`) and wait for all acknowledgements.
    fn sync_barrier(&mut self, processed: usize, now: f64) -> Result<()> {
        for shard in 0..self.num_shards {
            self.send_to(shard, ToShard::Sync { processed, now })?;
        }
        self.collect_sync_acks()
    }

    /// Receive one sync acknowledgement per shard and fold any attached
    /// observability deltas into the main sink — sorted by shard id first,
    /// so the merged registry does not depend on acknowledgement arrival
    /// order.
    fn collect_sync_acks(&mut self) -> Result<()> {
        let mut deltas: Vec<(usize, Box<WorkerObsDelta>)> = Vec::new();
        for _ in 0..self.num_shards {
            match self.recv()? {
                FromShard::Synced { shard, obs } => {
                    if let Some(delta) = obs {
                        deltas.push((shard, delta));
                    }
                }
                _ => unreachable!("only sync acknowledgements are outstanding"),
            }
        }
        if let Some(o) = self.obs.as_deref_mut() {
            deltas.sort_by_key(|(shard, _)| *shard);
            // Skew: each delta covers exactly one barrier-to-barrier window,
            // so the per-shard `shard_batch_ns` sums are directly comparable
            // busy times. Computed before the deltas are folded in, and only
            // when every shard reported (a partial window would understate
            // the laggards).
            if deltas.len() == self.num_shards && self.num_shards > 1 {
                let batch_ns = o.worker_ids.batch_ns;
                let busy: Vec<u64> = deltas
                    .iter()
                    .map(|(_, d)| d.metrics.histogram_data(batch_ns).sum())
                    .collect();
                let max = busy.iter().copied().max().unwrap_or(0);
                if max > 0 {
                    let min = busy.iter().copied().min().unwrap_or(0);
                    o.obs.metrics.set_gauge(o.busy_spread, max - min);
                    let mean = busy.iter().sum::<u64>() / busy.len() as u64;
                    if let Some(ratio) = max.saturating_mul(1000).checked_div(mean) {
                        o.obs.metrics.set_gauge(o.imbalance, ratio);
                    }
                }
            }
            for (_, delta) in &deltas {
                o.obs.metrics.merge_prefix_from(&delta.metrics);
                o.obs.trace.extend_from(&delta.events);
                o.obs.hot_vertices.merge_from(&delta.touch);
                o.obs.hot_migrations.merge_from(&delta.migrated);
            }
        }
        // A barrier with instrumentation attached is a natural telemetry
        // emission point (the merged registry was just brought current) —
        // but only while the stream is advancing: the quiesce syncs issued
        // by post-run queries would otherwise re-emit the same position.
        let advanced = self
            .telemetry
            .as_deref()
            .is_some_and(|t| t.last_at != Some(self.processed as u64));
        if !deltas.is_empty() && advanced {
            self.emit_record("barrier")?;
        }
        Ok(())
    }

    /// The number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The stable key of the policy this engine runs.
    pub fn policy_key(&self) -> &str {
        &self.policy_key
    }

    /// Test hook: make worker `shard` panic on its next message, exercising
    /// the real failure path (unwind, sentinel broadcast, engine poisoning).
    /// Used by the `failure_injection` integration tests.
    ///
    /// # Errors
    /// [`TinError::WorkerLost`] if the engine is already poisoned or the
    /// worker is already gone.
    pub fn inject_worker_panic(&mut self, shard: usize) -> Result<()> {
        self.check_poisoned()?;
        self.send_to(shard, ToShard::InjectPanic)
    }

    /// Validate and enqueue one interaction (identical validation and error
    /// surface to [`tin_core::engine::ProvenanceEngine::process`]). The interaction executes
    /// asynchronously; queries and reports synchronise first.
    ///
    /// # Errors
    /// Same as [`tin_core::engine::ProvenanceEngine::process`]: invalid quantity/timestamp,
    /// self-loop, unknown vertex, or time going backwards — plus
    /// [`TinError::WorkerLost`] if a shard worker died.
    pub fn process(&mut self, r: &Interaction) -> Result<()> {
        validate_stream_step(r, self.processed, self.num_vertices, self.last_time)?;
        // The interaction enters the replay buffer *before* it is applied,
        // so a successful heal may already have re-applied it — the stream
        // position tells the two cases apart.
        let target = self.processed + 1;
        loop {
            match self.process_attempt(r) {
                Ok(()) => break,
                Err(e @ TinError::WorkerLost { .. }) if self.recovery.is_some() => {
                    self.heal_within_budget(e)?;
                    if self.processed >= target {
                        break;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        if let Some(t) = self.telemetry.as_deref() {
            // Worker metrics in this record are as of the last barrier —
            // the coordinator does not force a quiesce just to emit.
            if self.processed.is_multiple_of(t.every) {
                self.emit_record("interval")?;
            }
        }
        Ok(())
    }

    /// One attempt at processing `r` (validation already done by
    /// [`Self::process`], which owns the heal-and-retry loop).
    fn process_attempt(&mut self, r: &Interaction) -> Result<()> {
        self.check_poisoned()?;
        // Fail fast: fold completions already delivered — and notice worker
        // deaths — without blocking, so a death surfaces on the next call
        // rather than at the final report.
        self.drain_completions()?;
        if self.recovery.is_some() {
            self.refresh_snapshot_if_due()?;
            self.replay_buffer.push_back(*r);
        }
        self.apply_interaction(r)?;
        if let Some((_, every)) = &self.durable {
            let every = *every;
            if self.processed.is_multiple_of(every) {
                let checkpoint = self.checkpoint_attempt()?;
                let (store, _) = self.durable.as_mut().expect("durable checked above");
                store.save(&checkpoint)?;
                let stats = store.last_save_stats();
                self.checkpoints_taken += 1;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.record_save(stats);
                }
                // The restore point must never lag the newest durable file:
                // an older in-memory snapshot would need replay-buffer
                // entries this save just made safe to drop.
                self.adopt_snapshot(checkpoint);
            }
        }
        Ok(())
    }

    /// Flow accounting + wavefront scheduling for one (validated)
    /// interaction — the write path shared by live processing and recovery
    /// replay (replay must not re-enter the buffer/durable bookkeeping of
    /// [`Self::process_attempt`]).
    fn apply_interaction(&mut self, r: &Interaction) -> Result<()> {
        let start = Instant::now();
        self.total_quantity += r.qty;
        if !self.scheduler.offer(r, self.processed) {
            self.dispatch_open_batch()?;
            let joined = self.scheduler.offer(r, self.processed);
            debug_assert!(joined, "a fresh wavefront always accepts");
        }
        if self.open_batch.is_empty() {
            self.open_start = self.processed;
        }
        self.open_batch.push(*r);
        self.last_time = Some(r.time.0);
        self.processed += 1;
        self.busy_secs += start.elapsed().as_secs_f64();
        Ok(())
    }

    /// Process every interaction of a slice, stopping at the first error.
    ///
    /// # Errors
    /// See [`Self::process`].
    pub fn process_all(&mut self, interactions: &[Interaction]) -> Result<()> {
        for r in interactions {
            self.process(r)?;
        }
        Ok(())
    }

    /// Drain an [`InteractionSource`], returning the final report.
    ///
    /// # Errors
    /// Propagates source errors and validation errors (see [`Self::process`]).
    pub fn run(&mut self, source: &mut dyn InteractionSource) -> Result<EngineReport> {
        while let Some(r) = source.next_interaction()? {
            self.process(&r)?;
        }
        self.report()
    }

    /// Current provenance of the quantity buffered at `v` (synchronises all
    /// in-flight work first; bit-identical to the sequential engine).
    ///
    /// # Errors
    /// [`TinError::WorkerLost`] if a shard worker died.
    pub fn origins(&mut self, v: VertexId) -> Result<OriginSet> {
        self.with_heal(|e| e.origins_attempt(v))
    }

    fn origins_attempt(&mut self, v: VertexId) -> Result<OriginSet> {
        self.quiesce()?;
        let shard = shard_of(v, self.num_shards);
        self.send_to(shard, ToShard::QueryOrigins(v))?;
        match self.recv()? {
            FromShard::Origins(set) => Ok(set),
            _ => unreachable!("quiesced shard answers queries in order"),
        }
    }

    /// Current buffered quantity `|B_v|` (synchronises first).
    ///
    /// # Errors
    /// [`TinError::WorkerLost`] if a shard worker died.
    pub fn buffered(&mut self, v: VertexId) -> Result<Quantity> {
        self.with_heal(|e| e.buffered_attempt(v))
    }

    fn buffered_attempt(&mut self, v: VertexId) -> Result<Quantity> {
        self.quiesce()?;
        let shard = shard_of(v, self.num_shards);
        self.send_to(shard, ToShard::QueryBuffered(v))?;
        match self.recv()? {
            FromShard::Buffered(q) => Ok(q),
            _ => unreachable!("quiesced shard answers queries in order"),
        }
    }

    /// Buffered quantities of *every* vertex, indexed by vertex id, in
    /// O(shards) messages — use this instead of `num_vertices` calls to
    /// [`Self::buffered`] when scanning the whole graph (each of those is a
    /// blocking channel round-trip).
    ///
    /// # Errors
    /// [`TinError::WorkerLost`] if a shard worker died.
    pub fn buffered_all(&mut self) -> Result<Vec<Quantity>> {
        self.with_heal(Self::buffered_all_attempt)
    }

    fn buffered_all_attempt(&mut self) -> Result<Vec<Quantity>> {
        self.quiesce()?;
        for shard in 0..self.num_shards {
            self.send_to(shard, ToShard::QueryBufferedAll)?;
        }
        let mut out = vec![0.0; self.num_vertices];
        for _ in 0..self.num_shards {
            match self.recv()? {
                FromShard::BufferedAll(entries) => {
                    for (raw, q) in entries {
                        out[raw as usize] = q;
                    }
                }
                _ => unreachable!("quiesced shards answer queries in order"),
            }
        }
        Ok(out)
    }

    /// The report for everything processed so far (synchronises first).
    /// Flow totals are bit-identical to [`tin_core::engine::ProvenanceEngine::report`];
    /// footprint figures are summed across shards and the peak is the
    /// synchronized global peak (see the module docs).
    ///
    /// # Errors
    /// [`TinError::WorkerLost`] if a shard worker died.
    pub fn report(&mut self) -> Result<EngineReport> {
        self.with_heal(Self::report_attempt)
    }

    fn report_attempt(&mut self) -> Result<EngineReport> {
        // `quiesce` accounts for its own duration; time only the footprint
        // query phase here, or the quiesce would be counted twice.
        self.quiesce()?;
        let start = Instant::now();
        let mut footprint = FootprintBreakdown::default();
        for shard in 0..self.num_shards {
            self.send_to(shard, ToShard::QueryFootprint)?;
        }
        for _ in 0..self.num_shards {
            match self.recv()? {
                FromShard::Footprint { shard, breakdown } => {
                    footprint.entries_bytes += breakdown.entries_bytes;
                    footprint.paths_bytes += breakdown.paths_bytes;
                    footprint.index_bytes += breakdown.index_bytes;
                    self.latest_footprint[shard] = breakdown.total();
                }
                _ => unreachable!("quiesced shards answer queries in order"),
            }
        }
        // All shards are quiesced at the same stream position, so the sum of
        // these simultaneous samples IS the current global footprint; fold
        // it into the running peak.
        let current: usize = self.latest_footprint.iter().sum();
        self.peak_footprint = self.peak_footprint.max(current);
        if let Some(o) = self.obs.as_deref_mut() {
            o.obs.metrics.set_gauge(o.footprint_bytes, current as u64);
        }
        self.busy_secs += start.elapsed().as_secs_f64();
        Ok(EngineReport {
            policy: self.policy_key.clone(),
            interactions: self.processed,
            runtime_secs: self.busy_secs,
            total_quantity: self.total_quantity,
            newborn_quantity: self.newborn_quantity,
            relayed_quantity: self.total_quantity - self.newborn_quantity,
            peak_footprint_bytes: self.peak_footprint,
            footprint,
            checkpoints_taken: self.checkpoints_taken,
        })
    }

    /// Dispatch the open wavefront (if any) and block until every shard has
    /// finished every wavefront and advanced its epoch clock to the current
    /// stream position.
    fn quiesce(&mut self) -> Result<()> {
        self.check_poisoned()?;
        if self.synced_through == self.processed {
            debug_assert!(self.open_batch.is_empty() && self.in_flight.is_empty());
            return Ok(());
        }
        let start = Instant::now();
        if !self.open_batch.is_empty() {
            self.dispatch_open_batch()?;
        }
        while self.next_fold < self.processed {
            self.handle_completion()?;
        }
        let now = self.last_time.unwrap_or(0.0);
        for shard in 0..self.num_shards {
            self.send_to(
                shard,
                ToShard::Sync {
                    processed: self.processed,
                    now,
                },
            )?;
        }
        self.collect_sync_acks()?;
        self.synced_through = self.processed;
        let elapsed = start.elapsed();
        self.busy_secs += elapsed.as_secs_f64();
        if let Some(o) = self.obs.as_deref_mut() {
            o.obs.metrics.observe_duration(o.barrier_ns, elapsed);
            o.obs.trace.record("quiesce", 0, start);
        }
        Ok(())
    }

    /// Partition the open wavefront across shards and send the commands.
    fn dispatch_open_batch(&mut self) -> Result<()> {
        let (start, len) = self.scheduler.begin_batch();
        debug_assert_eq!(start, self.open_start);
        debug_assert_eq!(len, self.open_batch.len());
        if len == 0 {
            return Ok(());
        }
        let start_time = self.open_batch[0].time.value();
        let dispatch_started = self.obs.is_some().then(Instant::now);
        if let Some(o) = self.obs.as_deref_mut() {
            o.obs.metrics.observe(o.wavefront_size, len as u64);
            o.obs.metrics.inc(o.wavefronts);
        }

        let mut cmds: Vec<BatchCmd> = (0..self.num_shards)
            .map(|_| BatchCmd {
                start,
                start_time,
                locals: Vec::new(),
                exports: Vec::new(),
                imports: Vec::new(),
                returns_expected: 0,
            })
            .collect();
        for (off, r) in self.open_batch.drain(..).enumerate() {
            let off = off as u32;
            let src_shard = shard_of(r.src, self.num_shards);
            let dst_shard = shard_of(r.dst, self.num_shards);
            if src_shard == dst_shard {
                cmds[src_shard].locals.push((off, r));
            } else {
                cmds[src_shard].exports.push((r.src, dst_shard));
                cmds[src_shard].returns_expected += 1;
                cmds[dst_shard].imports.push((off, r));
            }
        }

        let mut involved = 0;
        for (shard, cmd) in cmds.into_iter().enumerate() {
            if cmd.locals.is_empty() && cmd.exports.is_empty() && cmd.imports.is_empty() {
                continue;
            }
            involved += 1;
            self.send_to(shard, ToShard::Batch(Box::new(cmd)))?;
        }
        self.in_flight.insert(
            start,
            PendingBatch {
                len,
                involved_shards: involved,
                done_shards: 0,
                newborn: vec![0.0; len],
            },
        );
        if let (Some(started), Some(o)) = (dispatch_started, self.obs.as_deref_mut()) {
            o.obs.trace.record("wavefront_dispatch", 0, started);
            o.obs
                .metrics
                .set_gauge(o.inflight, self.in_flight.len() as u64);
        }
        // Backpressure: bound the number of wavefronts in flight.
        while self.in_flight.len() > MAX_IN_FLIGHT {
            self.handle_completion()?;
        }
        Ok(())
    }

    /// Block for one shard completion and fold finished wavefronts — in
    /// stream order — into the flow totals.
    fn handle_completion(&mut self) -> Result<()> {
        match self.recv()? {
            FromShard::BatchDone {
                start,
                shard,
                newborn,
                footprint,
            } => self.fold_batch_done(start, shard, newborn, footprint),
            _ => unreachable!("only batch completions are outstanding here"),
        }
        Ok(())
    }

    /// Fold already-delivered completion messages without blocking.
    fn drain_completions(&mut self) -> Result<()> {
        loop {
            match self.from_shards.try_recv() {
                Ok(FromShard::BatchDone {
                    start,
                    shard,
                    newborn,
                    footprint,
                }) => self.fold_batch_done(start, shard, newborn, footprint),
                Ok(FromShard::WorkerFailed { shard }) => return Err(self.poison(Some(shard))),
                Ok(_) => unreachable!("only batch completions are outstanding here"),
                Err(TryRecvError::Empty) => return Ok(()),
                Err(TryRecvError::Disconnected) => return Err(self.poison(None)),
            }
        }
    }

    fn fold_batch_done(
        &mut self,
        start: usize,
        shard: usize,
        newborn: Vec<(u32, f64)>,
        footprint: Option<usize>,
    ) {
        if let Some(total) = footprint {
            // The shard took a fresh full-footprint sample after this batch:
            // fold the sum of every shard's latest sample into the global
            // peak. Samples from different shards are not perfectly
            // simultaneous, but each is the shard's true footprint at a
            // recent stream position — unlike summing per-shard *peaks*,
            // which combines maxima from unrelated moments and can only
            // overestimate.
            self.latest_footprint[shard] = total;
            let current: usize = self.latest_footprint.iter().sum();
            self.peak_footprint = self.peak_footprint.max(current);
            if let Some(o) = self.obs.as_deref_mut() {
                o.obs.metrics.set_gauge(o.footprint_bytes, current as u64);
            }
        }
        let batch = self
            .in_flight
            .get_mut(&start)
            .expect("completion for an in-flight wavefront");
        for (off, q) in newborn {
            batch.newborn[off as usize] = q;
        }
        batch.done_shards += 1;
        // Fold completed wavefronts strictly in stream order so the newborn
        // accumulation order — and therefore the float result — matches the
        // sequential engine exactly.
        while let Some(entry) = self.in_flight.first_entry() {
            if entry.get().done_shards < entry.get().involved_shards {
                break;
            }
            let (start, batch) = entry.remove_entry();
            debug_assert_eq!(start, self.next_fold);
            for q in &batch.newborn {
                self.newborn_quantity += *q;
            }
            self.next_fold = start + batch.len;
        }
    }

    /// Run `op`, healing worker losses and retrying until it succeeds, it
    /// fails for a non-worker reason, or `heal_within_budget` exhausts the
    /// respawn budget (which re-poisons and surfaces the loss). Wraps every
    /// idempotent public operation; `process` has its own loop because a
    /// heal may already re-apply the in-flight interaction.
    fn with_heal<T>(&mut self, mut op: impl FnMut(&mut Self) -> Result<T>) -> Result<T> {
        loop {
            match op(self) {
                Err(e @ TinError::WorkerLost { .. }) if self.recovery.is_some() => {
                    self.heal_within_budget(e)?;
                }
                other => return other,
            }
        }
    }

    /// Supervised recovery after a worker loss: respawn the pool, restore
    /// the snapshot, replay the suffix — consuming one unit of
    /// [`RecoveryPolicy::max_worker_restarts`] per attempt, with
    /// exponential backoff between consecutive attempts. On success the
    /// engine continues as if nothing happened; once the budget is
    /// exhausted (or recovery fails for a non-worker reason) the engine is
    /// re-poisoned and `cause` surfaces — the pre-existing fail-fast path.
    fn heal_within_budget(&mut self, cause: TinError) -> Result<()> {
        let start = Instant::now();
        loop {
            let Some(policy) = self.recovery.clone() else {
                return Err(cause);
            };
            if self.restarts_used >= policy.max_worker_restarts {
                self.poisoned = Some(cause.clone());
                self.recovery_stats.total_recovery_secs += start.elapsed().as_secs_f64();
                return Err(cause);
            }
            if self.restarts_used > 0 {
                // Exponential backoff: base × 2^(consecutive restarts), the
                // first respawn is immediate.
                let exp = u32::try_from(self.restarts_used.min(16)).expect("≤ 16");
                std::thread::sleep(policy.restart_backoff.saturating_mul(1u32 << exp));
            }
            self.restarts_used += 1;
            self.recovery_stats.workers_respawned += self.num_shards;
            if let Some(o) = self.obs.as_deref_mut() {
                o.obs.metrics.add(o.respawns, self.num_shards as u64);
            }
            match self.heal_attempt() {
                Ok(replayed) => {
                    let elapsed = start.elapsed();
                    self.recovery_stats.recoveries += 1;
                    self.recovery_stats.replayed_interactions += replayed;
                    self.recovery_stats.last_rto_secs = elapsed.as_secs_f64();
                    self.recovery_stats.total_recovery_secs += elapsed.as_secs_f64();
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.obs.metrics.inc(o.recoveries);
                        o.obs.metrics.add(o.replayed, replayed as u64);
                        o.obs.metrics.observe_duration(o.recovery_ns, elapsed);
                        o.obs.trace.record("recovery", 0, start);
                    }
                    return Ok(());
                }
                // A worker died (or hung) *during* recovery: loop, drawing
                // another unit of budget.
                Err(TinError::WorkerLost { .. }) => continue,
                Err(e) => {
                    self.poisoned = Some(e.clone());
                    self.recovery_stats.total_recovery_secs += start.elapsed().as_secs_f64();
                    return Err(e);
                }
            }
        }
    }

    /// One pool-replacement attempt: tear down the wounded generation,
    /// spawn a fresh one, restore the recovery snapshot and replay the
    /// buffered suffix. Returns the number of interactions replayed.
    fn heal_attempt(&mut self) -> Result<usize> {
        // Survivors of a panicked pool saw the sentinel broadcast and are
        // exiting; a *hung* pool never got one, so nudge every worker with
        // a best-effort Shutdown (a stalled worker drains it when it wakes).
        for tx in &self.to_shards {
            let _ = tx.send(ToShard::Shutdown);
        }
        // Replace channels and handles wholesale. The old handles are
        // detached, not joined — joining a genuinely hung thread would
        // block recovery forever — and the old generation's `main_tx` now
        // points at a dropped receiver, so its stragglers (including the
        // second `WorkerFailed` of a double kill) can never reach us.
        let (to_shards, from_shards, handles) =
            spawn_pool(&self.config, self.num_vertices, self.num_shards);
        self.to_shards = to_shards;
        self.from_shards = from_shards;
        self.handles = handles;
        // Coordinator state tied to the dead pool: in-flight wavefronts are
        // lost (their interactions sit in the replay buffer), the open
        // batch is re-cut by the replay, footprint samples restart.
        self.poisoned = None;
        self.scheduler =
            WavefrontScheduler::new(self.num_vertices, EpochRule::for_policy(&self.config));
        self.open_batch.clear();
        self.in_flight.clear();
        self.latest_footprint = vec![0; self.num_shards];
        // Re-arm per-worker configuration the wounded pool carried.
        if let Some(every) = self.sample_interval {
            for shard in 0..self.num_shards {
                self.send_to(shard, ToShard::SetSampleInterval(every))?;
            }
        }
        if let Some(epoch) = self.obs.as_deref().map(|o| o.obs.trace.epoch()) {
            for shard in 0..self.num_shards {
                self.send_to(shard, ToShard::EnableObs { epoch })?;
            }
        }
        if self.respawn_panics > 0 {
            self.respawn_panics -= 1;
            self.send_to(0, ToShard::InjectPanic)?;
        }
        match self.recovery_snapshot.take() {
            Some(snapshot) => {
                let restored = self.install_states(&snapshot);
                self.recovery_snapshot = Some(snapshot);
                restored?;
            }
            None => {
                // No snapshot was ever adopted (`with_self_healing` seeds
                // one, so this is defensive): the replay buffer covers the
                // whole prefix — rewind the stream counters to zero and let
                // the replay rebuild everything on the fresh trackers.
                self.processed = 0;
                self.open_start = 0;
                self.next_fold = 0;
                self.synced_through = 0;
                self.last_time = None;
                self.total_quantity = 0.0;
                self.newborn_quantity = 0.0;
            }
        }
        // Deterministic replay through the normal scheduling path, in
        // strict stream order. The wavefront cuts may differ from the
        // original run's, but conflict-free wavefronts commute bit-for-bit
        // and newborn folding stays in stream order, so results match an
        // undisturbed run exactly.
        let replay: Vec<Interaction> = self.replay_buffer.iter().copied().collect();
        for r in &replay {
            self.apply_interaction(r)?;
        }
        Ok(replay.len())
    }

    /// Capture a fresh in-memory recovery snapshot once the replay buffer
    /// hits its bound ([`RecoveryPolicy::snapshot_every`]) — the cost that
    /// keeps both replay length and buffer memory bounded.
    fn refresh_snapshot_if_due(&mut self) -> Result<()> {
        let Some(policy) = &self.recovery else {
            return Ok(());
        };
        if self.recovery_snapshot.is_some() && self.replay_buffer.len() < policy.snapshot_every {
            return Ok(());
        }
        let snapshot = self.checkpoint_attempt()?;
        self.adopt_snapshot(snapshot);
        Ok(())
    }

    /// Install `snapshot` (captured at the current stream position) as the
    /// recovery restore point and drop the replay prefix it covers.
    fn adopt_snapshot(&mut self, snapshot: Checkpoint) {
        if self.recovery.is_none() {
            return;
        }
        debug_assert_eq!(snapshot.cursor.processed, self.processed);
        self.replay_buffer.clear();
        self.recovery_snapshot = Some(snapshot);
    }

    /// The poisoned-engine check every public operation performs first.
    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Record the first worker failure and return the error for it. Later
    /// failures keep the first (root-cause) shard id.
    fn poison(&mut self, shard: Option<usize>) -> TinError {
        if self.poisoned.is_none() {
            self.poisoned = Some(TinError::WorkerLost { shard });
        }
        self.poisoned.clone().expect("just set")
    }

    fn send_to(&mut self, shard: usize, msg: ToShard) -> Result<()> {
        if self.to_shards[shard].send(msg).is_err() {
            // The worker's receiver is gone: it died. Its sentinel
            // notification may still be queued; poison now so the caller
            // fails fast either way.
            return Err(self.poison(Some(shard)));
        }
        Ok(())
    }

    fn recv(&mut self) -> Result<FromShard> {
        let received: std::result::Result<FromShard, RecvTimeoutError> =
            match self.recovery.as_ref().and_then(|p| p.hang_timeout) {
                // Hang detection: a worker that exceeds the budget is
                // treated exactly like a dead one — recovery replaces the
                // whole pool, stalled thread included.
                Some(limit) => self.from_shards.recv_timeout(limit),
                None => self
                    .from_shards
                    .recv()
                    .map_err(|_| RecvTimeoutError::Disconnected),
            };
        match received {
            Ok(FromShard::WorkerFailed { shard }) => Err(self.poison(Some(shard))),
            Ok(msg) => Ok(msg),
            Err(_) => Err(self.poison(None)),
        }
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // The open (undispatched) wavefront is simply abandoned: no worker
        // ever waits on undispatched work, and already-dispatched batches
        // drain on their own because every involved shard received its
        // command at dispatch time. Workers see `Shutdown` after the batches
        // queued ahead of it (channels are FIFO per sender) or defer it to
        // their backlog if it arrives mid-wavefront. A dead worker's peers
        // were woken by its sentinel broadcast and exit on their own.
        for tx in &self.to_shards {
            // Ignore send failures: a worker that already exited (panic)
            // must not abort the drop.
            let _ = tx.send(ToShard::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("policy", &self.policy_key)
            .field("num_vertices", &self.num_vertices)
            .field("num_shards", &self.num_shards)
            .field("processed", &self.processed)
            .field("poisoned", &self.poisoned.is_some())
            .finish()
    }
}

/// Algorithm 1 flow accounting for one interaction, using the same shared
/// arithmetic as the sequential engine
/// ([`tin_core::engine::newborn_quantity`]).
fn process_one(tracker: &mut dyn ProvenanceTracker, r: &Interaction) -> f64 {
    let newborn = newborn_quantity(tracker.buffered(r.src), r.qty);
    tracker.process(r);
    newborn
}

/// Spawn one generation of `num_shards` worker threads wired to fresh
/// channels. Shared by construction and by supervised recovery, which
/// replaces a wounded pool wholesale — fresh channels guarantee no message
/// from an older generation can ever reach the new receiver.
fn spawn_pool(
    config: &PolicyConfig,
    num_vertices: usize,
    num_shards: usize,
) -> (
    Vec<Sender<ToShard>>,
    Receiver<FromShard>,
    Vec<JoinHandle<()>>,
) {
    let (to_main, from_shards) = channel::<FromShard>();
    let mut to_shards = Vec::with_capacity(num_shards);
    let mut receivers = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        let (tx, rx) = channel::<ToShard>();
        to_shards.push(tx);
        receivers.push(rx);
    }
    let mut handles = Vec::with_capacity(num_shards);
    for (id, rx) in receivers.into_iter().enumerate() {
        let peers: Vec<Sender<ToShard>> = to_shards.clone();
        let main_tx = to_main.clone();
        let config = config.clone();
        let handle = std::thread::Builder::new()
            .name(format!("tin-shard-{id}"))
            .spawn(move || shard_worker(id, &config, num_vertices, &rx, &peers, &main_tx))
            .expect("spawning a shard worker thread");
        handles.push(handle);
    }
    (to_shards, from_shards, handles)
}

/// The shard worker: one tracker replica plus the batch protocol.
fn shard_worker(
    shard_id: usize,
    config: &PolicyConfig,
    num_vertices: usize,
    rx: &Receiver<ToShard>,
    peers: &[Sender<ToShard>],
    main_tx: &Sender<FromShard>,
) {
    // Armed before anything that can unwind: a panic anywhere below (the
    // tracker factory, `process`, a poisoned downcast, the injected test
    // panic) broadcasts the failure instead of silently stranding peers.
    let mut sentinel = PanicSentinel::new(shard_id, peers.to_vec(), main_tx.clone());
    let mut tracker =
        build_tracker(config, num_vertices).expect("configuration validated by ShardedEngine::new");
    // Arm the same footprint-spike monitor the sequential engine arms, so
    // shard-local peak accounting catches spikes between samples and — just
    // as importantly — the sequential-vs-sharded scaling benchmark compares
    // two equally instrumented trackers.
    tracker.arm_spike_monitor(tin_core::engine::ProvenanceEngine::SPIKE_FRACTION);
    // Exported states that arrived before the batch that consumes them
    // (peers may run several wavefronts ahead). Per-vertex FIFO keeps
    // multiple in-flight generations of the same vertex ordered.
    let mut stash: HashMap<u32, VecDeque<ShardVertexState>> = HashMap::new();
    // Non-`State` messages (pipelined later wavefronts, the shutdown) that
    // arrived while a batch was blocked waiting for peer states; replayed in
    // arrival order before reading the channel again.
    let mut backlog: VecDeque<ToShard> = VecDeque::new();
    let mut processed_local = 0usize;
    let mut sample_interval = SHARD_SAMPLE_INTERVAL;
    let mut next_sample = sample_interval;
    // Private observability state, created on `EnableObs`: the worker
    // accumulates locally (no cross-thread synchronisation on the batch
    // path) and ships a delta with every sync acknowledgement.
    let mut obs: Option<WorkerObs> = None;

    loop {
        let msg = match backlog.pop_front() {
            Some(m) => m,
            None => match rx.recv() {
                Ok(m) => m,
                Err(_) => {
                    // The main thread dropped the engine without a shutdown
                    // message (and no peer holds work for us): clean exit.
                    sentinel.disarm();
                    return;
                }
            },
        };
        match msg {
            ToShard::Shutdown => {
                sentinel.disarm();
                return;
            }
            ToShard::PeerFailed => {
                // A peer died. The engine is poisoned and every live worker
                // received the same broadcast, so nobody waits on us: exit
                // without re-broadcasting.
                sentinel.disarm();
                return;
            }
            ToShard::InjectPanic => {
                panic!("injected worker panic (tin-shard test hook)");
            }
            ToShard::InjectStall(millis) => {
                std::thread::sleep(Duration::from_millis(millis));
            }
            ToShard::Sync { processed, now } => {
                tracker.sync_epoch(processed, now);
                // Ship accumulated metrics and spans, then reset: counters
                // and histograms fold additively on the main side, so each
                // delta must cover exactly one barrier-to-barrier window.
                let delta = obs.as_mut().map(|o| {
                    let d = Box::new(WorkerObsDelta {
                        metrics: o.metrics.clone(),
                        events: o.trace.events().to_vec(),
                        touch: o.touch.clone(),
                        migrated: o.migrated.clone(),
                    });
                    o.metrics.reset_values();
                    o.trace.clear();
                    o.touch.reset();
                    o.migrated.reset();
                    d
                });
                let _ = main_tx.send(FromShard::Synced {
                    shard: shard_id,
                    obs: delta,
                });
            }
            ToShard::EnableObs { epoch } => {
                let mut metrics = Registry::new();
                let ids = register_worker_metrics(&mut metrics);
                obs = Some(WorkerObs {
                    ids,
                    metrics,
                    trace: Recorder::with_epoch(WORKER_TRACE_CAPACITY, epoch),
                    touch: SpaceSaving::new(tin_obs::DEFAULT_TOPK_CAPACITY),
                    migrated: SpaceSaving::new(tin_obs::DEFAULT_TOPK_CAPACITY),
                });
            }
            ToShard::SetSampleInterval(every) => {
                sample_interval = every;
                next_sample = processed_local + every;
            }
            ToShard::QueryOrigins(v) => {
                let _ = main_tx.send(FromShard::Origins(tracker.origins(v)));
            }
            ToShard::QueryBuffered(v) => {
                let _ = main_tx.send(FromShard::Buffered(tracker.buffered(v)));
            }
            ToShard::QueryBufferedAll => {
                let entries: Vec<(u32, f64)> = (0..num_vertices)
                    .map(VertexId::from)
                    .filter(|v| shard_of(*v, peers.len()) == shard_id)
                    .map(|v| (v.raw(), tracker.buffered(v)))
                    .collect();
                let _ = main_tx.send(FromShard::BufferedAll(entries));
            }
            ToShard::CaptureStates => {
                let entries: Vec<(u32, Vec<u8>)> = (0..num_vertices)
                    .map(VertexId::from)
                    .filter(|v| shard_of(*v, peers.len()) == shard_id)
                    .map(|v| {
                        let mut bytes = Vec::new();
                        let supported = tracker.encode_vertex_state(v, &mut bytes);
                        assert!(supported, "factory trackers support durable checkpoints");
                        (v.raw(), bytes)
                    })
                    .collect();
                let _ = main_tx.send(FromShard::StatesCaptured(entries));
            }
            ToShard::Restore { vertex, state } => {
                tracker.put_vertex_state(vertex, state);
            }
            ToShard::QueryFootprint => {
                // A full sample: re-baseline the spike monitor like the
                // sequential engine does on its periodic samples.
                let breakdown = tracker.footprint();
                tracker.note_footprint_sampled();
                let _ = main_tx.send(FromShard::Footprint {
                    shard: shard_id,
                    breakdown,
                });
            }
            ToShard::State(sm) => {
                debug_assert!(!sm.coming_home, "returns only arrive mid-batch");
                stash
                    .entry(sm.vertex.raw())
                    .or_default()
                    .push_back(sm.state);
            }
            ToShard::Batch(cmd) => {
                let start = cmd.start;
                let (n_locals, n_imports, n_exports) =
                    (cmd.locals.len(), cmd.imports.len(), cmd.exports.len());
                let batch_started = obs.is_some().then(Instant::now);
                let newborn = match run_batch(
                    shard_id,
                    tracker.as_mut(),
                    *cmd,
                    rx,
                    peers,
                    &mut stash,
                    &mut backlog,
                    &mut processed_local,
                    obs.as_mut(),
                ) {
                    Ok(newborn) => newborn,
                    Err(BatchAbort::PeerLost) | Err(BatchAbort::MainLost) => {
                        // The wavefront can never complete. Whoever died
                        // already broadcast the failure (or the main thread
                        // is gone); exit without re-broadcasting.
                        sentinel.disarm();
                        return;
                    }
                };
                // Read the spike flag unconditionally so the monitor
                // re-baselines even on periodic-sample batches; attach the
                // full sample to the completion so the main thread folds it
                // into the synchronized global peak.
                let spiked = tracker.take_footprint_spike();
                let mut sample = None;
                if spiked || processed_local >= next_sample {
                    next_sample = processed_local + sample_interval;
                    sample = Some(tracker.footprint().total());
                    if !spiked {
                        tracker.note_footprint_sampled();
                    }
                }
                if let (Some(o), Some(started)) = (obs.as_mut(), batch_started) {
                    o.metrics.add(o.ids.locals, n_locals as u64);
                    o.metrics.add(o.ids.imports, n_imports as u64);
                    // Each export ships one state out; each import ships
                    // the borrowed state home after processing.
                    o.metrics
                        .add(o.ids.migrations, (n_exports + n_imports) as u64);
                    if spiked {
                        o.metrics.inc(o.ids.spikes);
                    }
                    o.metrics
                        .observe_duration(o.ids.batch_ns, started.elapsed());
                    o.metrics
                        .set_gauge(o.ids.backlog_depth, backlog.len() as u64);
                    o.metrics.set_gauge(
                        o.ids.stash_depth,
                        stash.values().map(VecDeque::len).sum::<usize>() as u64,
                    );
                    o.trace.record("shard_batch", shard_id as u32 + 1, started);
                }
                if main_tx
                    .send(FromShard::BatchDone {
                        start,
                        shard: shard_id,
                        newborn,
                        footprint: sample,
                    })
                    .is_err()
                {
                    sentinel.disarm();
                    return;
                }
            }
        }
    }
}

/// Execute one wavefront on one shard (see the module docs for the
/// deadlock-freedom argument: all exports are sent unconditionally before
/// any shard waits, and returns depend only on exports). Returns the
/// per-offset newborn quantities, or [`BatchAbort`] if a peer or the main
/// thread died mid-wavefront.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    shard_id: usize,
    tracker: &mut dyn ProvenanceTracker,
    cmd: BatchCmd,
    rx: &Receiver<ToShard>,
    peers: &[Sender<ToShard>],
    stash: &mut HashMap<u32, VecDeque<ShardVertexState>>,
    backlog: &mut VecDeque<ToShard>,
    processed_local: &mut usize,
    mut obs: Option<&mut WorkerObs>,
) -> std::result::Result<Vec<(u32, f64)>, BatchAbort> {
    // 1. Epoch sync *before* any state is read, exported or processed.
    tracker.sync_epoch(cmd.start, cmd.start_time);

    // 2. Ship lent vertex states (peers may already be waiting on them).
    for (v, to) in &cmd.exports {
        let state = tracker
            .take_vertex_state(*v)
            .expect("factory trackers support sharded execution");
        if let Some(o) = obs.as_deref_mut() {
            o.migrated.offer(v.raw(), state.footprint_bytes() as u64);
        }
        if peers[*to]
            .send(ToShard::State(StateMsg {
                vertex: *v,
                state,
                coming_home: false,
            }))
            .is_err()
        {
            return Err(BatchAbort::PeerLost);
        }
    }

    let mut newborn = Vec::with_capacity(cmd.locals.len() + cmd.imports.len());

    // 3. Local interactions: plain sequential processing.
    for (off, r) in &cmd.locals {
        newborn.push((*off, process_one(tracker, r)));
        *processed_local += 1;
        if let Some(o) = obs.as_deref_mut() {
            o.touch.offer(r.src.raw(), 1);
            o.touch.offer(r.dst.raw(), 1);
        }
    }

    // 4. Cross-shard interactions: install the source state, process with
    // the native tracker code, ship the state home. States may arrive in
    // any order (and early, via the stash). A BTreeMap keyed by source
    // vertex keeps the stash-drain order deterministic (the outcome is
    // order-independent — wavefront interactions are pairwise disjoint —
    // but deterministic message order keeps replays reproducible).
    let mut pending: BTreeMap<u32, (u32, Interaction)> = cmd
        .imports
        .iter()
        .map(|&(off, r)| (r.src.raw(), (off, r)))
        .collect();
    let mut returns_outstanding = cmd.returns_expected;

    let consume = |tracker: &mut dyn ProvenanceTracker,
                   vertex: VertexId,
                   state: ShardVertexState,
                   pending: &mut BTreeMap<u32, (u32, Interaction)>,
                   newborn: &mut Vec<(u32, f64)>,
                   processed_local: &mut usize,
                   obs: &mut Option<&mut WorkerObs>|
     -> std::result::Result<(), BatchAbort> {
        let (off, r) = pending
            .remove(&vertex.raw())
            .expect("an imported state matches a pending interaction");
        tracker.put_vertex_state(vertex, state);
        newborn.push((off, process_one(tracker, &r)));
        *processed_local += 1;
        let state = tracker
            .take_vertex_state(vertex)
            .expect("factory trackers support sharded execution");
        if let Some(o) = obs.as_deref_mut() {
            o.touch.offer(r.src.raw(), 1);
            o.touch.offer(r.dst.raw(), 1);
            o.migrated
                .offer(vertex.raw(), state.footprint_bytes() as u64);
        }
        let owner = shard_of(vertex, peers.len());
        debug_assert_ne!(owner, shard_id, "imports come from other shards");
        if peers[owner]
            .send(ToShard::State(StateMsg {
                vertex,
                state,
                coming_home: true,
            }))
            .is_err()
        {
            return Err(BatchAbort::PeerLost);
        }
        Ok(())
    };

    // Drain whatever the stash already holds for this batch.
    let ready: Vec<u32> = pending
        .keys()
        .copied()
        .filter(|v| stash.get(v).is_some_and(|q| !q.is_empty()))
        .collect();
    for v in ready {
        let state = stash
            .get_mut(&v)
            .and_then(VecDeque::pop_front)
            .expect("checked non-empty above");
        consume(
            tracker,
            VertexId::new(v),
            state,
            &mut pending,
            &mut newborn,
            processed_local,
            &mut obs,
        )?;
    }

    while !pending.is_empty() || returns_outstanding > 0 {
        // Disconnect-aware: if the channel closes (the main thread and
        // every peer dropped their senders) the wavefront can never
        // complete — abort instead of unwrapping into a hang-then-panic.
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => return Err(BatchAbort::MainLost),
        };
        match msg {
            ToShard::State(sm) => {
                if sm.coming_home {
                    tracker.put_vertex_state(sm.vertex, sm.state);
                    returns_outstanding -= 1;
                } else if pending.contains_key(&sm.vertex.raw()) {
                    consume(
                        tracker,
                        sm.vertex,
                        sm.state,
                        &mut pending,
                        &mut newborn,
                        processed_local,
                        &mut obs,
                    )?;
                } else {
                    // An export for a later wavefront arriving early.
                    stash
                        .entry(sm.vertex.raw())
                        .or_default()
                        .push_back(sm.state);
                }
            }
            ToShard::PeerFailed => {
                // The state we are waiting on will never arrive.
                return Err(BatchAbort::PeerLost);
            }
            // The main thread pipelines later wavefronts (and, on drop, the
            // shutdown) into the same channel the peer states travel on;
            // replay them in order once this wavefront completes.
            other => backlog.push_back(other),
        }
    }

    Ok(newborn)
}

/// Run several policy configurations over the same interaction sequence on a
/// sharded engine each — the sharded counterpart of
/// [`tin_core::engine::run_ensemble`].
///
/// # Errors
/// Propagates configuration and validation errors; an invalid member aborts
/// the whole ensemble.
pub fn run_ensemble_sharded(
    configs: &[PolicyConfig],
    num_vertices: usize,
    interactions: &[Interaction],
    num_shards: usize,
) -> Result<Vec<EngineReport>> {
    let mut reports = Vec::with_capacity(configs.len());
    for config in configs {
        let mut engine = ShardedEngine::new(config, num_vertices, num_shards)?;
        engine.process_all(interactions)?;
        reports.push(engine.report()?);
    }
    Ok(reports)
}
