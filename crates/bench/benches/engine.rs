//! Benches for the operational layer: engine overhead over a raw tracker,
//! checkpointing cost, path tracking on top of the generation-time policies,
//! and on-demand (lazy / backtracing) query latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tin_bench::Workload;
use tin_core::engine::ProvenanceEngine;
use tin_core::ids::VertexId;
use tin_core::policy::{PolicyConfig, SelectionPolicy};
use tin_core::tracker::backtrace::BacktraceIndex;
use tin_core::tracker::lazy::LazyReplayProvenance;
use tin_core::tracker::path_generation::GenerationPathTracker;
use tin_core::tracker::{build_tracker, ProvenanceTracker};
use tin_datasets::{DatasetKind, ScaleProfile};

fn bench_engine_overhead(c: &mut Criterion) {
    let w = Workload::generate(DatasetKind::Taxis, ScaleProfile::Tiny);
    let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
    let mut group = c.benchmark_group("engine_overhead");
    group.bench_function("raw_tracker", |b| {
        b.iter(|| {
            let mut tracker = build_tracker(&config, w.num_vertices).unwrap();
            tracker.process_all(&w.interactions);
            tracker.interactions_processed()
        })
    });
    group.bench_function("engine_validated", |b| {
        b.iter(|| {
            let mut engine = ProvenanceEngine::new(&config, w.num_vertices).unwrap();
            engine.process_all(&w.interactions).unwrap();
            engine.report().interactions
        })
    });
    group.bench_function("engine_with_checkpoints", |b| {
        b.iter(|| {
            let mut engine = ProvenanceEngine::new(&config, w.num_vertices)
                .unwrap()
                .with_checkpoints(w.interactions.len() / 4)
                .unwrap();
            engine.process_all(&w.interactions).unwrap();
            engine.report().checkpoints_taken
        })
    });
    group.finish();
}

fn bench_generation_path_tracking(c: &mut Criterion) {
    let w = Workload::generate(DatasetKind::Taxis, ScaleProfile::Tiny);
    let mut group = c.benchmark_group("generation_time_paths");
    group.bench_function("plain_lrb", |b| {
        b.iter(|| {
            let mut tracker = build_tracker(
                &PolicyConfig::Plain(SelectionPolicy::LeastRecentlyBorn),
                w.num_vertices,
            )
            .unwrap();
            tracker.process_all(&w.interactions);
            tracker.footprint().total()
        })
    });
    group.bench_function("lrb_with_paths", |b| {
        b.iter(|| {
            let mut tracker = GenerationPathTracker::least_recently_born(w.num_vertices);
            tracker.process_all(&w.interactions);
            tracker.footprint().total()
        })
    });
    group.finish();
}

fn bench_on_demand_queries(c: &mut Criterion) {
    let w = Workload::generate(DatasetKind::Taxis, ScaleProfile::Tiny);
    let n = w.num_vertices;
    let mut lazy = LazyReplayProvenance::proportional(n);
    let mut backtrace = BacktraceIndex::proportional(n);
    let mut eager =
        build_tracker(&PolicyConfig::Plain(SelectionPolicy::ProportionalSparse), n).unwrap();
    for r in &w.interactions {
        lazy.process(r);
        backtrace.process(r);
        eager.process(r);
    }
    let policy = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
    let query = VertexId::from(n / 2);

    let mut group = c.benchmark_group("on_demand_queries");
    group.bench_with_input(BenchmarkId::new("eager", "origins"), &query, |b, &v| {
        b.iter(|| eager.origins(v).len())
    });
    group.bench_with_input(
        BenchmarkId::new("lazy_replay", "origins"),
        &query,
        |b, &v| b.iter(|| lazy.origins_at(v, f64::INFINITY).unwrap().len()),
    );
    group.bench_with_input(
        BenchmarkId::new("backtrace_pruned", "origins"),
        &query,
        |b, &v| {
            b.iter(|| {
                backtrace
                    .origins_at_with(v, f64::INFINITY, &policy)
                    .unwrap()
                    .len()
            })
        },
    );
    group.finish();
}

/// Reduced sample configuration so the full suite (`cargo bench --workspace`)
/// completes in a few minutes; the relative ordering of the measured
/// alternatives is unaffected. Command-line flags (e.g. `--sample-size`)
/// still override these defaults.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_engine_overhead, bench_generation_path_tracking, bench_on_demand_queries
}
criterion_main!(benches);
