//! Criterion benches behind Table 7: per-policy streaming throughput on each
//! (scaled-down) dataset. Skips the proportional policies where the paper
//! reports "–" (infeasible vertex counts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tin_bench::{dense_proportional_feasible, sparse_proportional_feasible, Workload};
use tin_core::policy::{PolicyConfig, SelectionPolicy};
use tin_core::tracker::build_tracker;
use tin_datasets::{DatasetKind, ScaleProfile};

fn bench_policies(c: &mut Criterion) {
    // Tiny scale keeps Criterion's many iterations affordable; the harness
    // binaries run the larger scales once.
    let workloads: Vec<Workload> = DatasetKind::all()
        .into_iter()
        .map(|k| Workload::generate(k, ScaleProfile::Tiny))
        .collect();

    let mut group = c.benchmark_group("table7_policies");
    for w in &workloads {
        group.throughput(Throughput::Elements(w.interactions.len() as u64));
        for policy in SelectionPolicy::all() {
            let feasible = match policy {
                SelectionPolicy::ProportionalDense => dense_proportional_feasible(w.num_vertices),
                SelectionPolicy::ProportionalSparse => {
                    sparse_proportional_feasible(w.num_vertices, w.interactions.len())
                }
                _ => true,
            };
            if !feasible {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(policy.key(), w.kind.key()), w, |b, w| {
                b.iter(|| {
                    let mut tracker =
                        build_tracker(&PolicyConfig::Plain(policy), w.num_vertices).unwrap();
                    tracker.process_all(&w.interactions);
                    tracker.total_buffered()
                })
            });
        }
    }
    group.finish();
}

/// Reduced sample configuration so the full suite (`cargo bench --workspace`)
/// completes in a few minutes; the relative ordering of the measured
/// alternatives is unaffected. Command-line flags (e.g. `--sample-size`)
/// still override these defaults.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_policies
}
criterion_main!(benches);
