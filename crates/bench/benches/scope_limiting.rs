//! Criterion benches behind Figures 7 and 8: the windowing and budget-based
//! techniques for limiting the scope of proportional provenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tin_bench::Workload;
use tin_core::policy::PolicyConfig;
use tin_core::tracker::build_tracker;
use tin_datasets::{DatasetKind, ScaleProfile};

fn bench_windowing(c: &mut Criterion) {
    let w = Workload::generate(DatasetKind::ProsperLoans, ScaleProfile::Tiny);
    let n = w.interactions.len();
    let mut group = c.benchmark_group("fig7_windowing");
    group.throughput(Throughput::Elements(n as u64));
    for divisor in [32usize, 8, 2] {
        let window = (n / divisor).max(1);
        group.bench_with_input(
            BenchmarkId::from_parameter(window),
            &window,
            |b, &window| {
                b.iter(|| {
                    let mut tracker =
                        build_tracker(&PolicyConfig::Windowed { window }, w.num_vertices).unwrap();
                    tracker.process_all(&w.interactions);
                    tracker.total_buffered()
                })
            },
        );
    }
    group.finish();
}

fn bench_budget(c: &mut Criterion) {
    let w = Workload::generate(DatasetKind::ProsperLoans, ScaleProfile::Tiny);
    let mut group = c.benchmark_group("fig8_budget");
    group.throughput(Throughput::Elements(w.interactions.len() as u64));
    for capacity in [10usize, 100, 1000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    let mut tracker =
                        build_tracker(&PolicyConfig::budget(capacity), w.num_vertices).unwrap();
                    tracker.process_all(&w.interactions);
                    tracker.total_buffered()
                })
            },
        );
    }
    group.finish();
}

/// Reduced sample configuration so the full suite (`cargo bench --workspace`)
/// completes in a few minutes; the relative ordering of the measured
/// alternatives is unaffected. Command-line flags (e.g. `--sample-size`)
/// still override these defaults.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_windowing, bench_budget
}
criterion_main!(benches);
