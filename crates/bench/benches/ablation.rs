//! Ablation benches for the design choices called out in DESIGN.md §6:
//! chunked ("SIMD") vs. scalar dense-vector kernels, coalescing vs. plain
//! receipt-order buffers, keep-largest vs. keep-important budget shrinking,
//! the PR 2 select-based shrink vs. the former sort + `BTreeSet` shrink,
//! and relay vs. diffusion propagation semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tin_bench::Workload;
use tin_core::buffer::queue_buffer::{Discipline, QueueBuffer};
use tin_core::buffer::Pair;
use tin_core::ids::{Origin, VertexId};
use tin_core::policy::ShrinkCriterion;
use tin_core::quantity::{qty_is_zero, Quantity};
use tin_core::simd;
use tin_core::sparse_vec::{MergeScratch, SparseProvenance};
use tin_core::tracker::budget::BudgetTracker;
use tin_core::tracker::diffusion::DiffusionTracker;
use tin_core::tracker::proportional_sparse::ProportionalSparseTracker;
use tin_core::tracker::ProvenanceTracker;
use tin_datasets::{DatasetKind, ScaleProfile};

fn bench_vector_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_vector_kernels");
    for dim in [64usize, 1024, 16_384] {
        let src: Vec<f64> = (0..dim).map(|i| i as f64 * 0.5).collect();
        group.bench_with_input(
            BenchmarkId::new("chunked_add_scaled", dim),
            &src,
            |b, src| {
                let mut dst = vec![1.0f64; src.len()];
                b.iter(|| {
                    simd::add_scaled(&mut dst, src, 0.37);
                    dst[0]
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scalar_add_scaled", dim),
            &src,
            |b, src| {
                let mut dst = vec![1.0f64; src.len()];
                b.iter(|| {
                    simd::reference::add_scaled(&mut dst, src, 0.37);
                    dst[0]
                })
            },
        );
    }
    group.finish();
}

fn bench_buffer_coalescing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_queue_coalescing");
    // A worst case for plain buffers: long runs of pairs from the same origin.
    let pairs: Vec<Pair> = (0..20_000u32).map(|i| Pair::new(i / 100, 1.0)).collect();
    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut buf = QueueBuffer::new(Discipline::Lifo);
            for p in &pairs {
                buf.push(*p);
            }
            buf.take(5_000.0, |_| {});
            buf.len()
        })
    });
    group.bench_function("coalescing", |b| {
        b.iter(|| {
            let mut buf = QueueBuffer::new_coalescing(Discipline::Lifo);
            for p in &pairs {
                buf.push(*p);
            }
            buf.take(5_000.0, |_| {});
            buf.len()
        })
    });
    group.finish();
}

fn bench_shrink_criteria(c: &mut Criterion) {
    let w = Workload::generate(DatasetKind::Ctu, ScaleProfile::Tiny);
    let important: Vec<tin_core::ids::VertexId> =
        (0..8u32).map(tin_core::ids::VertexId::new).collect();
    let mut group = c.benchmark_group("ablation_budget_shrink_criterion");
    group.bench_function("keep_largest", |b| {
        b.iter(|| {
            let mut tracker = BudgetTracker::new(w.num_vertices, 16, 0.7).unwrap();
            tracker.process_all(&w.interactions);
            tracker.shrink_stats().total_shrinks
        })
    });
    group.bench_function("keep_important", |b| {
        b.iter(|| {
            let mut tracker = BudgetTracker::with_criterion(
                w.num_vertices,
                16,
                0.7,
                ShrinkCriterion::KeepImportant,
                important.clone(),
            )
            .unwrap();
            tracker.process_all(&w.interactions);
            tracker.shrink_stats().total_shrinks
        })
    });
    group.finish();
}

/// The pre-PR 2 shrink: full index sort plus a `BTreeSet` keep-set, kept
/// here as the ablation reference for the `select_nth_unstable_by` +
/// boolean-mask implementation that replaced it.
fn reference_shrink_sort_btreeset(v: &SparseProvenance, keep: usize) -> SparseProvenance {
    let entries: Vec<(Origin, Quantity)> = v.iter().collect();
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by(|&a, &b| {
        let (ao, aq) = entries[a];
        let (bo, bq) = entries[b];
        (bo == Origin::Unknown)
            .cmp(&(ao == Origin::Unknown))
            .then(bq.total_cmp(&aq))
            .then(ao.cmp(&bo))
    });
    let keep_set: std::collections::BTreeSet<usize> = order.into_iter().take(keep).collect();
    let mut removed = 0.0;
    let mut kept = Vec::with_capacity(keep + 1);
    for (i, (o, q)) in entries.iter().enumerate() {
        if keep_set.contains(&i) {
            kept.push((*o, *q));
        } else {
            removed += q;
        }
    }
    let mut out: SparseProvenance = kept.into_iter().collect();
    if !qty_is_zero(removed) {
        out.add(Origin::Unknown, removed);
    }
    out
}

/// Budget shrink at list lengths ℓ ∈ {8, 64, 1024}: O(ℓ) selection vs the
/// former O(ℓ log ℓ) sort + `BTreeSet` build.
fn bench_shrink_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_shrink_kernel");
    for len in [8usize, 64, 1024] {
        let keep = (len * 7 / 10).max(1);
        let input: SparseProvenance = (0..len as u32)
            .map(|i| {
                (
                    Origin::Vertex(VertexId::new(i)),
                    ((i * 7919) % 97 + 1) as f64,
                )
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("select_nth_mask", len),
            &input,
            |b, input| {
                let mut scratch = MergeScratch::new();
                b.iter(|| {
                    let mut v = input.clone();
                    v.shrink_keep_largest_with(keep, &mut scratch);
                    v.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sort_btreeset", len),
            &input,
            |b, input| b.iter(|| reference_shrink_sort_btreeset(input, keep).len()),
        );
    }
    group.finish();
}

fn bench_propagation_models(c: &mut Criterion) {
    // Relay (the paper's model) vs. diffusion (the Section 8 extension for
    // social networks) over the same proportional sparse state: diffusion
    // skips the source-side subtraction but its lists keep growing because
    // buffers are never drained.
    let mut group = c.benchmark_group("ablation_propagation_models");
    for kind in [DatasetKind::Taxis, DatasetKind::Ctu] {
        let w = Workload::generate(kind, ScaleProfile::Tiny);
        group.bench_with_input(BenchmarkId::new("relay_sparse", kind.key()), &w, |b, w| {
            b.iter(|| {
                let mut tracker = ProportionalSparseTracker::new(w.num_vertices);
                tracker.process_all(&w.interactions);
                tracker.total_entries()
            })
        });
        group.bench_with_input(BenchmarkId::new("diffusion", kind.key()), &w, |b, w| {
            b.iter(|| {
                let mut tracker = DiffusionTracker::new(w.num_vertices);
                tracker.process_all(&w.interactions);
                tracker.total_entries()
            })
        });
    }
    group.finish();
}

/// Reduced sample configuration so the full suite (`cargo bench --workspace`)
/// completes in a few minutes; the relative ordering of the measured
/// alternatives is unaffected. Command-line flags (e.g. `--sample-size`)
/// still override these defaults.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_vector_kernels, bench_buffer_coalescing, bench_shrink_criteria, bench_shrink_kernels, bench_propagation_models
}
criterion_main!(benches);
