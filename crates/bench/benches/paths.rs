//! Criterion benches behind Table 10: the overhead of tracking transfer
//! paths (how-provenance) relative to plain LIFO origin tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tin_bench::Workload;
use tin_core::tracker::path::PathTracker;
use tin_core::tracker::receipt_order::ReceiptOrderTracker;
use tin_core::tracker::ProvenanceTracker;
use tin_datasets::{DatasetKind, ScaleProfile};

fn bench_path_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("table10_paths");
    for kind in [DatasetKind::Flights, DatasetKind::Taxis, DatasetKind::Ctu] {
        let w = Workload::generate(kind, ScaleProfile::Tiny);
        group.throughput(Throughput::Elements(w.interactions.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("lifo_origins_only", kind.key()),
            &w,
            |b, w| {
                b.iter(|| {
                    let mut tracker = ReceiptOrderTracker::lifo(w.num_vertices);
                    tracker.process_all(&w.interactions);
                    tracker.total_buffered()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lifo_with_paths", kind.key()),
            &w,
            |b, w| {
                b.iter(|| {
                    let mut tracker = PathTracker::lifo(w.num_vertices);
                    tracker.process_all(&w.interactions);
                    tracker.total_buffered()
                })
            },
        );
    }
    group.finish();
}

/// Reduced sample configuration so the full suite (`cargo bench --workspace`)
/// completes in a few minutes; the relative ordering of the measured
/// alternatives is unaffected. Command-line flags (e.g. `--sample-size`)
/// still override these defaults.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_path_tracking
}
criterion_main!(benches);
