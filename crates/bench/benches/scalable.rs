//! Criterion benches behind Figure 5: selective and grouped proportional
//! provenance as a function of k (number of tracked vertices / groups).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tin_bench::Workload;
use tin_core::policy::PolicyConfig;
use tin_core::tracker::no_prov::NoProvTracker;
use tin_core::tracker::{build_tracker, ProvenanceTracker};
use tin_datasets::{DatasetKind, ScaleProfile};

fn bench_selective_and_grouped(c: &mut Criterion) {
    let w = Workload::generate(DatasetKind::ProsperLoans, ScaleProfile::Tiny);
    let mut baseline = NoProvTracker::new(w.num_vertices);
    baseline.process_all(&w.interactions);

    let mut group = c.benchmark_group("fig5_scalable_proportional");
    group.throughput(Throughput::Elements(w.interactions.len() as u64));
    for k in [5usize, 20, 50, 100] {
        let k = k.min(w.num_vertices - 1).max(1);
        let tracked = baseline.top_k_generators(k);
        group.bench_with_input(BenchmarkId::new("selective", k), &tracked, |b, tracked| {
            b.iter(|| {
                let mut tracker = build_tracker(
                    &PolicyConfig::Selective {
                        tracked: tracked.clone(),
                    },
                    w.num_vertices,
                )
                .unwrap();
                tracker.process_all(&w.interactions);
                tracker.total_buffered()
            })
        });
        group.bench_with_input(BenchmarkId::new("grouped", k), &k, |b, &k| {
            b.iter(|| {
                let mut tracker = build_tracker(
                    &PolicyConfig::Grouped {
                        num_groups: k,
                        group_of: (0..w.num_vertices).map(|v| (v % k) as u32).collect(),
                    },
                    w.num_vertices,
                )
                .unwrap();
                tracker.process_all(&w.interactions);
                tracker.total_buffered()
            })
        });
    }
    group.finish();
}

/// Reduced sample configuration so the full suite (`cargo bench --workspace`)
/// completes in a few minutes; the relative ordering of the measured
/// alternatives is unaffected. Command-line flags (e.g. `--sample-size`)
/// still override these defaults.
fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_selective_and_grouped
}
criterion_main!(benches);
