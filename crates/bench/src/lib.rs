//! # tin-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Section 7) plus
//! Criterion micro-benchmarks. The binaries print the same rows/series the
//! paper reports; `EXPERIMENTS.md` maps each binary to its table/figure and
//! records paper-reported vs. measured values.
//!
//! | Binary | Reproduces |
//! |--------|------------|
//! | `table6_datasets` | Table 6 — dataset characteristics (paper vs. generated) |
//! | `table7_runtime` | Table 7 — runtime per selection policy × dataset |
//! | `table8_memory` | Table 8 — peak memory per selection policy × dataset |
//! | `fig5_selective_grouped` | Figure 5 — selective & grouped proportional vs k |
//! | `fig6_cumulative` | Figure 6 — cumulative cost of sparse proportional |
//! | `fig7_windowing` | Figure 7 — windowing approach vs W |
//! | `fig8_budget` | Figure 8 — budget approach vs C |
//! | `table9_shrinks` | Table 9 — shrink statistics vs C |
//! | `table10_paths` | Table 10 — path-tracking overhead |
//! | `fig2_taxi_usecase` | Figure 2 — accumulation at a taxi zone |
//! | `fig9_alerts` | Figure 9 — provenance alerts on Bitcoin |
//! | `ablation_accuracy` | Extension — accuracy vs. cost of scope-limited tracking |
//! | `ablation_lazy` | Extension — eager vs. lazy vs. backtracing queries |
//! | `ablation_diffusion` | Extension — relay vs. diffusion propagation semantics |
//!
//! All binaries accept the environment variables `TIN_SCALE`
//! (`tiny|small|medium|paper`, default `small`) and `TIN_SEED` (default 42).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Instant;

use tin_core::interaction::Interaction;
use tin_core::memory::FootprintBreakdown;
use tin_core::policy::PolicyConfig;
use tin_core::tracker::{build_tracker, ProvenanceTracker};
use tin_datasets::{DatasetKind, DatasetSpec, ScaleProfile};
use tin_memstats::CountingAllocator;

/// The counting allocator is installed for every harness binary and bench so
/// that Table 8 style "peak memory" numbers are available.
#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator::new();

/// Read the scale profile from `TIN_SCALE` (default: small).
pub fn scale_from_env() -> ScaleProfile {
    match std::env::var("TIN_SCALE")
        .unwrap_or_default()
        .to_lowercase()
        .as_str()
    {
        "tiny" => ScaleProfile::Tiny,
        "medium" => ScaleProfile::Medium,
        "paper" => ScaleProfile::Paper,
        "small" | "" => ScaleProfile::Small,
        other => {
            eprintln!("unknown TIN_SCALE={other:?}, using small");
            ScaleProfile::Small
        }
    }
}

/// Read the RNG seed from `TIN_SEED` (default: 42).
pub fn seed_from_env() -> u64 {
    std::env::var("TIN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A generated workload ready to be fed to trackers.
pub struct Workload {
    /// Which dataset this emulates.
    pub kind: DatasetKind,
    /// Number of vertices.
    pub num_vertices: usize,
    /// The time-ordered interactions.
    pub interactions: Vec<Interaction>,
}

impl Workload {
    /// Generate the workload for a dataset at the given scale.
    pub fn generate(kind: DatasetKind, scale: ScaleProfile) -> Self {
        let spec = DatasetSpec::with_seed(kind, scale, seed_from_env());
        Workload {
            kind,
            num_vertices: spec.num_vertices(),
            interactions: tin_datasets::generate(&spec),
        }
    }

    /// Generate all five workloads.
    pub fn all(scale: ScaleProfile) -> Vec<Workload> {
        DatasetKind::all()
            .into_iter()
            .map(|k| Workload::generate(k, scale))
            .collect()
    }

    /// A one-line description for report headers.
    pub fn describe(&self) -> String {
        format!(
            "{}: |V|={}, |R|={}",
            self.kind.label(),
            self.num_vertices,
            self.interactions.len()
        )
    }
}

/// The result of running one tracker over one workload.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Wall-clock runtime of the streaming pass (seconds).
    pub runtime_secs: f64,
    /// Logical provenance footprint after the pass.
    pub footprint: FootprintBreakdown,
    /// Peak additional allocator bytes during the pass (0 if the counting
    /// allocator is not installed — it always is for harness binaries).
    pub peak_alloc_bytes: usize,
    /// Number of interactions processed.
    pub interactions: usize,
}

impl RunResult {
    /// The larger of the logical footprint and the allocator peak — a
    /// conservative "memory used" figure for the tables.
    pub fn memory_bytes(&self) -> usize {
        self.footprint.total().max(self.peak_alloc_bytes)
    }
}

/// Run `config` over a workload, measuring runtime and memory. Returns the
/// tracker as well so callers can inspect final provenance state.
pub fn run_tracker(
    config: &PolicyConfig,
    workload: &Workload,
) -> (Box<dyn ProvenanceTracker>, RunResult) {
    let mut tracker =
        build_tracker(config, workload.num_vertices).expect("harness configs are valid");
    let scope = tin_memstats::MemoryScope::start();
    let start = Instant::now();
    tracker.process_all(&workload.interactions);
    let runtime_secs = start.elapsed().as_secs_f64();
    let mem = scope.finish();
    let result = RunResult {
        runtime_secs,
        footprint: tracker.footprint(),
        peak_alloc_bytes: mem.peak_delta_bytes,
        interactions: workload.interactions.len(),
    };
    (tracker, result)
}

/// Is the dense proportional policy feasible for this vertex count?
/// Mirrors the "–" entries of Tables 7 and 8: a |V|²-sized f64 matrix must
/// fit comfortably in memory.
pub fn dense_proportional_feasible(num_vertices: usize) -> bool {
    // 8 bytes per slot; cap the matrix at ~1 GiB.
    num_vertices.saturating_mul(num_vertices).saturating_mul(8) <= 1 << 30
}

/// Is the sparse proportional policy feasible for this workload size?
/// The paper could not run it on Bitcoin/CTU; at harness scale we cap the
/// potential list growth instead (|V| × average list length estimate).
pub fn sparse_proportional_feasible(num_vertices: usize, num_interactions: usize) -> bool {
    // Pessimistic bound: every vertex could accumulate a list proportional to
    // the number of distinct senders it sees; cap the estimated entries.
    let estimated_entries = num_interactions.saturating_mul(8);
    num_vertices <= 2_000_000 && estimated_entries <= 200_000_000
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::policy::SelectionPolicy;

    #[test]
    fn scale_parsing_defaults_to_small() {
        // Environment-dependent branches are exercised directly.
        assert_eq!(scale_from_env(), ScaleProfile::Small);
        assert_eq!(seed_from_env(), 42);
    }

    #[test]
    fn workload_generation_and_run() {
        let w = Workload::generate(DatasetKind::Taxis, ScaleProfile::Tiny);
        assert!(w.describe().contains("Taxis"));
        let (tracker, result) = run_tracker(&PolicyConfig::Plain(SelectionPolicy::Lifo), &w);
        assert_eq!(result.interactions, w.interactions.len());
        assert!(result.runtime_secs >= 0.0);
        assert!(result.memory_bytes() > 0);
        assert!(tracker.check_all_invariants());
    }

    #[test]
    fn feasibility_thresholds() {
        assert!(dense_proportional_feasible(629)); // Flights
        assert!(dense_proportional_feasible(255)); // Taxis
        assert!(!dense_proportional_feasible(12_000_000)); // Bitcoin
        assert!(sparse_proportional_feasible(100_000, 3_080_000)); // Prosper
        assert!(!sparse_proportional_feasible(12_000_000, 45_500_000)); // Bitcoin
    }

    #[test]
    fn all_workloads_generate_at_tiny_scale() {
        let all = Workload::all(ScaleProfile::Tiny);
        assert_eq!(all.len(), 5);
        assert!(all.iter().all(|w| !w.interactions.is_empty()));
    }
}
