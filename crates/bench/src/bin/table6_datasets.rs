//! Table 6: characteristics of the five evaluation datasets.
//!
//! The paper reports, per dataset, the number of nodes, the number of
//! interactions and the average transferred quantity. This binary prints the
//! paper-reported values side by side with the characteristics of the
//! synthetic workloads the harness actually generates at the selected scale,
//! so the downscaling factor applied to every other experiment is explicit.

use tin_analytics::report::TextTable;
use tin_bench::{scale_from_env, Workload};
use tin_core::graph::Tin;

fn format_count(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.0}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

fn format_quantity(q: f64) -> String {
    if q >= 1e9 {
        format!("{:.1}B", q / 1e9)
    } else if q >= 1e3 {
        format!("{:.1}K", q / 1e3)
    } else {
        format!("{q:.2}")
    }
}

fn main() {
    let scale = scale_from_env();
    println!("Reproducing Table 6 (dataset characteristics), scale = {scale:?}\n");

    let mut table = TextTable::new(
        "Table 6: Characteristics of Datasets (paper vs. generated)",
        &[
            "Dataset",
            "#nodes (paper)",
            "#nodes (generated)",
            "#interactions (paper)",
            "#interactions (generated)",
            "avg r.q (paper)",
            "avg r.q (generated)",
        ],
    );

    for workload in Workload::all(scale) {
        let (paper_nodes, paper_interactions) = workload.kind.paper_size();
        let tin = Tin::from_interactions_auto(workload.interactions.clone())
            .expect("generated workloads are valid");
        let stats = tin.stats();
        table.push_row(vec![
            workload.kind.label().to_string(),
            format_count(paper_nodes),
            format_count(workload.num_vertices),
            format_count(paper_interactions),
            format_count(stats.num_interactions),
            format_quantity(workload.kind.paper_avg_quantity()),
            format_quantity(stats.avg_quantity),
        ]);
    }

    println!("{}", table.render());
    println!("CSV:\n{}", table.to_csv());
}
