//! Table 9: shrinking statistics of budget-based provenance.
//!
//! For each of the three large networks and each budget C, reports (i) the
//! average number of shrinks per vertex with a non-empty buffer and (ii) the
//! percentage of such vertices whose provenance list was shrunk at least
//! once.

use tin_analytics::report::TextTable;
use tin_bench::{scale_from_env, Workload};
use tin_core::tracker::budget::BudgetTracker;
use tin_core::tracker::ProvenanceTracker;
use tin_datasets::DatasetKind;

const BUDGETS: [usize; 6] = [10, 50, 100, 200, 500, 1000];

fn main() {
    let scale = scale_from_env();
    println!("Reproducing Table 9 (shrinking statistics in budget-based provenance), scale = {scale:?}\n");

    let kinds = [
        DatasetKind::Bitcoin,
        DatasetKind::Ctu,
        DatasetKind::ProsperLoans,
    ];
    let workloads: Vec<Workload> = kinds
        .iter()
        .map(|&k| Workload::generate(k, scale))
        .collect();
    for w in &workloads {
        println!("  {}", w.describe());
    }
    println!();

    let mut header = vec!["C".to_string()];
    for kind in kinds {
        header.push(format!("{} avg. shrinks", kind.label()));
        header.push(format!("{} % vertices", kind.label()));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = TextTable::new(
        "Table 9: Shrinking statistics in budget-based provenance",
        &header_refs,
    );

    for capacity in BUDGETS {
        let mut row = vec![capacity.to_string()];
        for w in &workloads {
            let mut tracker =
                BudgetTracker::new(w.num_vertices, capacity, 0.7).expect("valid budget");
            tracker.process_all(&w.interactions);
            let stats = tracker.shrink_stats();
            row.push(format!("{:.2}", stats.avg_shrinks_per_nonempty_vertex));
            row.push(format!("{:.2}", stats.pct_vertices_shrunk));
        }
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("CSV:\n{}", table.to_csv());
}
