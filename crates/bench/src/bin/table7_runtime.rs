//! Table 7: runtime (seconds) of each selection policy on each dataset.
//!
//! Columns follow the paper: No Provenance, Least/Most Recently Born, LIFO,
//! FIFO, Proportional (dense), Proportional (sparse). Policies that would
//! exceed the memory of the machine are skipped and printed as "–", exactly
//! like the paper's dashes for Bitcoin/CTU under proportional selection.

use tin_analytics::report::{format_secs, TextTable};
use tin_bench::{
    dense_proportional_feasible, run_tracker, scale_from_env, sparse_proportional_feasible,
    Workload,
};
use tin_core::policy::{PolicyConfig, SelectionPolicy};

fn main() {
    let scale = scale_from_env();
    let workloads = Workload::all(scale);
    println!("Reproducing Table 7 (runtime per selection policy), scale = {scale:?}\n");
    for w in &workloads {
        println!("  {}", w.describe());
    }
    println!();

    let policies = SelectionPolicy::all();
    let header: Vec<&str> = std::iter::once("Dataset")
        .chain(policies.iter().map(|p| p.label()))
        .collect();
    let mut table = TextTable::new("Table 7: Runtime (sec) for each selection policy", &header);

    for w in &workloads {
        let mut row = vec![w.kind.label().to_string()];
        for policy in policies {
            let feasible = match policy {
                SelectionPolicy::ProportionalDense => dense_proportional_feasible(w.num_vertices),
                SelectionPolicy::ProportionalSparse => {
                    sparse_proportional_feasible(w.num_vertices, w.interactions.len())
                }
                _ => true,
            };
            if !feasible {
                row.push("–".to_string());
                continue;
            }
            let (_, result) = run_tracker(&PolicyConfig::Plain(policy), w);
            row.push(format_secs(result.runtime_secs));
        }
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("CSV:\n{}", table.to_csv());
}
