//! Figure 8: budget-based provenance — runtime and memory as a function of
//! the per-vertex budget C.
//!
//! Larger budgets keep more provenance entries per vertex, increasing both
//! the list-merge cost and the memory linearly in C, which is the behaviour
//! the figure shows for Bitcoin, CTU and Prosper Loans.

use tin_analytics::report::{format_bytes, format_secs, TextTable};
use tin_bench::{run_tracker, scale_from_env, Workload};
use tin_core::policy::PolicyConfig;
use tin_datasets::DatasetKind;

const BUDGETS: [usize; 6] = [10, 50, 100, 200, 500, 1000];

fn main() {
    let scale = scale_from_env();
    println!("Reproducing Figure 8 (budget-based provenance), scale = {scale:?}\n");

    for kind in [
        DatasetKind::Bitcoin,
        DatasetKind::Ctu,
        DatasetKind::ProsperLoans,
    ] {
        let w = Workload::generate(kind, scale);
        println!("  {}", w.describe());

        let mut table = TextTable::new(
            format!("Figure 8 ({}): runtime / memory vs budget C", kind.label()),
            &["budget C", "runtime (s)", "provenance memory"],
        );
        for capacity in BUDGETS {
            let (_, result) = run_tracker(&PolicyConfig::budget(capacity), &w);
            table.push_row(vec![
                capacity.to_string(),
                format_secs(result.runtime_secs),
                format_bytes(result.footprint.total()),
            ]);
        }
        println!("{}", table.render());
        println!("CSV:\n{}", table.to_csv());
    }
}
