//! `bench_baseline`: machine-readable per-policy performance baseline.
//!
//! Runs every feasible policy configuration over fixed-seed synthetic
//! workloads (Bitcoin- and taxi-shaped, the two stream shapes the paper's
//! evaluation leans on) and writes `BENCH_PR10.json`: interactions/sec,
//! per-interaction latency quantiles (p50/p90/p99/max from the `tin-obs`
//! `tracker_latency_ns` histogram), peak provenance footprint and allocator
//! peak per policy, plus a sequential-vs-sharded scaling section for the
//! `tin-shard` wavefront engine, a durable-checkpoint cost section, a
//! `recovery_time` section that kills one worker mid-stream on a
//! self-healing sharded engine and reports the measured recovery-time
//! objective per snapshot interval, and a `telemetry_overhead` section that
//! isolates what live JSONL telemetry streaming costs on top of plain
//! observability. The JSON schema is documented in the repository README
//! ("Benchmark baseline"); numbers from this emitter are the perf
//! trajectory that later PRs are measured against.
//!
//! ## Measurement methodology (median of K interleaved repetitions)
//!
//! Early revisions timed each policy's repetitions back to back and
//! reported the fastest, which left ±3× run-to-run swings on the
//! `grouped`/`selective`/`windowed` rows: a frequency ramp or a background
//! task during one policy's window skews all of its reps at once.
//! Repetitions are now **interleaved** `profile_sparse`-style — rep 0 of
//! every policy, then rep 1 of every policy, … — so slow phases of the
//! machine spread across all policies instead of landing on one, and each
//! row reports the **median** per-pass time with the min/max range
//! alongside.
//!
//! Modes:
//! * default — the per-policy table plus the sequential-vs-sharded scaling
//!   section;
//! * `--sweep-threshold` — additionally sweep the adaptive promotion
//!   threshold (0.1–0.9) of `PolicyConfig::AdaptiveProportional`, one JSON
//!   row per setting (feeds the cost-model-driven-threshold roadmap item).
//!
//! Scale is controlled by `TIN_SCALE` (use `TIN_SCALE=tiny` as CI smoke
//! mode), the seed by `TIN_SEED`, timing repetitions by `TIN_BENCH_REPS`
//! (default 5), and the output path by `--out PATH` (default
//! `BENCH_PR10.json`).

use std::time::Instant;

use tin_bench::{
    dense_proportional_feasible, scale_from_env, seed_from_env, sparse_proportional_feasible,
    Workload,
};
use tin_core::ids::VertexId;
use tin_core::policy::{PolicyConfig, SelectionPolicy};
use tin_core::tracker::build_tracker;
use tin_datasets::{DatasetKind, ScaleProfile};
use tin_shard::ShardedEngine;

/// Interactions between two footprint samples of the instrumented pass.
const SAMPLE_INTERVAL: usize = 16_384;

/// Minimum wall-clock time of one measurement batch: small workloads finish
/// in microseconds, far below timer noise, so each measurement loops whole
/// passes until this much time has elapsed and reports the mean per-pass
/// time of the batch.
const MIN_MEASURE_SECS: f64 = 0.05;

/// Shard counts measured by the scaling section (sequential is measured
/// separately as the baseline).
const SCALING_SHARDS: &[usize] = &[1, 2, 4, 8];

/// Pre-optimisation reference throughput (interactions/sec) for the
/// proportional-sparse hot path, measured by this same binary at the PR 1
/// tree (commit a14c5bc) with `TIN_SCALE=small`, `TIN_SEED=42`, on the PR 2
/// build machine. Recorded here so every later run reports a
/// machine-readable speedup against the pre-change baseline.
const PRE_CHANGE_PROP_SPARSE: &[(&str, f64)] = &[("bitcoin", PRE_BITCOIN), ("taxis", PRE_TAXIS)];
const PRE_BITCOIN: f64 = 9_720.99;
const PRE_TAXIS: f64 = 18_222_767.42;

/// Median / min / max of a set of per-pass timings (seconds).
#[derive(Clone, Copy, Debug)]
struct TimingStats {
    median_secs: f64,
    min_secs: f64,
    max_secs: f64,
}

impl TimingStats {
    fn from_samples(samples: &mut [f64]) -> TimingStats {
        assert!(!samples.is_empty(), "at least one timing sample");
        samples.sort_by(f64::total_cmp);
        let median_secs = if samples.len() % 2 == 1 {
            samples[samples.len() / 2]
        } else {
            0.5 * (samples[samples.len() / 2 - 1] + samples[samples.len() / 2])
        };
        TimingStats {
            median_secs,
            min_secs: samples[0],
            max_secs: samples[samples.len() - 1],
        }
    }

    fn per_sec(&self, items: usize) -> (f64, f64, f64) {
        let rate = |secs: f64| {
            if secs > 0.0 {
                items as f64 / secs
            } else {
                0.0
            }
        };
        // Fastest pass = highest rate, so min/max swap roles.
        (
            rate(self.median_secs),
            rate(self.max_secs),
            rate(self.min_secs),
        )
    }
}

/// Per-interaction tracker latency quantiles from the instrumented
/// sequential-engine pass (the `tracker_latency_ns` histogram of `tin-obs`,
/// log-bucket resolution).
#[derive(Clone, Copy, Debug, Default)]
struct LatencyQuantiles {
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

/// Everything the single (untimed) instrumented pass yields: footprint
/// peaks, allocator peak, and latency quantiles.
struct InstrumentedPass {
    peak_footprint_bytes: usize,
    final_footprint_bytes: usize,
    peak_alloc_bytes: usize,
    latency: LatencyQuantiles,
}

struct PolicyRow {
    key: String,
    timing: TimingStats,
    latency: LatencyQuantiles,
    peak_footprint_bytes: usize,
    final_footprint_bytes: usize,
    peak_alloc_bytes: usize,
    reps: usize,
}

/// The policy configurations measured on every workload, in output order.
fn configs_for(w: &Workload) -> Vec<PolicyConfig> {
    let n = w.num_vertices;
    let k = 64.min(n.max(2) - 1).max(1);
    let m = 64.min(n).max(1);
    let mut configs = vec![
        PolicyConfig::Plain(SelectionPolicy::NoProvenance),
        PolicyConfig::Plain(SelectionPolicy::LeastRecentlyBorn),
        PolicyConfig::Plain(SelectionPolicy::MostRecentlyBorn),
        PolicyConfig::Plain(SelectionPolicy::Fifo),
        PolicyConfig::Plain(SelectionPolicy::Lifo),
    ];
    if dense_proportional_feasible(n) {
        configs.push(PolicyConfig::Plain(SelectionPolicy::ProportionalDense));
    }
    if sparse_proportional_feasible(n, w.interactions.len()) {
        configs.push(PolicyConfig::Plain(SelectionPolicy::ProportionalSparse));
        configs.push(PolicyConfig::adaptive());
    }
    configs.push(PolicyConfig::Selective {
        tracked: (0..k as u32).map(VertexId::new).collect(),
    });
    configs.push(PolicyConfig::Grouped {
        num_groups: m,
        group_of: (0..n).map(|v| (v % m) as u32).collect(),
    });
    configs.push(PolicyConfig::Windowed { window: 4096 });
    configs.push(PolicyConfig::budget(64));
    configs
}

/// One timed measurement of `config` over `w` on the plain tracker: loops
/// whole passes until [`MIN_MEASURE_SECS`] elapsed, returns mean per-pass
/// seconds.
fn time_tracker_pass(config: &PolicyConfig, w: &Workload) -> f64 {
    let mut passes = 0u32;
    let start = Instant::now();
    loop {
        let mut tracker =
            build_tracker(config, w.num_vertices).expect("benchmark configs are valid");
        tracker.process_all(&w.interactions);
        passes += 1;
        if start.elapsed().as_secs_f64() >= MIN_MEASURE_SECS {
            break;
        }
    }
    start.elapsed().as_secs_f64() / f64::from(passes)
}

/// The single instrumented pass for one policy (not timed — histogram
/// observation adds a clock read per interaction, so this pass is kept
/// separate from the throughput measurements above). One observability-
/// attached sequential-engine run yields the periodic logical-footprint
/// peaks, the allocator peak, *and* the per-interaction latency quantiles
/// from the `tracker_latency_ns` histogram; earlier revisions burned a
/// second full pass on the quantiles alone.
fn instrument_policy(config: &PolicyConfig, w: &Workload) -> InstrumentedPass {
    let scope = tin_memstats::MemoryScope::start();
    let mut engine = tin_core::engine::ProvenanceEngine::new(config, w.num_vertices)
        .expect("benchmark configs are valid")
        .with_footprint_sample_interval(SAMPLE_INTERVAL)
        .expect("sample interval is positive")
        .with_observability(tin_obs::Obs::new());
    engine.process_all(&w.interactions).expect("valid stream");
    let report = engine.report();
    let obs = engine.take_obs().expect("observability was attached");
    let mem = scope.finish();
    let snap = obs.snapshot();
    let hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "tracker_latency_ns")
        .expect("engine registers tracker_latency_ns");
    InstrumentedPass {
        peak_footprint_bytes: report.peak_footprint_bytes,
        final_footprint_bytes: report.footprint.total(),
        peak_alloc_bytes: mem.peak_delta_bytes,
        latency: LatencyQuantiles {
            p50_ns: hist.p50,
            p90_ns: hist.p90,
            p99_ns: hist.p99,
            max_ns: hist.max,
        },
    }
}

/// Measure every policy over one workload with K interleaved repetitions
/// (see the module docs), reporting median + min/max per policy.
fn run_policy_table(w: &Workload, reps: usize) -> Vec<PolicyRow> {
    let configs = configs_for(w);
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); configs.len()];
    for _ in 0..reps {
        for (i, config) in configs.iter().enumerate() {
            samples[i].push(time_tracker_pass(config, w));
        }
    }
    configs
        .iter()
        .zip(samples.iter_mut())
        .map(|(config, times)| {
            let pass = instrument_policy(config, w);
            PolicyRow {
                key: config.key(),
                timing: TimingStats::from_samples(times),
                latency: pass.latency,
                peak_footprint_bytes: pass.peak_footprint_bytes,
                final_footprint_bytes: pass.final_footprint_bytes,
                peak_alloc_bytes: pass.peak_alloc_bytes,
                reps,
            }
        })
        .collect()
}

/// One scaling-section measurement mode: the sequential engine or the
/// sharded engine at a given shard count.
#[derive(Clone, Copy)]
enum ScalingMode {
    Sequential,
    Sharded(usize),
}

/// One timed engine pass: `process_all` + `report` (so the sharded engine
/// pays for its quiesce like a real caller would). Engine construction and
/// teardown are *excluded* from the timed region — a `ShardedEngine` spawns
/// and joins N OS threads, and at small scales that lifecycle cost would
/// otherwise dominate the row and misreport the scaling of stream
/// processing itself.
fn time_engine_pass(config: &PolicyConfig, w: &Workload, mode: ScalingMode) -> f64 {
    let mut passes = 0u32;
    let mut timed = 0.0f64;
    loop {
        match mode {
            ScalingMode::Sequential => {
                let mut engine = tin_core::engine::ProvenanceEngine::new(config, w.num_vertices)
                    .expect("benchmark configs are valid");
                let start = Instant::now();
                engine.process_all(&w.interactions).expect("valid stream");
                std::hint::black_box(engine.report());
                timed += start.elapsed().as_secs_f64();
            }
            ScalingMode::Sharded(shards) => {
                let mut engine = ShardedEngine::new(config, w.num_vertices, shards)
                    .expect("benchmark configs are valid");
                let start = Instant::now();
                engine.process_all(&w.interactions).expect("valid stream");
                std::hint::black_box(engine.report().expect("workers healthy"));
                timed += start.elapsed().as_secs_f64();
            }
        }
        passes += 1;
        if timed >= MIN_MEASURE_SECS {
            break;
        }
    }
    timed / f64::from(passes)
}

struct ScalingRow {
    mode: &'static str,
    shards: usize,
    timing: TimingStats,
    speedup_vs_sequential: f64,
}

/// Sequential vs sharded scaling for one workload: K interleaved reps per
/// mode, median-of-K, speedup relative to the sequential engine.
fn run_scaling(config: &PolicyConfig, w: &Workload, reps: usize) -> Vec<ScalingRow> {
    let modes: Vec<ScalingMode> = std::iter::once(ScalingMode::Sequential)
        .chain(SCALING_SHARDS.iter().map(|&s| ScalingMode::Sharded(s)))
        .collect();
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); modes.len()];
    for _ in 0..reps {
        for (i, mode) in modes.iter().enumerate() {
            samples[i].push(time_engine_pass(config, w, *mode));
        }
    }
    let stats: Vec<TimingStats> = samples
        .iter_mut()
        .map(|s| TimingStats::from_samples(s))
        .collect();
    let sequential_median = stats[0].median_secs;
    modes
        .iter()
        .zip(stats)
        .map(|(mode, timing)| {
            let (label, shards) = match mode {
                ScalingMode::Sequential => ("sequential", 0),
                ScalingMode::Sharded(s) => ("sharded", *s),
            };
            ScalingRow {
                mode: label,
                shards,
                timing,
                speedup_vs_sequential: if timing.median_secs > 0.0 {
                    sequential_median / timing.median_secs
                } else {
                    0.0
                },
            }
        })
        .collect()
}

struct CheckpointIntervalRow {
    /// Durable-checkpoint interval (0 = checkpointing disabled).
    checkpoint_every: usize,
    timing: TimingStats,
    overhead_percent: f64,
    checkpoints_per_pass: usize,
    peak_alloc_bytes: usize,
}

struct CheckpointSection {
    policy: String,
    capture_secs: f64,
    save_secs: f64,
    encoded_bytes: usize,
    rows: Vec<CheckpointIntervalRow>,
}

fn checkpoint_scratch_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tin_bench_ckpt_{}", std::process::id()))
}

/// One timed sequential-engine pass with durable checkpoints every `every`
/// interactions (0 disables them entirely — the baseline the overhead is
/// measured against). Engine and store construction are excluded from the
/// timed region, matching [`time_engine_pass`].
fn time_durable_pass(config: &PolicyConfig, w: &Workload, every: usize) -> f64 {
    let dir = checkpoint_scratch_dir();
    let mut passes = 0u32;
    let mut timed = 0.0f64;
    loop {
        let mut engine = tin_core::engine::ProvenanceEngine::new(config, w.num_vertices)
            .expect("benchmark configs are valid");
        if every > 0 {
            let store =
                tin_core::checkpoint::CheckpointStore::open(&dir).expect("scratch dir is writable");
            engine = engine
                .with_durable_checkpoints(store, every)
                .expect("interval is positive");
        }
        let start = Instant::now();
        engine.process_all(&w.interactions).expect("valid stream");
        std::hint::black_box(engine.report());
        timed += start.elapsed().as_secs_f64();
        passes += 1;
        if timed >= MIN_MEASURE_SECS {
            break;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    timed / f64::from(passes)
}

/// Allocator peak of one durable (or disabled) pass — pins down that the
/// zero-allocation steady state is untouched while checkpointing is off and
/// quantifies what the capture path allocates when it is on.
fn alloc_peak_durable(config: &PolicyConfig, w: &Workload, every: usize) -> usize {
    let dir = checkpoint_scratch_dir();
    let scope = tin_memstats::MemoryScope::start();
    let mut engine = tin_core::engine::ProvenanceEngine::new(config, w.num_vertices)
        .expect("benchmark configs are valid");
    if every > 0 {
        let store =
            tin_core::checkpoint::CheckpointStore::open(&dir).expect("scratch dir is writable");
        engine = engine
            .with_durable_checkpoints(store, every)
            .expect("interval is positive");
    }
    engine.process_all(&w.interactions).expect("valid stream");
    std::hint::black_box(engine.report());
    let mem = scope.finish();
    let _ = std::fs::remove_dir_all(&dir);
    mem.peak_delta_bytes
}

/// Checkpoint cost per interval for one workload: the cost of a single
/// end-state capture and atomic save, plus end-to-end overhead at several
/// checkpoint intervals against the disabled baseline.
fn run_checkpoint_section(config: &PolicyConfig, w: &Workload, reps: usize) -> CheckpointSection {
    let len = w.interactions.len();
    // 0 = disabled baseline; then roughly 4 and 16 checkpoints per pass.
    let intervals = [0usize, len.div_ceil(4).max(1), len.div_ceil(16).max(1)];

    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); intervals.len()];
    for _ in 0..reps {
        for (i, &every) in intervals.iter().enumerate() {
            samples[i].push(time_durable_pass(config, w, every));
        }
    }
    let stats: Vec<TimingStats> = samples
        .iter_mut()
        .map(|s| TimingStats::from_samples(s))
        .collect();
    let baseline_median = stats[0].median_secs;
    let rows = intervals
        .iter()
        .zip(stats)
        .map(|(&every, timing)| CheckpointIntervalRow {
            checkpoint_every: every,
            timing,
            overhead_percent: if baseline_median > 0.0 {
                (timing.median_secs / baseline_median - 1.0) * 100.0
            } else {
                0.0
            },
            checkpoints_per_pass: len.checked_div(every).unwrap_or(0),
            peak_alloc_bytes: alloc_peak_durable(config, w, every),
        })
        .collect();

    // Single end-state capture and atomic save, median of 5.
    let mut engine = tin_core::engine::ProvenanceEngine::new(config, w.num_vertices)
        .expect("benchmark configs are valid");
    engine.process_all(&w.interactions).expect("valid stream");
    let mut capture_samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            let checkpoint = engine.checkpoint().expect("policy supports checkpoints");
            std::hint::black_box(&checkpoint);
            start.elapsed().as_secs_f64()
        })
        .collect();
    let capture_secs = TimingStats::from_samples(&mut capture_samples).median_secs;
    let checkpoint = engine.checkpoint().expect("policy supports checkpoints");
    let encoded_bytes = checkpoint.encode().len();
    let dir = checkpoint_scratch_dir();
    let mut store =
        tin_core::checkpoint::CheckpointStore::open(&dir).expect("scratch dir is writable");
    let start = Instant::now();
    store.save(&checkpoint).expect("scratch dir is writable");
    let save_secs = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);

    CheckpointSection {
        policy: config.key(),
        capture_secs,
        save_secs,
        encoded_bytes,
        rows,
    }
}

struct RecoveryRow {
    /// In-memory recovery-snapshot interval (interactions between
    /// snapshots): bounds the replay work a recovery has to redo.
    snapshot_every: usize,
    /// Measured recovery-time objective: wall-clock from failure detection
    /// to the end of replay, per [`tin_shard::RecoveryStats::last_rto_secs`].
    rto: TimingStats,
    /// Most interactions any rep's recovery had to replay (worst case over
    /// the K reps; bounded above by `snapshot_every`).
    replayed_interactions: usize,
    reps: usize,
}

struct RecoverySection {
    policy: String,
    shards: usize,
    rows: Vec<RecoveryRow>,
}

/// One self-healing pass: kill one worker mid-stream, let the supervised
/// engine respawn + restore + replay, and read back the measured RTO.
/// Returns `(last_rto_secs, replayed_interactions)`.
fn time_recovery_pass(
    config: &PolicyConfig,
    w: &Workload,
    shards: usize,
    snapshot_every: usize,
) -> (f64, usize) {
    let policy = tin_shard::RecoveryPolicy {
        snapshot_every,
        restart_backoff: std::time::Duration::from_millis(1),
        ..Default::default()
    };
    let mut engine = ShardedEngine::new(config, w.num_vertices, shards)
        .expect("benchmark configs are valid")
        .with_self_healing(policy)
        .expect("recovery policy is valid");
    let kill_at = w.interactions.len() / 2;
    for (i, r) in w.interactions.iter().enumerate() {
        if i == kill_at {
            engine
                .inject_worker_panic(i % shards)
                .expect("workers healthy before the kill");
        }
        engine.process(r).expect("self-healing absorbs the kill");
    }
    std::hint::black_box(engine.report().expect("workers healthy"));
    let stats = engine.recovery_stats();
    assert!(
        stats.recoveries >= 1,
        "the injected worker panic must trigger a recovery"
    );
    (stats.last_rto_secs, stats.replayed_interactions)
}

/// Measured recovery-time objective at two snapshot intervals: K
/// interleaved reps per interval, each killing one worker halfway through
/// the stream on a self-healing sharded engine. The RTO is the engine's own
/// failure-to-replay-complete clock, so it isolates recovery cost from the
/// surrounding pass.
fn run_recovery_section(config: &PolicyConfig, w: &Workload, reps: usize) -> RecoverySection {
    // Every pass kills one worker on purpose; keep the resulting panic
    // messages out of the report. Non-worker panics still print.
    let prev = std::sync::Arc::new(std::panic::take_hook());
    let fwd = prev.clone();
    std::panic::set_hook(Box::new(move |info| {
        let worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("tin-shard"));
        if !worker {
            fwd(info);
        }
    }));

    let len = w.interactions.len();
    let shards = 4usize;
    // Roughly 4 and 16 snapshots per pass — the same interval grid as the
    // durable-checkpoint section, so replay-bound effects line up.
    let intervals = [len.div_ceil(4).max(1), len.div_ceil(16).max(1)];

    let mut rto_samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); intervals.len()];
    let mut replayed: Vec<usize> = vec![0; intervals.len()];
    for _ in 0..reps {
        for (i, &every) in intervals.iter().enumerate() {
            let (rto, n) = time_recovery_pass(config, w, shards, every);
            rto_samples[i].push(rto);
            replayed[i] = replayed[i].max(n);
        }
    }
    let rows = intervals
        .iter()
        .zip(rto_samples.iter_mut())
        .zip(replayed)
        .map(
            |((&snapshot_every, samples), replayed_interactions)| RecoveryRow {
                snapshot_every,
                rto: TimingStats::from_samples(samples),
                replayed_interactions,
                reps,
            },
        )
        .collect();
    std::panic::set_hook(Box::new(move |info| prev(info)));
    RecoverySection {
        policy: config.key(),
        shards,
        rows,
    }
}

/// One telemetry-overhead measurement mode for the sequential engine.
#[derive(Clone, Copy)]
enum TelemetryMode {
    /// No observability at all — the uninstrumented baseline.
    Plain,
    /// Observability attached, no telemetry stream.
    Obs,
    /// Observability plus a live JSONL telemetry stream at the given
    /// interval, written into `std::io::sink()` so the measurement isolates
    /// snapshot + delta-encoding + serialisation cost from disk speed.
    ObsTelemetry(usize),
}

/// A telemetry sink that only counts: bytes written and records (newlines),
/// shared through atomics so the counters survive the engine taking
/// ownership of the sink.
struct CountingSink {
    bytes: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    records: std::sync::Arc<std::sync::atomic::AtomicUsize>,
}

impl std::io::Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        use std::sync::atomic::Ordering::Relaxed;
        self.bytes.fetch_add(buf.len(), Relaxed);
        self.records
            .fetch_add(buf.iter().filter(|&&b| b == b'\n').count(), Relaxed);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One timed sequential-engine pass in a telemetry-overhead mode. Engine
/// construction is excluded from the timed region, matching
/// [`time_engine_pass`]; the telemetry mode pays the end-of-stream `final`
/// record a real caller emits too (a no-op in the other modes).
fn time_telemetry_pass(config: &PolicyConfig, w: &Workload, mode: TelemetryMode) -> f64 {
    let mut passes = 0u32;
    let mut timed = 0.0f64;
    loop {
        let mut engine = tin_core::engine::ProvenanceEngine::new(config, w.num_vertices)
            .expect("benchmark configs are valid");
        match mode {
            TelemetryMode::Plain => {}
            TelemetryMode::Obs => engine = engine.with_observability(tin_obs::Obs::new()),
            TelemetryMode::ObsTelemetry(every) => {
                engine = engine
                    .with_observability(tin_obs::Obs::new())
                    .with_telemetry(tin_obs::Telemetry::new(Box::new(std::io::sink())), every)
                    .expect("interval is positive");
            }
        }
        let start = Instant::now();
        engine.process_all(&w.interactions).expect("valid stream");
        engine
            .emit_telemetry("final")
            .expect("sink writes cannot fail");
        std::hint::black_box(engine.report());
        timed += start.elapsed().as_secs_f64();
        passes += 1;
        if timed >= MIN_MEASURE_SECS {
            break;
        }
    }
    timed / f64::from(passes)
}

struct TelemetryOverheadRow {
    mode: &'static str,
    timing: TimingStats,
    overhead_vs_plain_percent: f64,
}

struct TelemetryOverheadSection {
    policy: String,
    telemetry_every: usize,
    records_per_pass: usize,
    bytes_per_pass: usize,
    /// The headline number: obs+telemetry vs obs-only, median-over-median —
    /// what the live stream itself costs on an already-instrumented engine.
    telemetry_overhead_percent: f64,
    rows: Vec<TelemetryOverheadRow>,
}

/// Telemetry streaming cost for one workload: K interleaved reps of the
/// three modes (uninstrumented / obs-only / obs + telemetry into a null
/// sink at `every = max(1024, len/16)`, the interval the CLI defaults
/// approximate at scale), plus one untimed counting pass for the record
/// and byte volume.
fn run_telemetry_overhead(
    config: &PolicyConfig,
    w: &Workload,
    reps: usize,
) -> TelemetryOverheadSection {
    let every = (w.interactions.len() / 16).max(1024);
    let modes = [
        ("plain", TelemetryMode::Plain),
        ("obs", TelemetryMode::Obs),
        ("obs_telemetry", TelemetryMode::ObsTelemetry(every)),
    ];
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); modes.len()];
    for _ in 0..reps {
        for (i, (_, mode)) in modes.iter().enumerate() {
            samples[i].push(time_telemetry_pass(config, w, *mode));
        }
    }
    let stats: Vec<TimingStats> = samples
        .iter_mut()
        .map(|s| TimingStats::from_samples(s))
        .collect();
    let plain_median = stats[0].median_secs;
    let obs_median = stats[1].median_secs;
    let telemetry_median = stats[2].median_secs;
    let overhead = |vs: f64, secs: f64| {
        if vs > 0.0 {
            (secs / vs - 1.0) * 100.0
        } else {
            0.0
        }
    };

    // Untimed counting pass: how much the stream actually emits.
    let bytes = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let records = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let sink = CountingSink {
        bytes: bytes.clone(),
        records: records.clone(),
    };
    let mut engine = tin_core::engine::ProvenanceEngine::new(config, w.num_vertices)
        .expect("benchmark configs are valid")
        .with_observability(tin_obs::Obs::new())
        .with_telemetry(tin_obs::Telemetry::new(Box::new(sink)), every)
        .expect("interval is positive");
    engine.process_all(&w.interactions).expect("valid stream");
    engine
        .emit_telemetry("final")
        .expect("sink writes cannot fail");

    TelemetryOverheadSection {
        policy: config.key(),
        telemetry_every: every,
        records_per_pass: records.load(std::sync::atomic::Ordering::Relaxed),
        bytes_per_pass: bytes.load(std::sync::atomic::Ordering::Relaxed),
        telemetry_overhead_percent: overhead(obs_median, telemetry_median),
        rows: modes
            .iter()
            .zip(stats)
            .map(|((label, _), timing)| TelemetryOverheadRow {
                mode: label,
                timing,
                overhead_vs_plain_percent: overhead(plain_median, timing.median_secs),
            })
            .collect(),
    }
}

struct SweepRow {
    dense_threshold: f64,
    timing: TimingStats,
    peak_footprint_bytes: usize,
    final_footprint_bytes: usize,
    reps: usize,
}

/// `--sweep-threshold`: adaptive promotion threshold sweep, K interleaved
/// reps per setting.
fn run_threshold_sweep(w: &Workload, reps: usize) -> Vec<SweepRow> {
    let thresholds: Vec<f64> = (1..=9).map(|i| f64::from(i) / 10.0).collect();
    let configs: Vec<PolicyConfig> = thresholds
        .iter()
        .map(|&dense_threshold| PolicyConfig::AdaptiveProportional { dense_threshold })
        .collect();
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); configs.len()];
    for _ in 0..reps {
        for (i, config) in configs.iter().enumerate() {
            samples[i].push(time_tracker_pass(config, w));
        }
    }
    thresholds
        .iter()
        .zip(configs.iter())
        .zip(samples.iter_mut())
        .map(|((&dense_threshold, config), times)| {
            let pass = instrument_policy(config, w);
            SweepRow {
                dense_threshold,
                timing: TimingStats::from_samples(times),
                peak_footprint_bytes: pass.peak_footprint_bytes,
                final_footprint_bytes: pass.final_footprint_bytes,
                reps,
            }
        })
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let reps: usize = std::env::var("TIN_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
        .max(1);
    let mut out_path = "BENCH_PR10.json".to_string();
    let mut sweep_threshold = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--sweep-threshold" => sweep_threshold = true,
            other => {
                eprintln!("unknown argument {other:?} (supported: --out PATH, --sweep-threshold)");
                std::process::exit(2);
            }
        }
    }

    let scale_key = match scale {
        ScaleProfile::Tiny => "tiny",
        ScaleProfile::Small => "small",
        ScaleProfile::Medium => "medium",
        ScaleProfile::Paper => "paper",
    };
    println!(
        "bench_baseline: scale={scale_key}, seed={seed}, reps={reps} (interleaved, median){}",
        if sweep_threshold {
            ", threshold sweep on"
        } else {
            ""
        }
    );

    let kinds = [DatasetKind::Bitcoin, DatasetKind::Taxis];
    let mut workload_blobs = Vec::new();
    let mut scaling_blobs = Vec::new();
    let mut checkpoint_blobs = Vec::new();
    let mut recovery_blobs = Vec::new();
    let mut telemetry_blobs = Vec::new();
    let mut sweep_blobs = Vec::new();
    let mut measured_prop_sparse: Vec<(String, f64)> = Vec::new();
    for kind in kinds {
        let w = Workload::generate(kind, scale);
        println!("\n  {}", w.describe());

        // Per-policy table: K interleaved reps, median + min/max.
        let rows = run_policy_table(&w, reps);
        for row in &rows {
            let (median, lo, hi) = row.timing.per_sec(w.interactions.len());
            println!(
                "    {:<18} {:>12.0} it/s  [{:>12.0} .. {:>12.0}]  p99 {:>8} ns  peak {:>12}",
                row.key,
                median,
                lo,
                hi,
                row.latency.p99_ns,
                tin_memstats::format_bytes(row.peak_footprint_bytes),
            );
            if row.key == "prop_sparse" {
                measured_prop_sparse.push((kind.key().to_string(), median));
            }
        }
        let policy_blobs: Vec<String> = rows
            .iter()
            .map(|r| {
                let (median, lo, hi) = r.timing.per_sec(w.interactions.len());
                format!(
                    concat!(
                        "{{\"policy\": \"{}\", \"runtime_secs\": {}, ",
                        "\"runtime_secs_min\": {}, \"runtime_secs_max\": {}, ",
                        "\"interactions_per_sec\": {}, ",
                        "\"interactions_per_sec_min\": {}, \"interactions_per_sec_max\": {}, ",
                        "\"latency_p50_ns\": {}, \"latency_p90_ns\": {}, ",
                        "\"latency_p99_ns\": {}, \"latency_max_ns\": {}, ",
                        "\"peak_footprint_bytes\": {}, ",
                        "\"final_footprint_bytes\": {}, \"peak_alloc_bytes\": {}, \"reps\": {}}}"
                    ),
                    json_escape(&r.key),
                    fmt_f64(r.timing.median_secs),
                    fmt_f64(r.timing.min_secs),
                    fmt_f64(r.timing.max_secs),
                    fmt_f64(median),
                    fmt_f64(lo),
                    fmt_f64(hi),
                    r.latency.p50_ns,
                    r.latency.p90_ns,
                    r.latency.p99_ns,
                    r.latency.max_ns,
                    r.peak_footprint_bytes,
                    r.final_footprint_bytes,
                    r.peak_alloc_bytes,
                    r.reps,
                )
            })
            .collect();
        workload_blobs.push(format!(
            concat!(
                "{{\"dataset\": \"{}\", \"num_vertices\": {}, \"num_interactions\": {},\n",
                "     \"policies\": [\n      {}\n     ]}}"
            ),
            kind.key(),
            w.num_vertices,
            w.interactions.len(),
            policy_blobs.join(",\n      "),
        ));

        // Sequential-vs-sharded scaling on the workload's hot-path policy.
        let scaling_config = if sparse_proportional_feasible(w.num_vertices, w.interactions.len()) {
            PolicyConfig::Plain(SelectionPolicy::ProportionalSparse)
        } else {
            PolicyConfig::Plain(SelectionPolicy::Fifo)
        };
        println!("    scaling ({}):", scaling_config.key());
        for row in run_scaling(&scaling_config, &w, reps) {
            let (median, _, _) = row.timing.per_sec(w.interactions.len());
            let label = match row.mode {
                "sequential" => "sequential".to_string(),
                _ => format!("sharded x{}", row.shards),
            };
            println!(
                "      {label:<14} {median:>12.0} it/s  speedup {:.2}x",
                row.speedup_vs_sequential
            );
            scaling_blobs.push(format!(
                concat!(
                    "{{\"dataset\": \"{}\", \"policy\": \"{}\", \"mode\": \"{}\", ",
                    "\"shards\": {}, \"runtime_secs\": {}, \"runtime_secs_min\": {}, ",
                    "\"runtime_secs_max\": {}, \"interactions_per_sec\": {}, ",
                    "\"speedup_vs_sequential\": {}, \"reps\": {}}}"
                ),
                kind.key(),
                json_escape(&scaling_config.key()),
                row.mode,
                row.shards,
                fmt_f64(row.timing.median_secs),
                fmt_f64(row.timing.min_secs),
                fmt_f64(row.timing.max_secs),
                fmt_f64(median),
                fmt_f64(row.speedup_vs_sequential),
                reps,
            ));
        }

        // Durable-checkpoint cost on the same hot-path policy: single
        // capture/save cost plus end-to-end overhead per interval.
        let ckpt = run_checkpoint_section(&scaling_config, &w, reps);
        println!(
            "    checkpoint ({}): capture {:.3} ms, save {:.3} ms, {} bytes",
            ckpt.policy,
            ckpt.capture_secs * 1e3,
            ckpt.save_secs * 1e3,
            ckpt.encoded_bytes,
        );
        let interval_blobs: Vec<String> = ckpt
            .rows
            .iter()
            .map(|row| {
                let label = if row.checkpoint_every == 0 {
                    "disabled".to_string()
                } else {
                    format!("every {}", row.checkpoint_every)
                };
                println!(
                    "      {label:<14} {:>10.3} ms/pass  overhead {:+6.2}%  alloc peak {:>12}",
                    row.timing.median_secs * 1e3,
                    row.overhead_percent,
                    tin_memstats::format_bytes(row.peak_alloc_bytes),
                );
                format!(
                    concat!(
                        "{{\"checkpoint_every\": {}, \"checkpoints_per_pass\": {}, ",
                        "\"runtime_secs\": {}, \"runtime_secs_min\": {}, ",
                        "\"runtime_secs_max\": {}, \"overhead_percent\": {}, ",
                        "\"peak_alloc_bytes\": {}}}"
                    ),
                    row.checkpoint_every,
                    row.checkpoints_per_pass,
                    fmt_f64(row.timing.median_secs),
                    fmt_f64(row.timing.min_secs),
                    fmt_f64(row.timing.max_secs),
                    fmt_f64(row.overhead_percent),
                    row.peak_alloc_bytes,
                )
            })
            .collect();
        checkpoint_blobs.push(format!(
            concat!(
                "{{\"dataset\": \"{}\", \"policy\": \"{}\", \"capture_secs\": {}, ",
                "\"save_secs\": {}, \"encoded_bytes\": {}, \"reps\": {},\n",
                "     \"intervals\": [\n      {}\n     ]}}"
            ),
            kind.key(),
            json_escape(&ckpt.policy),
            fmt_f64(ckpt.capture_secs),
            fmt_f64(ckpt.save_secs),
            ckpt.encoded_bytes,
            reps,
            interval_blobs.join(",\n      "),
        ));

        // Measured RTO of the self-healing sharded engine at two snapshot
        // intervals, same hot-path policy.
        let recovery = run_recovery_section(&scaling_config, &w, reps);
        println!(
            "    recovery ({}, {} shards):",
            recovery.policy, recovery.shards
        );
        let recovery_rows: Vec<String> = recovery
            .rows
            .iter()
            .map(|row| {
                println!(
                    "      snapshot every {:<8} rto {:>10.3} ms  replayed <= {}",
                    row.snapshot_every,
                    row.rto.median_secs * 1e3,
                    row.replayed_interactions,
                );
                format!(
                    concat!(
                        "{{\"snapshot_every\": {}, \"rto_secs\": {}, ",
                        "\"rto_secs_min\": {}, \"rto_secs_max\": {}, ",
                        "\"replayed_interactions\": {}, \"reps\": {}}}"
                    ),
                    row.snapshot_every,
                    fmt_f64(row.rto.median_secs),
                    fmt_f64(row.rto.min_secs),
                    fmt_f64(row.rto.max_secs),
                    row.replayed_interactions,
                    row.reps,
                )
            })
            .collect();
        recovery_blobs.push(format!(
            concat!(
                "{{\"dataset\": \"{}\", \"policy\": \"{}\", \"shards\": {},\n",
                "     \"intervals\": [\n      {}\n     ]}}"
            ),
            kind.key(),
            json_escape(&recovery.policy),
            recovery.shards,
            recovery_rows.join(",\n      "),
        ));

        // Live-telemetry streaming cost on the same hot-path policy.
        let telemetry = run_telemetry_overhead(&scaling_config, &w, reps);
        println!(
            "    telemetry overhead ({}, every {}):",
            telemetry.policy, telemetry.telemetry_every
        );
        let mode_blobs: Vec<String> = telemetry
            .rows
            .iter()
            .map(|row| {
                println!(
                    "      {:<14} {:>10.3} ms/pass  vs plain {:+6.2}%",
                    row.mode,
                    row.timing.median_secs * 1e3,
                    row.overhead_vs_plain_percent,
                );
                format!(
                    concat!(
                        "{{\"mode\": \"{}\", \"runtime_secs\": {}, ",
                        "\"runtime_secs_min\": {}, \"runtime_secs_max\": {}, ",
                        "\"overhead_vs_plain_percent\": {}}}"
                    ),
                    row.mode,
                    fmt_f64(row.timing.median_secs),
                    fmt_f64(row.timing.min_secs),
                    fmt_f64(row.timing.max_secs),
                    fmt_f64(row.overhead_vs_plain_percent),
                )
            })
            .collect();
        println!(
            "      streaming cost vs obs: {:+.2}%  ({} records, {} per pass)",
            telemetry.telemetry_overhead_percent,
            telemetry.records_per_pass,
            tin_memstats::format_bytes(telemetry.bytes_per_pass),
        );
        telemetry_blobs.push(format!(
            concat!(
                "{{\"dataset\": \"{}\", \"policy\": \"{}\", \"telemetry_every\": {}, ",
                "\"records_per_pass\": {}, \"bytes_per_pass\": {}, ",
                "\"telemetry_overhead_percent\": {}, \"reps\": {},\n",
                "     \"modes\": [\n      {}\n     ]}}"
            ),
            kind.key(),
            json_escape(&telemetry.policy),
            telemetry.telemetry_every,
            telemetry.records_per_pass,
            telemetry.bytes_per_pass,
            fmt_f64(telemetry.telemetry_overhead_percent),
            reps,
            mode_blobs.join(",\n      "),
        ));

        // Optional adaptive-promotion-threshold sweep.
        if sweep_threshold && sparse_proportional_feasible(w.num_vertices, w.interactions.len()) {
            println!("    threshold sweep (prop_adaptive):");
            for row in run_threshold_sweep(&w, reps) {
                let (median, _, _) = row.timing.per_sec(w.interactions.len());
                println!(
                    "      t={:.1}  {median:>12.0} it/s  peak {:>12}",
                    row.dense_threshold,
                    tin_memstats::format_bytes(row.peak_footprint_bytes),
                );
                sweep_blobs.push(format!(
                    concat!(
                        "{{\"dataset\": \"{}\", \"dense_threshold\": {}, ",
                        "\"runtime_secs\": {}, \"runtime_secs_min\": {}, ",
                        "\"runtime_secs_max\": {}, \"interactions_per_sec\": {}, ",
                        "\"peak_footprint_bytes\": {}, \"final_footprint_bytes\": {}, ",
                        "\"reps\": {}}}"
                    ),
                    kind.key(),
                    fmt_f64(row.dense_threshold),
                    fmt_f64(row.timing.median_secs),
                    fmt_f64(row.timing.min_secs),
                    fmt_f64(row.timing.max_secs),
                    fmt_f64(median),
                    row.peak_footprint_bytes,
                    row.final_footprint_bytes,
                    row.reps,
                ));
            }
        }
    }

    // Speedup of the proportional-sparse hot path vs. the pre-change
    // reference (null outside the reference scale or when no reference
    // number was recorded for a dataset).
    let mut speedups = Vec::new();
    for (dataset, now) in &measured_prop_sparse {
        let pre = PRE_CHANGE_PROP_SPARSE
            .iter()
            .find(|(k, _)| k == dataset)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        let ratio = if pre.is_finite() && pre > 0.0 && scale == ScaleProfile::Small {
            now / pre
        } else {
            f64::NAN
        };
        speedups.push(format!(
            "{{\"dataset\": \"{}\", \"pre_change_interactions_per_sec\": {}, \"measured_interactions_per_sec\": {}, \"speedup\": {}}}",
            json_escape(dataset),
            fmt_f64(pre),
            fmt_f64(*now),
            fmt_f64(ratio),
        ));
        if ratio.is_finite() {
            println!("\n  prop_sparse speedup on {dataset}: {ratio:.2}x vs pre-change baseline");
        }
    }

    let sweep_section = if sweep_blobs.is_empty() {
        String::new()
    } else {
        format!(
            "  \"threshold_sweep\": [\n    {}\n  ],\n",
            sweep_blobs.join(",\n    ")
        )
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema_version\": 5,\n",
            "  \"generated_by\": \"bench_baseline\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"sample_interval\": {},\n",
            "  \"methodology\": \"median of K interleaved repetitions; min/max alongside\",\n",
            "  \"workloads\": [\n    {}\n  ],\n",
            "  \"sharded_scaling\": [\n    {}\n  ],\n",
            "  \"checkpoint_cost\": [\n    {}\n  ],\n",
            "  \"recovery_time\": [\n    {}\n  ],\n",
            "  \"telemetry_overhead\": [\n    {}\n  ],\n",
            "{}",
            "  \"prop_sparse_reference\": {{\n",
            "    \"description\": \"pre-optimisation proportional-sparse throughput, ",
            "measured at the PR 1 tree (commit a14c5bc) with TIN_SCALE=small TIN_SEED=42\",\n",
            "    \"entries\": [\n      {}\n    ]\n",
            "  }}\n",
            "}}\n"
        ),
        scale_key,
        seed,
        SAMPLE_INTERVAL,
        workload_blobs.join(",\n    "),
        scaling_blobs.join(",\n    "),
        checkpoint_blobs.join(",\n    "),
        recovery_blobs.join(",\n    "),
        telemetry_blobs.join(",\n    "),
        sweep_section,
        speedups.join(",\n      "),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {out_path}");
}
