//! `bench_baseline`: machine-readable per-policy performance baseline.
//!
//! Runs every feasible policy configuration over fixed-seed synthetic
//! workloads (Bitcoin- and taxi-shaped, the two stream shapes the paper's
//! evaluation leans on) and writes `BENCH_PR2.json`: interactions/sec, peak
//! provenance footprint and allocator peak per policy. The JSON schema is
//! documented in the repository README ("Benchmark baseline"); numbers from
//! this emitter are the perf trajectory that later PRs are measured against.
//!
//! Scale is controlled by `TIN_SCALE` (use `TIN_SCALE=tiny` as CI smoke
//! mode), the seed by `TIN_SEED`, timing repetitions by `TIN_BENCH_REPS`
//! (default 3; the fastest rep is reported), and the output path by
//! `--out PATH` (default `BENCH_PR2.json`).

use std::time::Instant;

use tin_bench::{
    dense_proportional_feasible, scale_from_env, seed_from_env, sparse_proportional_feasible,
    Workload,
};
use tin_core::ids::VertexId;
use tin_core::policy::{PolicyConfig, SelectionPolicy};
use tin_core::tracker::build_tracker;
use tin_datasets::{DatasetKind, ScaleProfile};

/// Interactions between two footprint samples of the instrumented pass.
const SAMPLE_INTERVAL: usize = 16_384;

/// Pre-optimisation reference throughput (interactions/sec) for the
/// proportional-sparse hot path, measured by this same binary at the PR 1
/// tree (commit a14c5bc) with `TIN_SCALE=small`, `TIN_SEED=42`, 3 reps, on
/// the PR 2 build machine. Recorded here so every later run reports a
/// machine-readable speedup against the pre-change baseline.
const PRE_CHANGE_PROP_SPARSE: &[(&str, f64)] = &[("bitcoin", PRE_BITCOIN), ("taxis", PRE_TAXIS)];
const PRE_BITCOIN: f64 = 9_720.99;
const PRE_TAXIS: f64 = 18_222_767.42;

struct PolicyRow {
    key: String,
    runtime_secs: f64,
    interactions_per_sec: f64,
    peak_footprint_bytes: usize,
    final_footprint_bytes: usize,
    peak_alloc_bytes: usize,
    reps: usize,
}

/// The policy configurations measured on every workload, in output order.
fn configs_for(w: &Workload) -> Vec<PolicyConfig> {
    let n = w.num_vertices;
    let k = 64.min(n.max(2) - 1).max(1);
    let m = 64.min(n).max(1);
    let mut configs = vec![
        PolicyConfig::Plain(SelectionPolicy::NoProvenance),
        PolicyConfig::Plain(SelectionPolicy::LeastRecentlyBorn),
        PolicyConfig::Plain(SelectionPolicy::MostRecentlyBorn),
        PolicyConfig::Plain(SelectionPolicy::Fifo),
        PolicyConfig::Plain(SelectionPolicy::Lifo),
    ];
    if dense_proportional_feasible(n) {
        configs.push(PolicyConfig::Plain(SelectionPolicy::ProportionalDense));
    }
    if sparse_proportional_feasible(n, w.interactions.len()) {
        configs.push(PolicyConfig::Plain(SelectionPolicy::ProportionalSparse));
        configs.push(PolicyConfig::adaptive());
    }
    configs.push(PolicyConfig::Selective {
        tracked: (0..k as u32).map(VertexId::new).collect(),
    });
    configs.push(PolicyConfig::Grouped {
        num_groups: m,
        group_of: (0..n).map(|v| (v % m) as u32).collect(),
    });
    configs.push(PolicyConfig::Windowed { window: 4096 });
    configs.push(PolicyConfig::budget(64));
    configs
}

/// Run one policy over one workload: an instrumented pass (footprint
/// sampling, allocator peak) followed by `reps` timed passes.
fn run_policy(config: &PolicyConfig, w: &Workload, reps: usize) -> PolicyRow {
    // Instrumented pass: periodic logical-footprint samples + allocator peak.
    let scope = tin_memstats::MemoryScope::start();
    let mut tracker = build_tracker(config, w.num_vertices).expect("benchmark configs are valid");
    let mut peak_footprint = 0usize;
    for (i, r) in w.interactions.iter().enumerate() {
        tracker.process(r);
        if i % SAMPLE_INTERVAL == 0 {
            peak_footprint = peak_footprint.max(tracker.footprint().total());
        }
    }
    let final_footprint = tracker.footprint().total();
    peak_footprint = peak_footprint.max(final_footprint);
    let mem = scope.finish();
    drop(tracker);

    // Timed passes: fastest of `reps` measurements. Small workloads finish
    // in microseconds, far below timer noise, so each measurement loops the
    // whole pass until at least ~50 ms have elapsed and reports the mean
    // per-pass time of that batch.
    const MIN_MEASURE_SECS: f64 = 0.05;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut passes = 0u32;
        let start = Instant::now();
        loop {
            let mut tracker =
                build_tracker(config, w.num_vertices).expect("benchmark configs are valid");
            tracker.process_all(&w.interactions);
            passes += 1;
            if start.elapsed().as_secs_f64() >= MIN_MEASURE_SECS {
                break;
            }
        }
        let secs = start.elapsed().as_secs_f64() / f64::from(passes);
        best = best.min(secs);
    }
    let throughput = if best > 0.0 {
        w.interactions.len() as f64 / best
    } else {
        0.0
    };
    PolicyRow {
        key: config.key(),
        runtime_secs: best,
        interactions_per_sec: throughput,
        peak_footprint_bytes: peak_footprint,
        final_footprint_bytes: final_footprint,
        peak_alloc_bytes: mem.peak_delta_bytes,
        reps,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let reps: usize = std::env::var("TIN_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let mut out_path = "BENCH_PR2.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} (supported: --out PATH)");
                std::process::exit(2);
            }
        }
    }

    let scale_key = match scale {
        ScaleProfile::Tiny => "tiny",
        ScaleProfile::Small => "small",
        ScaleProfile::Medium => "medium",
        ScaleProfile::Paper => "paper",
    };
    println!("bench_baseline: scale={scale_key}, seed={seed}, reps={reps}");

    let kinds = [DatasetKind::Bitcoin, DatasetKind::Taxis];
    let mut workload_blobs = Vec::new();
    let mut measured_prop_sparse: Vec<(String, f64)> = Vec::new();
    for kind in kinds {
        let w = Workload::generate(kind, scale);
        println!("\n  {}", w.describe());
        let mut rows = Vec::new();
        for config in configs_for(&w) {
            let row = run_policy(&config, &w, reps);
            println!(
                "    {:<18} {:>12.0} it/s  peak {:>12}  alloc-peak {:>12}",
                row.key,
                row.interactions_per_sec,
                tin_memstats::format_bytes(row.peak_footprint_bytes),
                tin_memstats::format_bytes(row.peak_alloc_bytes),
            );
            if row.key == "prop_sparse" {
                measured_prop_sparse.push((kind.key().to_string(), row.interactions_per_sec));
            }
            rows.push(row);
        }
        let policy_blobs: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "{{\"policy\": \"{}\", \"runtime_secs\": {}, ",
                        "\"interactions_per_sec\": {}, \"peak_footprint_bytes\": {}, ",
                        "\"final_footprint_bytes\": {}, \"peak_alloc_bytes\": {}, \"reps\": {}}}"
                    ),
                    json_escape(&r.key),
                    fmt_f64(r.runtime_secs),
                    fmt_f64(r.interactions_per_sec),
                    r.peak_footprint_bytes,
                    r.final_footprint_bytes,
                    r.peak_alloc_bytes,
                    r.reps,
                )
            })
            .collect();
        workload_blobs.push(format!(
            concat!(
                "{{\"dataset\": \"{}\", \"num_vertices\": {}, \"num_interactions\": {},\n",
                "     \"policies\": [\n      {}\n     ]}}"
            ),
            kind.key(),
            w.num_vertices,
            w.interactions.len(),
            policy_blobs.join(",\n      "),
        ));
    }

    // Speedup of the proportional-sparse hot path vs. the pre-change
    // reference (null outside the reference scale or when no reference
    // number was recorded for a dataset).
    let mut speedups = Vec::new();
    for (dataset, now) in &measured_prop_sparse {
        let pre = PRE_CHANGE_PROP_SPARSE
            .iter()
            .find(|(k, _)| k == dataset)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        let ratio = if pre.is_finite() && pre > 0.0 && scale == ScaleProfile::Small {
            now / pre
        } else {
            f64::NAN
        };
        speedups.push(format!(
            "{{\"dataset\": \"{}\", \"pre_change_interactions_per_sec\": {}, \"measured_interactions_per_sec\": {}, \"speedup\": {}}}",
            json_escape(dataset),
            fmt_f64(pre),
            fmt_f64(*now),
            fmt_f64(ratio),
        ));
        if ratio.is_finite() {
            println!("\n  prop_sparse speedup on {dataset}: {ratio:.2}x vs pre-change baseline");
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema_version\": 1,\n",
            "  \"generated_by\": \"bench_baseline\",\n",
            "  \"scale\": \"{}\",\n",
            "  \"seed\": {},\n",
            "  \"sample_interval\": {},\n",
            "  \"workloads\": [\n    {}\n  ],\n",
            "  \"prop_sparse_reference\": {{\n",
            "    \"description\": \"pre-optimisation proportional-sparse throughput, ",
            "measured at the PR 1 tree (commit a14c5bc) with TIN_SCALE=small TIN_SEED=42\",\n",
            "    \"entries\": [\n      {}\n    ]\n",
            "  }}\n",
            "}}\n"
        ),
        scale_key,
        seed,
        SAMPLE_INTERVAL,
        workload_blobs.join(",\n    "),
        speedups.join(",\n      "),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("\nwrote {out_path}");
}
