//! Figure 5: selective and grouped proportional provenance as a function of
//! the number of tracked vertices / groups k.
//!
//! For the three largest networks (Bitcoin, CTU, Prosper Loans) the paper
//! sweeps k ∈ {5, 20, 50, 100, 150, 200} and reports runtime and memory of
//! (a) selective tracking of the top-k contributing vertices and (b) grouped
//! tracking with k round-robin groups.

use tin_analytics::report::{format_bytes, format_secs, TextTable};
use tin_bench::{run_tracker, scale_from_env, Workload};
use tin_core::policy::PolicyConfig;
use tin_core::tracker::no_prov::NoProvTracker;
use tin_core::tracker::ProvenanceTracker;
use tin_datasets::DatasetKind;

const K_VALUES: [usize; 6] = [5, 20, 50, 100, 150, 200];

fn main() {
    let scale = scale_from_env();
    println!(
        "Reproducing Figure 5 (selective & grouped proportional provenance), scale = {scale:?}\n"
    );

    for kind in [
        DatasetKind::Bitcoin,
        DatasetKind::Ctu,
        DatasetKind::ProsperLoans,
    ] {
        let w = Workload::generate(kind, scale);
        println!("  {}", w.describe());

        // The tracked set for selective provenance: the top-k generators,
        // obtained with a NoProv pre-pass exactly as in Section 7.3.
        let mut baseline = NoProvTracker::new(w.num_vertices);
        baseline.process_all(&w.interactions);

        let mut table = TextTable::new(
            format!("Figure 5 ({}): runtime / memory vs k", kind.label()),
            &[
                "k",
                "selective runtime (s)",
                "selective memory",
                "grouped runtime (s)",
                "grouped memory",
            ],
        );
        for k in K_VALUES {
            let k = k.min(w.num_vertices.saturating_sub(1)).max(1);
            let tracked = baseline.top_k_generators(k);
            let selective = PolicyConfig::Selective { tracked };
            let (_, sel) = run_tracker(&selective, &w);

            let grouped = PolicyConfig::Grouped {
                num_groups: k,
                group_of: (0..w.num_vertices).map(|v| (v % k) as u32).collect(),
            };
            let (_, grp) = run_tracker(&grouped, &w);

            table.push_row(vec![
                k.to_string(),
                format_secs(sel.runtime_secs),
                format_bytes(sel.memory_bytes()),
                format_secs(grp.runtime_secs),
                format_bytes(grp.memory_bytes()),
            ]);
        }
        println!("{}", table.render());
        println!("CSV:\n{}", table.to_csv());
    }
}
