//! Figure 6: cumulative runtime and memory of sparse proportional provenance
//! as the stream is processed.
//!
//! The paper processes the first 500K interactions of Bitcoin and CTU and the
//! whole Prosper Loans stream, sampling cumulative CPU time and memory after
//! every chunk of interactions, to show the superlinear growth caused by the
//! ever-growing provenance lists.

use std::time::Instant;

use tin_analytics::report::{format_bytes, format_secs, TextTable};
use tin_bench::{scale_from_env, Workload};
use tin_core::tracker::proportional_sparse::ProportionalSparseTracker;
use tin_core::tracker::ProvenanceTracker;
use tin_datasets::DatasetKind;

const SAMPLES: usize = 10;

fn main() {
    let scale = scale_from_env();
    println!("Reproducing Figure 6 (cumulative cost of sparse proportional provenance), scale = {scale:?}\n");

    for kind in [
        DatasetKind::Bitcoin,
        DatasetKind::Ctu,
        DatasetKind::ProsperLoans,
    ] {
        let w = Workload::generate(kind, scale);
        println!("  {}", w.describe());
        let chunk = (w.interactions.len() / SAMPLES).max(1);

        let mut tracker = ProportionalSparseTracker::new(w.num_vertices);
        let mut table = TextTable::new(
            format!("Figure 6 ({}): cumulative time / memory", kind.label()),
            &[
                "#interactions",
                "cumulative time (s)",
                "provenance memory",
                "avg list length",
            ],
        );
        let mut elapsed = 0.0f64;
        for chunk_slice in w.interactions.chunks(chunk) {
            let start = Instant::now();
            tracker.process_all(chunk_slice);
            elapsed += start.elapsed().as_secs_f64();
            table.push_row(vec![
                tracker.interactions_processed().to_string(),
                format_secs(elapsed),
                format_bytes(tracker.footprint().total()),
                format!("{:.1}", tracker.average_list_length()),
            ]);
        }
        println!("{}", table.render());
        println!("CSV:\n{}", table.to_csv());
    }
}
