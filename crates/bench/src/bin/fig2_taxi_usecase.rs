//! Figure 2: accumulated quantities and their provenance at a single vertex
//! of the Taxis network after each incoming interaction.
//!
//! The paper watches vertex #79 (East Village). The synthetic emulation has
//! no named zones, so the binary watches the zone with the highest in-degree;
//! `TIN_WATCH_VERTEX` overrides the choice.

use tin_analytics::record_series;
use tin_analytics::report::TextTable;
use tin_bench::{scale_from_env, Workload};
use tin_core::graph::Tin;
use tin_core::ids::VertexId;
use tin_core::tracker::proportional_dense::ProportionalDenseTracker;
use tin_datasets::DatasetKind;

fn main() {
    let scale = scale_from_env();
    let w = Workload::generate(DatasetKind::Taxis, scale);
    println!("Reproducing Figure 2 (buffered quantities at one taxi zone), scale = {scale:?}");
    println!("  {}\n", w.describe());

    let tin = Tin::from_interactions(w.num_vertices, w.interactions.clone()).expect("valid");
    let watched = match std::env::var("TIN_WATCH_VERTEX")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
    {
        Some(raw) => VertexId::new(raw),
        None => tin
            .vertices()
            .max_by_key(|v| tin.in_degree(*v))
            .expect("non-empty"),
    };
    println!(
        "Watched zone: {watched} (in-degree {})",
        tin.in_degree(watched)
    );

    let mut tracker = ProportionalDenseTracker::new(w.num_vertices);
    let series = record_series(&mut tracker, &w.interactions, watched);

    let step = (series.samples.len() / 20).max(1);
    let mut table = TextTable::new(
        format!("Figure 2: accumulated passengers at zone {watched}"),
        &[
            "arrival#",
            "time",
            "from",
            "delivered",
            "buffered",
            "top origins (share)",
        ],
    );
    for s in series.samples.iter().step_by(step) {
        let top: Vec<String> = s
            .distribution
            .shares
            .iter()
            .take(3)
            .map(|(o, p)| format!("{o}:{:.0}%", p * 100.0))
            .collect();
        table.push_row(vec![
            s.interaction_index.to_string(),
            format!("{:.1}", s.time),
            s.from.to_string(),
            format!("{:.0}", s.delivered),
            format!("{:.1}", s.buffered),
            top.join(" "),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Series: {} arrivals, peak buffered {:.1}, final buffered {:.1}, {} distinct origin zones",
        series.samples.len(),
        series.peak_buffered(),
        series.final_buffered(),
        series.distinct_origins()
    );
    println!("\nCSV:\n{}", table.to_csv());
}
