//! Temporary profiling harness: pre-change (PR 1) vs current sparse kernels.
use std::time::Instant;
use tin_bench::Workload;
use tin_core::ids::Origin;
use tin_core::quantity::{qty_clamp_non_negative, qty_ge, qty_is_zero};
use tin_core::sparse_vec::SparseProvenance;
use tin_datasets::{DatasetKind, ScaleProfile};

type E = (Origin, f64);

/// The PR 1 merge: fresh allocation per merge.
fn old_merge_add_scaled(dst: &mut Vec<E>, src: &[E], factor: f64) {
    if src.is_empty() || qty_is_zero(factor) {
        return;
    }
    let mut merged = Vec::with_capacity(dst.len() + src.len());
    let mut i = 0;
    let mut j = 0;
    while i < dst.len() && j < src.len() {
        let (ao, aq) = dst[i];
        let (bo, bq) = src[j];
        match ao.cmp(&bo) {
            std::cmp::Ordering::Less => {
                merged.push((ao, aq));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                let q = factor * bq;
                if !qty_is_zero(q) {
                    merged.push((bo, q));
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let q = aq + factor * bq;
                if !qty_is_zero(q) {
                    merged.push((ao, q));
                }
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&dst[i..]);
    for &(bo, bq) in &src[j..] {
        let q = factor * bq;
        if !qty_is_zero(q) {
            merged.push((bo, q));
        }
    }
    *dst = merged;
}

fn old_scale(v: &mut Vec<E>, factor: f64) {
    if qty_is_zero(factor) {
        v.clear();
        return;
    }
    for (_, q) in v.iter_mut() {
        *q *= factor;
    }
    v.retain(|(_, q)| !qty_is_zero(*q));
}

fn old_add(v: &mut Vec<E>, origin: Origin, qty: f64) {
    if qty_is_zero(qty) {
        return;
    }
    match v.binary_search_by(|(o, _)| o.cmp(&origin)) {
        Ok(i) => v[i].1 += qty,
        Err(i) => v.insert(i, (origin, qty)),
    }
}

fn old_pass(w: &Workload) -> usize {
    let n = w.num_vertices;
    let mut vectors: Vec<Vec<E>> = (0..n).map(|_| Vec::new()).collect();
    let mut totals = vec![0.0f64; n];
    for r in &w.interactions {
        let s = r.src.index();
        let d = r.dst.index();
        let (src_vec, dst_vec) = if s < d {
            let (a, b) = vectors.split_at_mut(d);
            (&mut a[s], &mut b[0])
        } else {
            let (a, b) = vectors.split_at_mut(s);
            (&mut b[0], &mut a[d])
        };
        let src_total = totals[s];
        if qty_ge(r.qty, src_total) {
            old_merge_add_scaled(dst_vec, src_vec, 1.0);
            src_vec.clear();
            let newborn = qty_clamp_non_negative(r.qty - src_total);
            if newborn > 0.0 {
                old_add(dst_vec, Origin::Vertex(r.src), newborn);
            }
            totals[d] += r.qty;
            totals[s] = 0.0;
        } else {
            let factor = r.qty / src_total;
            old_merge_add_scaled(dst_vec, src_vec, factor);
            old_scale(src_vec, 1.0 - factor);
            totals[d] += r.qty;
            totals[s] = qty_clamp_non_negative(src_total - r.qty);
        }
    }
    vectors.iter().map(|v| v.len()).sum()
}

fn new_pass(w: &Workload) -> usize {
    let n = w.num_vertices;
    let mut vectors: Vec<SparseProvenance> = (0..n).map(|_| SparseProvenance::new()).collect();
    let mut totals = vec![0.0f64; n];
    for r in &w.interactions {
        let s = r.src.index();
        let d = r.dst.index();
        let (src_vec, dst_vec) = if s < d {
            let (a, b) = vectors.split_at_mut(d);
            (&mut a[s], &mut b[0])
        } else {
            let (a, b) = vectors.split_at_mut(s);
            (&mut b[0], &mut a[d])
        };
        let src_total = totals[s];
        if qty_ge(r.qty, src_total) {
            dst_vec.take_all_from(src_vec);
            let newborn = qty_clamp_non_negative(r.qty - src_total);
            if newborn > 0.0 {
                dst_vec.add_vertex(r.src, newborn);
            }
            totals[d] += r.qty;
            totals[s] = 0.0;
        } else {
            let factor = r.qty / src_total;
            dst_vec.transfer_from(src_vec, factor);
            totals[d] += r.qty;
            totals[s] = qty_clamp_non_negative(src_total - r.qty);
        }
    }
    vectors.iter().map(|v| v.len()).sum()
}

fn measure<F: FnMut() -> usize>(mut f: F, min_secs: f64) -> (f64, usize) {
    let mut passes = 0u32;
    let mut sink = 0;
    let start = Instant::now();
    loop {
        sink += f();
        passes += 1;
        if start.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    (start.elapsed().as_secs_f64() / f64::from(passes), sink)
}

fn main() {
    for kind in [DatasetKind::Taxis, DatasetKind::Bitcoin] {
        let w = Workload::generate(kind, ScaleProfile::Small);
        let reps = if w.interactions.len() > 50_000 { 3 } else { 5 };
        // Interleave the two kernels within every rep so slow drift in the
        // machine (noisy neighbours, throttling) hits both sides equally.
        let mut old_secs = f64::INFINITY;
        let mut new_secs = f64::INFINITY;
        let mut old_entries = 0;
        let mut new_entries = 0;
        for _ in 0..reps {
            let (secs, entries) = measure(|| old_pass(&w), 0.05);
            if secs < old_secs {
                old_secs = secs;
            }
            old_entries = entries;
            let (secs, entries) = measure(|| new_pass(&w), 0.05);
            if secs < new_secs {
                new_secs = secs;
            }
            new_entries = entries;
        }
        let n = w.interactions.len() as f64;
        println!(
            "{}: old {:.0} it/s ({} entries) | new {:.0} it/s ({} entries) | speedup {:.2}x",
            kind.key(),
            n / old_secs,
            old_entries,
            n / new_secs,
            new_entries,
            old_secs / new_secs
        );
    }
}
