//! Figure 7: the windowing approach — runtime and memory as a function of
//! the window length W.
//!
//! Larger windows mean fewer resets (less runtime overhead) but longer
//! provenance lists (more memory), which is the trade-off the figure shows
//! for Bitcoin, CTU and Prosper Loans. In addition to the paper's
//! count-based window, each sweep also measures the time-based window
//! extension (`TimeWindowedTracker`) at the equivalent duration, so the two
//! reset triggers can be compared directly.

use tin_analytics::report::{format_bytes, format_secs, TextTable};
use tin_bench::{run_tracker, scale_from_env, Workload};
use tin_core::policy::PolicyConfig;
use tin_datasets::DatasetKind;

fn main() {
    let scale = scale_from_env();
    println!("Reproducing Figure 7 (windowing approach), scale = {scale:?}\n");

    for kind in [
        DatasetKind::Bitcoin,
        DatasetKind::Ctu,
        DatasetKind::ProsperLoans,
    ] {
        let w = Workload::generate(kind, scale);
        println!("  {}", w.describe());

        // The paper sweeps W from 2K to 16K interactions; scale the sweep to
        // the generated stream length so every setting causes some resets.
        let n = w.interactions.len();
        let windows: Vec<usize> = [64usize, 32, 16, 8, 4, 2]
            .iter()
            .map(|d| (n / d).max(1))
            .collect();

        // Time span of the stream, used to express each count window as an
        // equivalent duration for the time-based variant.
        let span = w
            .interactions
            .last()
            .map(|r| r.time.value())
            .unwrap_or(0.0)
            .max(f64::MIN_POSITIVE);

        let mut table = TextTable::new(
            format!(
                "Figure 7 ({}): runtime / memory vs window size W",
                kind.label()
            ),
            &[
                "W (interactions)",
                "runtime (s)",
                "provenance memory",
                "time-window runtime (s)",
                "time-window memory",
            ],
        );
        for window in windows {
            let (_, result) = run_tracker(&PolicyConfig::Windowed { window }, &w);
            let duration = span * window as f64 / n as f64;
            let (_, time_result) = run_tracker(&PolicyConfig::TimeWindowed { duration }, &w);
            table.push_row(vec![
                window.to_string(),
                format_secs(result.runtime_secs),
                format_bytes(result.footprint.total()),
                format_secs(time_result.runtime_secs),
                format_bytes(time_result.footprint.total()),
            ]);
        }
        println!("{}", table.render());
        println!("CSV:\n{}", table.to_csv());
    }
}
