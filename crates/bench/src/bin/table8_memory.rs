//! Table 8: peak memory used by each selection policy on each dataset.
//!
//! Two numbers are available for every cell: the logical provenance footprint
//! (entries + indexes, computed by `MemoryFootprint`) and the allocator-level
//! peak measured by the counting global allocator. The table reports the
//! larger of the two, as the paper reports process peak memory.

use tin_analytics::report::{format_bytes, TextTable};
use tin_bench::{
    dense_proportional_feasible, run_tracker, scale_from_env, sparse_proportional_feasible,
    Workload,
};
use tin_core::policy::{PolicyConfig, SelectionPolicy};

fn main() {
    let scale = scale_from_env();
    let workloads = Workload::all(scale);
    println!("Reproducing Table 8 (peak memory per selection policy), scale = {scale:?}\n");
    for w in &workloads {
        println!("  {}", w.describe());
    }
    println!();

    let policies = SelectionPolicy::all();
    let header: Vec<&str> = std::iter::once("Dataset")
        .chain(policies.iter().map(|p| p.label()))
        .collect();
    let mut table = TextTable::new(
        "Table 8: Peak memory used by each selection policy",
        &header,
    );

    for w in &workloads {
        let mut row = vec![w.kind.label().to_string()];
        for policy in policies {
            let feasible = match policy {
                SelectionPolicy::ProportionalDense => dense_proportional_feasible(w.num_vertices),
                SelectionPolicy::ProportionalSparse => {
                    sparse_proportional_feasible(w.num_vertices, w.interactions.len())
                }
                _ => true,
            };
            if !feasible {
                row.push("–".to_string());
                continue;
            }
            let (_, result) = run_tracker(&PolicyConfig::Plain(policy), w);
            row.push(format_bytes(result.memory_bytes()));
        }
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("CSV:\n{}", table.to_csv());
}
