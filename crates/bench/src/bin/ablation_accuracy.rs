//! Ablation: accuracy vs. cost of the scope-limited proportional trackers.
//!
//! The paper measures what selective, grouped, windowed and budget-based
//! provenance *cost* (Figures 5, 7, 8; Table 9) and argues the information
//! loss is limited. This extension experiment quantifies the loss: every
//! scope-limited configuration is compared against the exact sparse
//! proportional tracker on the same stream, reporting runtime, memory, the
//! fraction of provenance still attributed to concrete origins, the mean
//! total-variation distance and the recall of the exact top-5 origins.
//!
//! Run with: `TIN_SCALE=tiny cargo run --release -p tin-bench --bin ablation_accuracy`

use tin_analytics::accuracy::{compare_grouped_tracker, compare_trackers, AccuracyReport};
use tin_analytics::grouping;
use tin_analytics::report::{format_bytes, format_secs, TextTable};
use tin_bench::{run_tracker, scale_from_env, Workload};
use tin_core::graph::Tin;
use tin_core::policy::PolicyConfig;
use tin_core::policy::SelectionPolicy;
use tin_datasets::{DatasetKind, ScaleProfile};

fn accuracy_row(
    label: &str,
    runtime_secs: f64,
    memory_bytes: usize,
    report: &AccuracyReport,
) -> Vec<String> {
    vec![
        label.to_string(),
        format_secs(runtime_secs),
        format_bytes(memory_bytes),
        format!("{:.1}%", report.mean_known_fraction * 100.0),
        format!("{:.4}", report.mean_total_variation),
        format!("{:.3}", report.mean_topk_recall),
    ]
}

fn main() {
    // Accuracy needs the exact sparse tracker as reference, which is the
    // expensive one — keep the default workload small.
    let scale = match scale_from_env() {
        ScaleProfile::Paper | ScaleProfile::Medium => ScaleProfile::Small,
        other => other,
    };
    println!("Ablation: accuracy vs. cost of scope-limited provenance, scale = {scale:?}\n");

    for kind in [DatasetKind::ProsperLoans, DatasetKind::Taxis] {
        let workload = Workload::generate(kind, scale);
        println!("  {}", workload.describe());
        let tin = Tin::from_interactions(workload.num_vertices, workload.interactions.clone())
            .expect("generated workloads are valid");

        // Exact reference.
        let (exact, exact_result) = run_tracker(
            &PolicyConfig::Plain(SelectionPolicy::ProportionalSparse),
            &workload,
        );

        let mut table = TextTable::new(
            format!(
                "Accuracy vs cost on {} (reference: exact sparse proportional, {} / {})",
                kind.label(),
                format_secs(exact_result.runtime_secs),
                format_bytes(exact_result.footprint.total()),
            ),
            &[
                "configuration",
                "runtime",
                "memory",
                "known provenance",
                "mean TV distance",
                "top-5 recall",
            ],
        );

        // Selective tracking with increasing k.
        for k in [5usize, 20, 50] {
            let config = PolicyConfig::Selective {
                tracked: tin.top_k_senders(k),
            };
            let (tracker, result) = run_tracker(&config, &workload);
            let report = compare_trackers(tracker.as_ref(), exact.as_ref(), 5);
            table.push_row(accuracy_row(
                &format!("selective k={k}"),
                result.runtime_secs,
                result.footprint.total(),
                &report,
            ));
        }

        // Grouped tracking (compared at group granularity).
        for m in [5usize, 20] {
            let grouping = grouping::round_robin(workload.num_vertices, m).expect("m > 0");
            let (tracker, result) = run_tracker(&grouping.to_policy(), &workload);
            let report = compare_grouped_tracker(tracker.as_ref(), exact.as_ref(), &grouping, 5);
            table.push_row(accuracy_row(
                &format!("grouped m={m}"),
                result.runtime_secs,
                result.footprint.total(),
                &report,
            ));
        }

        // Windowed tracking with increasing window.
        let n = workload.interactions.len();
        for divisor in [8usize, 2] {
            let window = (n / divisor).max(1);
            let config = PolicyConfig::Windowed { window };
            let (tracker, result) = run_tracker(&config, &workload);
            let report = compare_trackers(tracker.as_ref(), exact.as_ref(), 5);
            table.push_row(accuracy_row(
                &format!("windowed W=|R|/{divisor}"),
                result.runtime_secs,
                result.footprint.total(),
                &report,
            ));
        }

        // Budget-based tracking with increasing capacity.
        for capacity in [10usize, 50, 200] {
            let config = PolicyConfig::budget(capacity);
            let (tracker, result) = run_tracker(&config, &workload);
            let report = compare_trackers(tracker.as_ref(), exact.as_ref(), 5);
            table.push_row(accuracy_row(
                &format!("budget C={capacity}"),
                result.runtime_secs,
                result.footprint.total(),
                &report,
            ));
        }

        println!("{}", table.render());
        println!("CSV:\n{}", table.to_csv());
    }
}
