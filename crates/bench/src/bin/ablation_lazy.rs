//! Ablation: eager vs. lazy vs. backtracing provenance.
//!
//! Section 8 of the paper proposes lazy (replay-based) and backtracing
//! approaches as future work. This extension experiment measures the
//! trade-off they offer against the eager sparse proportional tracker:
//!
//! * ingestion cost (processing the whole stream once),
//! * per-query cost (answering `O(t, B_v)` for a sample of vertices),
//! * and, for the backtracing index, how much of the replay its
//!   backward-reachability pruning eliminates.
//!
//! Run with: `TIN_SCALE=tiny cargo run --release -p tin-bench --bin ablation_lazy`

use std::time::Instant;

use tin_analytics::report::{format_bytes, format_secs, TextTable};
use tin_bench::{scale_from_env, Workload};
use tin_core::ids::VertexId;
use tin_core::policy::{PolicyConfig, SelectionPolicy};
use tin_core::tracker::backtrace::BacktraceIndex;
use tin_core::tracker::lazy::LazyReplayProvenance;
use tin_core::tracker::proportional_sparse::ProportionalSparseTracker;
use tin_core::tracker::ProvenanceTracker;
use tin_datasets::{DatasetKind, ScaleProfile};

/// Number of provenance queries issued against each approach.
const NUM_QUERIES: usize = 20;

fn main() {
    let scale = match scale_from_env() {
        ScaleProfile::Paper | ScaleProfile::Medium => ScaleProfile::Small,
        other => other,
    };
    println!("Ablation: eager vs lazy vs backtracing provenance, scale = {scale:?}\n");

    for kind in [DatasetKind::Taxis, DatasetKind::ProsperLoans] {
        let workload = Workload::generate(kind, scale);
        println!("  {}", workload.describe());
        let n = workload.num_vertices;
        let query_vertices: Vec<VertexId> = (0..n)
            .step_by((n / NUM_QUERIES).max(1))
            .take(NUM_QUERIES)
            .map(VertexId::from)
            .collect();

        // Eager: pay at ingestion, queries are free.
        let mut eager = ProportionalSparseTracker::new(n);
        let start = Instant::now();
        eager.process_all(&workload.interactions);
        let eager_ingest = start.elapsed().as_secs_f64();
        let start = Instant::now();
        for &v in &query_vertices {
            std::hint::black_box(eager.origins(v));
        }
        let eager_query = start.elapsed().as_secs_f64() / query_vertices.len() as f64;

        // Lazy: ingestion is just logging, every query replays the prefix.
        let mut lazy = LazyReplayProvenance::proportional(n);
        let start = Instant::now();
        lazy.process_all(&workload.interactions);
        let lazy_ingest = start.elapsed().as_secs_f64();
        let start = Instant::now();
        for &v in &query_vertices {
            std::hint::black_box(lazy.origins(v));
        }
        let lazy_query = start.elapsed().as_secs_f64() / query_vertices.len() as f64;

        // Backtracing: ingestion is logging, queries replay a pruned prefix.
        let mut backtrace = BacktraceIndex::proportional(n);
        let start = Instant::now();
        backtrace.process_all(&workload.interactions);
        let backtrace_ingest = start.elapsed().as_secs_f64();
        let mut pruning = 0.0;
        let policy = PolicyConfig::Plain(SelectionPolicy::ProportionalSparse);
        let start = Instant::now();
        for &v in &query_vertices {
            let (origins, stats) = backtrace
                .origins_at_with_stats(v, f64::INFINITY, &policy)
                .expect("valid query");
            std::hint::black_box(origins);
            pruning += stats.pruning_ratio();
        }
        let backtrace_query = start.elapsed().as_secs_f64() / query_vertices.len() as f64;
        pruning /= query_vertices.len() as f64;

        let mut table = TextTable::new(
            format!(
                "Eager vs lazy vs backtracing on {} ({} queries)",
                kind.label(),
                query_vertices.len()
            ),
            &[
                "approach",
                "ingest time",
                "per-query time",
                "state memory",
                "avg replay pruned",
            ],
        );
        table.push_row(vec![
            "eager (sparse proportional)".into(),
            format_secs(eager_ingest),
            format_secs(eager_query),
            format_bytes(eager.footprint().total()),
            "-".into(),
        ]);
        table.push_row(vec![
            "lazy replay".into(),
            format_secs(lazy_ingest),
            format_secs(lazy_query),
            format_bytes(lazy.footprint().total()),
            "0%".into(),
        ]);
        table.push_row(vec![
            "backtracing (pruned replay)".into(),
            format_secs(backtrace_ingest),
            format_secs(backtrace_query),
            format_bytes(backtrace.footprint().total()),
            format!("{:.0}%", pruning * 100.0),
        ]);
        println!("{}", table.render());
        println!("CSV:\n{}", table.to_csv());
    }
}
