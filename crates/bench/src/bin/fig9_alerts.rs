//! Figure 9: provenance alerts ("smurfing" detection) on the Bitcoin network.
//!
//! After each interaction an alert fires when the receiving vertex has
//! accumulated more than a threshold quantity none of which originates from
//! its direct neighbours. Alerts with fewer than five contributing vertices
//! are flagged (the paper's red dots); the rest indicate funds accumulated
//! from numerous sources — an indication of possible smurfing.

use tin_analytics::alerts::{AlertConfig, AlertEngine};
use tin_analytics::report::TextTable;
use tin_bench::{scale_from_env, Workload};
use tin_core::tracker::proportional_sparse::ProportionalSparseTracker;
use tin_datasets::DatasetKind;

fn main() {
    let scale = scale_from_env();
    let w = Workload::generate(DatasetKind::Bitcoin, scale);
    println!("Reproducing Figure 9 (provenance alerts in Bitcoin), scale = {scale:?}");
    println!("  {}\n", w.describe());

    // The paper uses an absolute 10K BTC threshold on the real data; the
    // synthetic workload uses a multiple of its own average quantity so the
    // alert rate is comparable. TIN_ALERT_THRESHOLD overrides.
    let avg_q = w.interactions.iter().map(|r| r.qty).sum::<f64>() / w.interactions.len() as f64;
    let threshold = std::env::var("TIN_ALERT_THRESHOLD")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(20.0 * avg_q);

    let mut tracker = ProportionalSparseTracker::new(w.num_vertices);
    let config = AlertConfig {
        quantity_threshold: threshold,
        require_no_neighbor_origin: true,
    };
    let alerts = AlertEngine::run_stream(&mut tracker, &w.interactions, config);

    let few: usize = alerts.iter().filter(|a| a.is_few_sources()).count();
    println!(
        "Threshold {:.3e}: {} alerts in total ({} from fewer than five vertices, {} from many)",
        threshold,
        alerts.len(),
        few,
        alerts.len() - few
    );

    let mut table = TextTable::new(
        "Figure 9: provenance alerts (first 25 shown)",
        &[
            "interaction#",
            "time",
            "vertex",
            "buffered",
            "#contributing vertices",
            "flag",
        ],
    );
    for a in alerts.iter().take(25) {
        table.push_row(vec![
            a.interaction_index.to_string(),
            format!("{:.1}", a.time),
            a.vertex.to_string(),
            format!("{:.3e}", a.buffered),
            a.contributing_vertices.to_string(),
            if a.is_few_sources() {
                "FEW (red)"
            } else {
                "many (blue)"
            }
            .to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("CSV:\n{}", table.to_csv());
}
