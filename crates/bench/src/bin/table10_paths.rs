//! Table 10: overhead of tracking provenance paths (how-provenance) on top of
//! the LIFO policy.
//!
//! For every dataset: runtime, memory for provenance entries, memory for the
//! paths, total memory, and the average path length of the buffered quantity
//! elements.

use tin_analytics::path_stats;
use tin_analytics::report::{format_bytes, format_secs, TextTable};
use tin_bench::{scale_from_env, Workload};
use tin_core::tracker::path::PathTracker;
use tin_core::tracker::ProvenanceTracker;

fn main() {
    let scale = scale_from_env();
    let workloads = Workload::all(scale);
    println!("Reproducing Table 10 (tracking provenance paths in LIFO), scale = {scale:?}\n");
    for w in &workloads {
        println!("  {}", w.describe());
    }
    println!();

    let mut table = TextTable::new(
        "Table 10: Tracking provenance paths in LIFO",
        &[
            "Dataset",
            "time (sec)",
            "mem entries",
            "mem paths",
            "total mem",
            "avg. path length",
        ],
    );
    for w in &workloads {
        let mut tracker = PathTracker::lifo(w.num_vertices);
        let start = std::time::Instant::now();
        tracker.process_all(&w.interactions);
        let runtime = start.elapsed().as_secs_f64();
        let stats = path_stats::statistics(&tracker);
        table.push_row(vec![
            w.kind.label().to_string(),
            format_secs(runtime),
            format_bytes(stats.entries_bytes),
            format_bytes(stats.paths_bytes),
            format_bytes(stats.entries_bytes + stats.paths_bytes),
            format!("{:.2}", stats.avg_path_length),
        ]);
    }
    println!("{}", table.render());
    println!("CSV:\n{}", table.to_csv());
}
