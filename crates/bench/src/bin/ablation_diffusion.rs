//! Ablation: relay vs. diffusion propagation semantics.
//!
//! Section 8 of the paper singles out, as the key difference between TINs and
//! social networks, that in the latter "data are diffused, instead of being
//! relayed from vertex to vertex". This binary quantifies what that modelling
//! choice costs: for every dataset it runs the exact sparse proportional
//! tracker (relay) and the [`DiffusionTracker`] extension (copy) over the
//! same interaction stream and reports runtime, provenance entries, memory
//! and the quantity amplification factor introduced by copying.

use std::time::Instant;

use tin_analytics::report::{format_bytes, format_secs, TextTable};
use tin_bench::{scale_from_env, sparse_proportional_feasible, Workload};
use tin_core::tracker::diffusion::DiffusionTracker;
use tin_core::tracker::proportional_sparse::ProportionalSparseTracker;
use tin_core::tracker::ProvenanceTracker;

struct ModelRun {
    runtime_secs: f64,
    entries: usize,
    footprint_bytes: usize,
    total_buffered: f64,
    top_influence_reach: usize,
}

fn run_relay(w: &Workload) -> ModelRun {
    let start = Instant::now();
    let mut tracker = ProportionalSparseTracker::new(w.num_vertices);
    tracker.process_all(&w.interactions);
    ModelRun {
        runtime_secs: start.elapsed().as_secs_f64(),
        entries: tracker.total_entries(),
        footprint_bytes: tracker.footprint().total(),
        total_buffered: tracker.total_buffered(),
        top_influence_reach: 0,
    }
}

fn run_diffusion(w: &Workload) -> ModelRun {
    let start = Instant::now();
    let mut tracker = DiffusionTracker::new(w.num_vertices);
    tracker.process_all(&w.interactions);
    let runtime_secs = start.elapsed().as_secs_f64();
    let top_influence_reach = tracker
        .influence_ranking(1)
        .first()
        .map(|(origin, _)| tracker.reach_of(*origin))
        .unwrap_or(0);
    ModelRun {
        runtime_secs,
        entries: tracker.total_entries(),
        footprint_bytes: tracker.footprint().total(),
        total_buffered: tracker.total_buffered(),
        top_influence_reach,
    }
}

fn main() {
    let scale = scale_from_env();
    println!("Ablation: relay vs. diffusion propagation, scale = {scale:?}\n");

    let mut table = TextTable::new(
        "Relay (sparse proportional) vs. diffusion (copy) propagation",
        &[
            "Dataset",
            "Model",
            "Runtime",
            "Provenance entries",
            "Memory",
            "Total buffered q",
            "Amplification",
            "Top-origin reach",
        ],
    );

    for w in Workload::all(scale) {
        if !sparse_proportional_feasible(w.num_vertices, w.interactions.len()) {
            table.push_row(vec![
                w.kind.label().to_string(),
                "–".to_string(),
                "–".to_string(),
                "–".to_string(),
                "–".to_string(),
                "–".to_string(),
                "–".to_string(),
                "–".to_string(),
            ]);
            continue;
        }
        let relay = run_relay(&w);
        let diffusion = run_diffusion(&w);
        let amplification = if relay.total_buffered > 0.0 {
            diffusion.total_buffered / relay.total_buffered
        } else {
            1.0
        };
        table.push_row(vec![
            w.kind.label().to_string(),
            "relay".to_string(),
            format_secs(relay.runtime_secs),
            relay.entries.to_string(),
            format_bytes(relay.footprint_bytes),
            format!("{:.3e}", relay.total_buffered),
            "1.00x".to_string(),
            "–".to_string(),
        ]);
        table.push_row(vec![
            String::new(),
            "diffusion".to_string(),
            format_secs(diffusion.runtime_secs),
            diffusion.entries.to_string(),
            format_bytes(diffusion.footprint_bytes),
            format!("{:.3e}", diffusion.total_buffered),
            format!("{amplification:.2}x"),
            diffusion.top_influence_reach.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!("CSV:\n{}", table.to_csv());
}
