//! Reading and writing interaction streams as CSV-like text files.
//!
//! The format is one interaction per line, `src,dst,time,qty`, optionally
//! preceded by a header line. This matches the shape of the public traces the
//! paper uses (konect edge lists, NYC TLC trip records after projection), so
//! users who do have the real data can load it directly and run every
//! experiment on it instead of the synthetic emulation.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use tin_core::error::{Result, TinError};
use tin_core::graph::Tin;
use tin_core::interaction::{sort_by_time, Interaction};

/// Write interactions to a writer as `src,dst,time,qty` lines with a header.
pub fn write_csv<W: Write>(writer: W, interactions: &[Interaction]) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "src,dst,time,qty")?;
    for r in interactions {
        writeln!(w, "{},{},{},{}", r.src.raw(), r.dst.raw(), r.time.0, r.qty)?;
    }
    w.flush()?;
    Ok(())
}

/// Write interactions to a file (see [`write_csv`]).
pub fn write_csv_file(path: impl AsRef<Path>, interactions: &[Interaction]) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_csv(file, interactions)
}

/// Parse interactions from a reader.
///
/// * Lines starting with `#` and blank lines are skipped.
/// * A first line equal to `src,dst,time,qty` (the header we write) is
///   skipped.
/// * Fields may be separated by commas, whitespace or tabs (konect-style
///   edge lists use whitespace).
/// * The result is sorted by time.
pub fn read_csv<R: Read>(reader: R) -> Result<Vec<Interaction>> {
    let mut out = Vec::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if lineno == 0 && trimmed.eq_ignore_ascii_case("src,dst,time,qty") {
            continue;
        }
        let fields: Vec<&str> = trimmed
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|f| !f.is_empty())
            .collect();
        if fields.len() != 4 {
            return Err(TinError::Parse {
                line: lineno + 1,
                message: format!(
                    "expected 4 fields (src,dst,time,qty), found {}",
                    fields.len()
                ),
            });
        }
        let parse_u32 = |s: &str, what: &str| -> Result<u32> {
            s.parse::<u32>().map_err(|_| TinError::Parse {
                line: lineno + 1,
                message: format!("invalid {what}: {s:?}"),
            })
        };
        let parse_f64 = |s: &str, what: &str| -> Result<f64> {
            s.parse::<f64>().map_err(|_| TinError::Parse {
                line: lineno + 1,
                message: format!("invalid {what}: {s:?}"),
            })
        };
        let r = Interaction::new(
            parse_u32(fields[0], "source vertex")?,
            parse_u32(fields[1], "destination vertex")?,
            parse_f64(fields[2], "timestamp")?,
            parse_f64(fields[3], "quantity")?,
        );
        r.validate(Some(lineno + 1))?;
        out.push(r);
    }
    sort_by_time(&mut out);
    Ok(out)
}

/// Read interactions from a file (see [`read_csv`]).
pub fn read_csv_file(path: impl AsRef<Path>) -> Result<Vec<Interaction>> {
    let file = std::fs::File::open(path)?;
    read_csv(file)
}

/// Read a file and build a [`Tin`] with the vertex count inferred from the
/// maximum vertex id.
pub fn read_tin_file(path: impl AsRef<Path>) -> Result<Tin> {
    let interactions = read_csv_file(path)?;
    Tin::from_interactions_auto(interactions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::interaction::paper_running_example;

    #[test]
    fn roundtrip_through_memory() {
        let original = paper_running_example();
        let mut buf = Vec::new();
        write_csv(&mut buf, &original).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("src,dst,time,qty\n"));
        assert_eq!(text.lines().count(), 7);
        let parsed = read_csv(buf.as_slice()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn roundtrip_through_file() {
        let path = std::env::temp_dir().join(format!("tin_io_test_{}.csv", std::process::id()));
        let original = paper_running_example();
        write_csv_file(&path, &original).unwrap();
        let parsed = read_csv_file(&path).unwrap();
        assert_eq!(parsed, original);
        let tin = read_tin_file(&path).unwrap();
        assert_eq!(tin.num_vertices(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn accepts_whitespace_separated_and_comments() {
        let text = "# konect-style edge list\n1 2 1.0 3\n2 0 3.0 5\n\n0\t1\t4.0\t3\n";
        let parsed = read_csv(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].qty, 3.0);
        assert_eq!(parsed[2].time.value(), 4.0);
    }

    #[test]
    fn sorts_unordered_input_by_time() {
        let text = "0,1,5.0,1\n1,2,2.0,1\n";
        let parsed = read_csv(text.as_bytes()).unwrap();
        assert_eq!(parsed[0].time.value(), 2.0);
        assert_eq!(parsed[1].time.value(), 5.0);
    }

    #[test]
    fn rejects_wrong_field_count() {
        let err = read_csv("1,2,3\n".as_bytes()).unwrap_err();
        match err {
            TinError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("4 fields"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_non_numeric_fields() {
        let err = read_csv("a,2,3.0,4\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TinError::Parse { .. }));
        let err = read_csv("1,2,xyz,4\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TinError::Parse { .. }));
    }

    #[test]
    fn rejects_invalid_interactions() {
        // Self-loop.
        let err = read_csv("1,1,1.0,4\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TinError::SelfLoop { .. }));
        // Negative quantity.
        let err = read_csv("1,2,1.0,-4\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TinError::InvalidQuantity { .. }));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_csv_file("/nonexistent/definitely/missing.csv").unwrap_err();
        assert!(matches!(err, TinError::Io(_)));
    }
}
