//! Synthetic generators for the paper's five evaluation datasets.
//!
//! Each submodule configures the shared [`engine`] with a topology, quantity
//! and temporal model calibrated to the published characteristics of the
//! corresponding real network (Table 6 of the paper and Section 7.1's
//! descriptions). See `DESIGN.md` for the substitution rationale.

pub mod bitcoin;
pub mod ctu;
pub mod engine;
pub mod flights;
pub mod prosper;
pub mod stress;
pub mod taxis;

use tin_core::graph::Tin;
use tin_core::interaction::Interaction;

use crate::config::{DatasetKind, DatasetSpec};

/// Generate the interaction stream for a dataset specification.
pub fn generate(spec: &DatasetSpec) -> Vec<Interaction> {
    let config = match spec.kind {
        DatasetKind::Bitcoin => bitcoin::engine_config(spec),
        DatasetKind::Ctu => ctu::engine_config(spec),
        DatasetKind::ProsperLoans => prosper::engine_config(spec),
        DatasetKind::Flights => flights::engine_config(spec),
        DatasetKind::Taxis => taxis::engine_config(spec),
    };
    engine::generate(&config)
}

/// Generate a dataset and wrap it in a [`Tin`] graph.
pub fn generate_tin(spec: &DatasetSpec) -> Tin {
    let interactions = generate(spec);
    Tin::from_interactions(spec.num_vertices(), interactions)
        .expect("generated streams are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScaleProfile;
    use tin_core::interaction::validate_stream;

    #[test]
    fn every_dataset_generates_a_valid_tiny_stream() {
        for kind in DatasetKind::all() {
            let spec = DatasetSpec::new(kind, ScaleProfile::Tiny);
            let stream = generate(&spec);
            assert_eq!(stream.len(), spec.num_interactions(), "{kind}");
            validate_stream(&stream, spec.num_vertices()).expect("valid");
        }
    }

    #[test]
    fn generate_tin_builds_graph_with_expected_counts() {
        let spec = DatasetSpec::new(DatasetKind::Taxis, ScaleProfile::Tiny);
        let tin = generate_tin(&spec);
        assert_eq!(tin.num_vertices(), spec.num_vertices());
        assert_eq!(tin.num_interactions(), spec.num_interactions());
        assert!(tin.stats().avg_quantity > 0.0);
    }

    #[test]
    fn different_kinds_produce_different_streams() {
        let a = generate(&DatasetSpec::new(DatasetKind::Bitcoin, ScaleProfile::Tiny));
        let b = generate(&DatasetSpec::new(DatasetKind::Ctu, ScaleProfile::Tiny));
        assert_ne!(a, b);
    }
}
