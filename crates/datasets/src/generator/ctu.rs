//! CTU-13-like botnet traffic network.
//!
//! The paper builds a TIN from the CTU botnet captures: 608K IP addresses and
//! 2.8M flows whose quantities are transferred bytes (19.2 KB on average).
//! Botnet traffic is dominated by a handful of command-and-control hosts and
//! scanning victims, so the emulation uses a hub-and-spoke topology where a
//! small hub set participates in most flows, with log-normal byte counts.

use crate::config::DatasetSpec;
use crate::generator::engine::{EngineConfig, QuantityModel, TopologyModel};

/// Engine configuration emulating the CTU botnet traffic network.
pub fn engine_config(spec: &DatasetSpec) -> EngineConfig {
    let num_vertices = spec.num_vertices();
    EngineConfig {
        num_vertices,
        num_interactions: spec.num_interactions(),
        topology: TopologyModel::HubAndSpoke {
            // Roughly 0.5% of the hosts behave as hubs (C&C servers, gateways).
            num_hubs: (num_vertices / 200).max(2),
            hub_probability: 0.85,
        },
        quantity: QuantityModel::LogNormal {
            median: 4_000.0, // bytes; mean lands near the paper's 19.2 KB
            sigma: 1.6,
        },
        mean_time_gap: 0.5,
        seed: spec.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetKind, ScaleProfile};
    use crate::generator::engine::generate;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec::new(DatasetKind::Ctu, ScaleProfile::Tiny)
    }

    #[test]
    fn hubs_dominate_traffic() {
        let spec = tiny_spec();
        let config = engine_config(&spec);
        let hubs = match config.topology {
            TopologyModel::HubAndSpoke { num_hubs, .. } => num_hubs,
            _ => panic!("CTU must use hub-and-spoke"),
        };
        let stream = generate(&config);
        let touching = stream
            .iter()
            .filter(|r| r.src.index() < hubs || r.dst.index() < hubs)
            .count();
        assert!(touching as f64 > 0.6 * stream.len() as f64);
    }

    #[test]
    fn byte_counts_are_positive_and_vary() {
        let stream = generate(&engine_config(&tiny_spec()));
        let min = stream.iter().map(|r| r.qty).fold(f64::INFINITY, f64::min);
        let max = stream.iter().map(|r| r.qty).fold(0.0f64, f64::max);
        assert!(min > 0.0);
        assert!(
            max / min > 10.0,
            "byte counts should span orders of magnitude"
        );
    }

    #[test]
    fn config_matches_spec_sizes() {
        let spec = tiny_spec();
        let config = engine_config(&spec);
        assert_eq!(config.num_vertices, spec.num_vertices());
        assert_eq!(config.num_interactions, spec.num_interactions());
    }
}
