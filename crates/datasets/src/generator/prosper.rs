//! Prosper-Loans-like peer-to-peer lending network.
//!
//! The paper's Prosper Loans TIN (from konect.cc) has 100K users and 3.08M
//! loan interactions with an average amount of $76. Lending marketplaces are
//! strongly role-structured: a population of lenders repeatedly funds a
//! population of borrowers, with occasional flows in the other direction
//! (repayments, re-lending). The emulation uses a bipartite topology with a
//! dominant forward direction and log-normal dollar amounts.

use crate::config::DatasetSpec;
use crate::generator::engine::{EngineConfig, QuantityModel, TopologyModel};

/// Engine configuration emulating the Prosper Loans network.
pub fn engine_config(spec: &DatasetSpec) -> EngineConfig {
    EngineConfig {
        num_vertices: spec.num_vertices(),
        num_interactions: spec.num_interactions(),
        topology: TopologyModel::Bipartite {
            source_fraction: 0.3,      // lenders
            forward_probability: 0.85, // most flows are lender → borrower
        },
        quantity: QuantityModel::LogNormal {
            median: 50.0, // dollars; mean lands near the paper's $76
            sigma: 0.9,
        },
        mean_time_gap: 1.0,
        seed: spec.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetKind, ScaleProfile};
    use crate::generator::engine::generate;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec::new(DatasetKind::ProsperLoans, ScaleProfile::Tiny)
    }

    #[test]
    fn average_amount_is_dollar_scale() {
        let stream = generate(&engine_config(&tiny_spec()));
        let mean = stream.iter().map(|r| r.qty).sum::<f64>() / stream.len() as f64;
        assert!(
            (20.0..400.0).contains(&mean),
            "mean loan {mean} should be tens of dollars"
        );
    }

    #[test]
    fn most_flows_go_from_lenders_to_borrowers() {
        let spec = tiny_spec();
        let n = spec.num_vertices();
        let split = (n as f64 * 0.3) as usize;
        let stream = generate(&engine_config(&spec));
        let forward = stream
            .iter()
            .filter(|r| r.src.index() < split && r.dst.index() >= split)
            .count();
        assert!(forward as f64 > 0.7 * stream.len() as f64);
    }

    #[test]
    fn config_matches_spec_sizes() {
        let spec = tiny_spec();
        let config = engine_config(&spec);
        assert_eq!(config.num_vertices, spec.num_vertices());
        assert_eq!(config.num_interactions, spec.num_interactions());
    }
}
