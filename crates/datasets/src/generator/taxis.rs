//! NYC-taxi-like zone-to-zone passenger network.
//!
//! The paper's Taxis TIN covers yellow-cab trips on 2019-01-01: 255 taxi
//! zones, 231K trips, and passenger counts averaging 1.53. This is the
//! dataset behind the Figure 2 use case (provenance of passengers
//! accumulating in East Village). The emulation keeps the small fixed zone
//! set, Zipf-skewed destination popularity (Manhattan zones dominate) and
//! small integer passenger counts.

use crate::config::DatasetSpec;
use crate::generator::engine::{EngineConfig, QuantityModel, TopologyModel};

/// Engine configuration emulating the NYC taxi-zone network.
pub fn engine_config(spec: &DatasetSpec) -> EngineConfig {
    EngineConfig {
        num_vertices: spec.num_vertices(),
        num_interactions: spec.num_interactions(),
        topology: TopologyModel::SmallWorldRoutes { exponent: 1.0 },
        quantity: QuantityModel::SmallCount { mean: 1.53 },
        mean_time_gap: 0.4, // seconds-scale drop-off cadence over one day
        seed: spec.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetKind, ScaleProfile};
    use crate::generator::engine::generate;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec::new(DatasetKind::Taxis, ScaleProfile::Tiny)
    }

    #[test]
    fn passenger_counts_are_small_integers() {
        let stream = generate(&engine_config(&tiny_spec()));
        assert!(stream.iter().all(|r| r.qty >= 1.0 && r.qty <= 9.0));
        assert!(stream.iter().all(|r| r.qty.fract() == 0.0));
        let mean = stream.iter().map(|r| r.qty).sum::<f64>() / stream.len() as f64;
        assert!((1.0..2.5).contains(&mean), "mean passengers {mean} ≈ 1.53");
    }

    #[test]
    fn zone_count_matches_paper_at_full_scale() {
        let paper = DatasetSpec::new(DatasetKind::Taxis, ScaleProfile::Paper);
        assert_eq!(engine_config(&paper).num_vertices, 255);
    }

    #[test]
    fn config_matches_spec_sizes() {
        let spec = tiny_spec();
        let config = engine_config(&spec);
        assert_eq!(config.num_vertices, spec.num_vertices());
        assert_eq!(config.num_interactions, spec.num_interactions());
    }
}
