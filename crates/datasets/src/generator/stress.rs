//! Deterministic stress workloads for correctness and worst-case testing.
//!
//! The five dataset emulations (see the sibling modules) reproduce the
//! *realistic* shapes of Table 6. Correctness testing and worst-case analysis
//! need the opposite: small, fully deterministic streams whose provenance can
//! be reasoned about by hand, plus adversarial shapes that maximise the cost
//! of a specific mechanism:
//!
//! * [`chain`] — one quantity relayed down a path, the worst case for path
//!   length (how-provenance, Section 6);
//! * [`star_collapse`] — many sources funding one sink, the worst case for
//!   provenance-list length at a single vertex (sparse proportional, §4.3);
//! * [`round_robin_mixing`] — every vertex repeatedly forwards a fraction of
//!   its buffer to the next one, maximising proportional mixing (the case
//!   where every vertex ends up with provenance from every other vertex);
//! * [`ping_pong`] — two vertices exchanging quantities back and forth, the
//!   worst case for split/merge churn in the receipt-order buffers;
//! * [`layered_dag`] — quantities flow through `depth` layers of `width`
//!   vertices, a pipeline shape with predictable provenance per layer.
//!
//! All generators return streams that pass [`validate_stream`] and are sorted
//! by time; quantities are integers so tests can make exact assertions.

use tin_core::interaction::{validate_stream, Interaction};

/// A quantity relayed along the path `0 → 1 → … → n-1`, one hop per time
/// unit. After processing, only the last vertex holds anything and its single
/// buffered element has a path of `n - 2` relays.
pub fn chain(num_vertices: usize, qty: f64) -> Vec<Interaction> {
    assert!(num_vertices >= 2, "a chain needs at least two vertices");
    let stream: Vec<Interaction> = (0..num_vertices - 1)
        .map(|i| Interaction::new(i, i + 1, (i + 1) as f64, qty))
        .collect();
    debug_assert!(validate_stream(&stream, num_vertices).is_ok());
    stream
}

/// Every vertex `1..n` sends `qty` units to vertex `0`, then vertex `0`
/// forwards `rounds` batches onwards to vertex `1`. The sink's provenance
/// list holds one entry per source — the longest list a single interaction
/// sequence of this length can build.
pub fn star_collapse(num_vertices: usize, qty: f64, rounds: usize) -> Vec<Interaction> {
    assert!(num_vertices >= 3, "a star needs a sink and two sources");
    let mut stream = Vec::with_capacity(num_vertices - 1 + rounds);
    let mut t = 0.0;
    for src in 1..num_vertices {
        t += 1.0;
        stream.push(Interaction::new(src, 0usize, t, qty));
    }
    for _ in 0..rounds {
        t += 1.0;
        stream.push(Interaction::new(0usize, 1usize, t, qty / 2.0));
    }
    debug_assert!(validate_stream(&stream, num_vertices).is_ok());
    stream
}

/// A seeding sweep followed by `rounds` mixing sweeps.
///
/// Seeding: every vertex (in reverse order, so parcels are not immediately
/// relayed onwards) generates `qty` units and sends them to its successor
/// (mod n), leaving each vertex with exactly one foreign parcel. Mixing:
/// in every round each vertex forwards `qty / 2` — strictly less than its
/// buffer — so proportional selection keeps splitting and re-mixing the
/// parcels. After a few rounds every buffer carries provenance from many
/// vertices: the worst case for sparse proportional lists and the stress case
/// for the grouped/selective approximations.
pub fn round_robin_mixing(num_vertices: usize, rounds: usize, qty: f64) -> Vec<Interaction> {
    assert!(num_vertices >= 2);
    let mut stream = Vec::with_capacity(num_vertices * (rounds + 1));
    let mut t = 0.0;
    for v in (0..num_vertices).rev() {
        t += 1.0;
        stream.push(Interaction::new(v, (v + 1) % num_vertices, t, qty));
    }
    for _ in 0..rounds {
        for v in 0..num_vertices {
            t += 1.0;
            stream.push(Interaction::new(v, (v + 1) % num_vertices, t, qty / 2.0));
        }
    }
    debug_assert!(validate_stream(&stream, num_vertices).is_ok());
    stream
}

/// Two vertices bouncing a quantity back and forth `rounds` times, with the
/// transferred amount alternating between `qty` and `qty / 2` so that every
/// round splits a buffered element.
pub fn ping_pong(rounds: usize, qty: f64) -> Vec<Interaction> {
    let mut stream = Vec::with_capacity(rounds);
    let mut t = 0.0;
    for i in 0..rounds {
        t += 1.0;
        let (src, dst) = if i % 2 == 0 {
            (0usize, 1usize)
        } else {
            (1usize, 0usize)
        };
        let amount = if i % 2 == 0 { qty } else { qty / 2.0 };
        stream.push(Interaction::new(src, dst, t, amount));
    }
    debug_assert!(validate_stream(&stream, 2).is_ok());
    stream
}

/// A layered DAG: `depth` layers of `width` vertices; every vertex of layer
/// `l` sends `qty` units to every vertex of layer `l + 1`. Vertex ids are
/// `layer * width + column`. Quantities generated in layer 0 dominate the
/// provenance of the final layer.
pub fn layered_dag(depth: usize, width: usize, qty: f64) -> Vec<Interaction> {
    assert!(depth >= 2 && width >= 1);
    let mut stream = Vec::new();
    let mut t = 0.0;
    for layer in 0..depth - 1 {
        for from in 0..width {
            for to in 0..width {
                t += 1.0;
                stream.push(Interaction::new(
                    layer * width + from,
                    (layer + 1) * width + to,
                    t,
                    qty,
                ));
            }
        }
    }
    debug_assert!(validate_stream(&stream, depth * width).is_ok());
    stream
}

/// Number of vertices used by [`layered_dag`].
pub fn layered_dag_vertices(depth: usize, width: usize) -> usize {
    depth * width
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::ids::VertexId;
    use tin_core::policy::{PolicyConfig, SelectionPolicy};
    use tin_core::quantity::qty_approx_eq;
    use tin_core::tracker::path::PathTracker;
    use tin_core::tracker::proportional_sparse::ProportionalSparseTracker;
    use tin_core::tracker::{build_tracker, ProvenanceTracker};

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn chain_concentrates_everything_at_the_tail() {
        let stream = chain(6, 10.0);
        assert_eq!(stream.len(), 5);
        let mut tracker = PathTracker::fifo(6);
        tracker.process_all(&stream);
        for i in 0..5u32 {
            assert_eq!(tracker.buffered(v(i)), 0.0);
        }
        assert!(qty_approx_eq(tracker.buffered(v(5)), 10.0));
        let elements = tracker.elements(v(5));
        assert_eq!(elements.len(), 1);
        assert_eq!(elements[0].hops(), 4);
        assert!(qty_approx_eq(tracker.average_path_length(), 4.0));
    }

    #[test]
    fn star_builds_long_provenance_lists_at_the_sink() {
        let n = 20;
        let stream = star_collapse(n, 5.0, 2);
        let mut tracker = ProportionalSparseTracker::new(n);
        tracker.process_all(&stream);
        // The sink's provenance still references (almost) every source.
        let sink_origins = tracker.origins(v(0));
        assert!(sink_origins.len() >= n - 2);
        assert!(tracker.check_all_invariants());
        // The forwarded batches carry proportional provenance onwards.
        assert!(tracker.origins(v(1)).len() >= n - 2);
    }

    #[test]
    fn mixing_spreads_provenance_to_every_vertex() {
        let n = 6;
        let stream = round_robin_mixing(n, 4, 3.0);
        let mut tracker = ProportionalSparseTracker::new(n);
        tracker.process_all(&stream);
        assert!(tracker.check_all_invariants());
        // After several rounds every vertex has provenance from more than one
        // origin (the mixing the proportional policy is designed to model).
        let multi_origin = (0..n as u32)
            .filter(|&i| tracker.origins(v(i)).len() > 1)
            .count();
        assert!(multi_origin >= n / 2, "only {multi_origin} vertices mixed");
    }

    #[test]
    fn ping_pong_is_conserved_under_every_policy() {
        let stream = ping_pong(40, 8.0);
        for policy in SelectionPolicy::all() {
            let mut tracker = build_tracker(&PolicyConfig::Plain(policy), 2).unwrap();
            tracker.process_all(&stream);
            assert!(tracker.check_all_invariants(), "{policy}");
            // Total buffered equals total newborn quantity, which is at most
            // the sum of all transferred amounts.
            let total = tracker.total_buffered();
            assert!(total > 0.0);
            assert!(total <= 40.0 * 8.0);
        }
    }

    #[test]
    fn layered_dag_provenance_comes_from_the_first_layer() {
        let (depth, width) = (4, 3);
        let stream = layered_dag(depth, width, 2.0);
        let n = layered_dag_vertices(depth, width);
        assert_eq!(n, 12);
        let mut tracker = ProportionalSparseTracker::new(n);
        tracker.process_all(&stream);
        assert!(tracker.check_all_invariants());
        // Final-layer vertices hold quantity whose origins all lie in earlier
        // layers (they never generate anything themselves).
        for column in 0..width {
            let sink = v(((depth - 1) * width + column) as u32);
            let origins = tracker.origins(sink);
            assert!(!origins.is_empty());
            for (origin, _) in origins.iter() {
                let vertex = origin.as_vertex().expect("concrete origins only");
                assert!(vertex.index() < (depth - 1) * width);
            }
        }
    }

    #[test]
    fn generators_reject_degenerate_sizes() {
        assert!(std::panic::catch_unwind(|| chain(1, 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| star_collapse(2, 1.0, 1)).is_err());
        assert!(std::panic::catch_unwind(|| layered_dag(1, 3, 1.0)).is_err());
    }
}
