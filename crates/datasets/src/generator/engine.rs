//! The shared synthetic-TIN generation engine.
//!
//! All five dataset emulations are parameterisations of the same engine: a
//! *topology model* decides which vertices interact, a *quantity model* draws
//! the transferred quantity, and a *temporal model* spaces the interactions
//! in time. The engine guarantees the structural invariants the core library
//! expects: no self-loops, strictly positive quantities, non-decreasing
//! timestamps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tin_core::interaction::Interaction;

/// How endpoints of an interaction are chosen.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologyModel {
    /// Heavy-tailed popularity on both endpoints (Zipf-like): models
    /// transaction graphs such as Bitcoin where a few entities dominate.
    ZipfPopularity {
        /// Skew exponent (1.0–1.5 gives realistic transaction-graph skew).
        exponent: f64,
    },
    /// A small set of hub vertices participates in most interactions, either
    /// as source or destination (botnet command-and-control traffic).
    HubAndSpoke {
        /// Number of hub vertices.
        num_hubs: usize,
        /// Probability that an interaction touches a hub.
        hub_probability: f64,
    },
    /// Two roles (e.g. lenders and borrowers): most quantity flows from the
    /// first group to the second, with some back-flow (repayments).
    Bipartite {
        /// Fraction of vertices in the "source" role.
        source_fraction: f64,
        /// Probability that an interaction flows source→sink (vs. sink→source).
        forward_probability: f64,
    },
    /// Hub-and-spoke routes over a small vertex set with Zipf popularity
    /// (airports, taxi zones).
    SmallWorldRoutes {
        /// Skew of the popularity distribution.
        exponent: f64,
    },
}

/// How transferred quantities are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QuantityModel {
    /// Log-normal distribution with the given median and sigma (financial
    /// amounts, bytes).
    LogNormal {
        /// Median quantity.
        median: f64,
        /// Log-space standard deviation (larger = heavier tail).
        sigma: f64,
    },
    /// Uniform integer in `[lo, hi]` (passenger counts in the Flights data,
    /// which the paper itself randomises in 50–200).
    UniformInt {
        /// Inclusive lower bound.
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
    },
    /// Small counts with a geometric-ish tail, minimum 1 (taxi passengers).
    SmallCount {
        /// Mean count (≥ 1).
        mean: f64,
    },
}

/// Full engine configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// Number of vertices |V|.
    pub num_vertices: usize,
    /// Number of interactions |R|.
    pub num_interactions: usize,
    /// Topology model.
    pub topology: TopologyModel,
    /// Quantity model.
    pub quantity: QuantityModel,
    /// Mean gap between consecutive interaction timestamps.
    pub mean_time_gap: f64,
    /// RNG seed.
    pub seed: u64,
}

/// A precomputed Zipf-like sampler over `0..n` using the inverse-CDF method
/// on the harmonic weights `1/(i+1)^s`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` items with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one item");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // Normalise to [0, 1].
        for c in cumulative.iter_mut() {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Draw one item index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false: the sampler cannot be built empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Draw a quantity from a [`QuantityModel`].
pub fn sample_quantity(model: &QuantityModel, rng: &mut impl Rng) -> f64 {
    match *model {
        QuantityModel::LogNormal { median, sigma } => {
            // Box-Muller standard normal.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (median.ln() + sigma * z).exp().max(1e-6)
        }
        QuantityModel::UniformInt { lo, hi } => rng.gen_range(lo..=hi) as f64,
        QuantityModel::SmallCount { mean } => {
            // Shifted geometric: 1 + Geometric(p) with p chosen so the mean
            // matches. mean = 1 + (1-p)/p  =>  p = 1/mean.
            let p = (1.0 / mean.max(1.0)).clamp(0.05, 1.0);
            let mut count = 1u32;
            while rng.gen::<f64>() > p && count < 9 {
                count += 1;
            }
            count as f64
        }
    }
}

/// Generate a full synthetic interaction stream from an engine configuration.
///
/// The output is sorted by time (timestamps are generated monotonically) and
/// contains no self-loops or non-positive quantities.
pub fn generate(config: &EngineConfig) -> Vec<Interaction> {
    assert!(config.num_vertices >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_vertices;
    let mut out = Vec::with_capacity(config.num_interactions);
    let mut time = 0.0f64;

    // Pre-build samplers where the topology needs them.
    let zipf = match &config.topology {
        TopologyModel::ZipfPopularity { exponent }
        | TopologyModel::SmallWorldRoutes { exponent } => Some(ZipfSampler::new(n, *exponent)),
        _ => None,
    };

    for _ in 0..config.num_interactions {
        // Temporal model: exponential-ish gaps around the mean.
        time += config.mean_time_gap * (0.1 + 1.8 * rng.gen::<f64>());

        let (src, dst) = loop {
            let (s, d) = match &config.topology {
                TopologyModel::ZipfPopularity { .. } => {
                    let sampler = zipf.as_ref().expect("sampler built above");
                    (sampler.sample(&mut rng), sampler.sample(&mut rng))
                }
                TopologyModel::HubAndSpoke {
                    num_hubs,
                    hub_probability,
                } => {
                    let hubs = (*num_hubs).clamp(1, n - 1);
                    let hub = rng.gen_range(0..hubs);
                    let other = rng.gen_range(0..n);
                    if rng.gen::<f64>() < *hub_probability {
                        // Hub is one endpoint; direction is random.
                        if rng.gen::<bool>() {
                            (hub, other)
                        } else {
                            (other, hub)
                        }
                    } else {
                        (rng.gen_range(0..n), rng.gen_range(0..n))
                    }
                }
                TopologyModel::Bipartite {
                    source_fraction,
                    forward_probability,
                } => {
                    let split = ((n as f64 * source_fraction) as usize).clamp(1, n - 1);
                    let src_side = rng.gen_range(0..split);
                    let sink_side = rng.gen_range(split..n);
                    if rng.gen::<f64>() < *forward_probability {
                        (src_side, sink_side)
                    } else {
                        (sink_side, src_side)
                    }
                }
                TopologyModel::SmallWorldRoutes { .. } => {
                    let sampler = zipf.as_ref().expect("sampler built above");
                    // Popular zones attract traffic; sources are more uniform.
                    (rng.gen_range(0..n), sampler.sample(&mut rng))
                }
            };
            if s != d {
                break (s, d);
            }
        };

        let qty = sample_quantity(&config.quantity, &mut rng);
        out.push(Interaction::new(src as u32, dst as u32, time, qty));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::interaction::{is_sorted_by_time, validate_stream};

    fn base_config(topology: TopologyModel) -> EngineConfig {
        EngineConfig {
            num_vertices: 50,
            num_interactions: 2_000,
            topology,
            quantity: QuantityModel::LogNormal {
                median: 10.0,
                sigma: 1.0,
            },
            mean_time_gap: 1.0,
            seed: 7,
        }
    }

    #[test]
    fn zipf_sampler_prefers_small_indices() {
        let sampler = ZipfSampler::new(100, 1.2);
        assert_eq!(sampler.len(), 100);
        assert!(!sampler.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        // Item 0 must be sampled far more often than item 50.
        assert!(
            counts[0] > counts[50] * 3,
            "{} vs {}",
            counts[0],
            counts[50]
        );
        // Every draw is in range.
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zipf_sampler_rejects_empty() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn quantity_models_produce_positive_values() {
        let mut rng = StdRng::seed_from_u64(3);
        for model in [
            QuantityModel::LogNormal {
                median: 100.0,
                sigma: 2.0,
            },
            QuantityModel::UniformInt { lo: 50, hi: 200 },
            QuantityModel::SmallCount { mean: 1.5 },
        ] {
            for _ in 0..1_000 {
                let q = sample_quantity(&model, &mut rng);
                assert!(q > 0.0, "{model:?} produced {q}");
            }
        }
    }

    #[test]
    fn uniform_int_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let q = sample_quantity(&QuantityModel::UniformInt { lo: 50, hi: 200 }, &mut rng);
            assert!((50.0..=200.0).contains(&q));
            assert_eq!(q.fract(), 0.0);
        }
    }

    #[test]
    fn small_count_is_at_least_one_and_small() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut total = 0.0;
        for _ in 0..2_000 {
            let q = sample_quantity(&QuantityModel::SmallCount { mean: 1.53 }, &mut rng);
            assert!((1.0..=9.0).contains(&q));
            total += q;
        }
        let mean = total / 2_000.0;
        assert!((1.0..=2.5).contains(&mean), "mean {mean}");
    }

    #[test]
    fn generated_streams_are_valid_for_every_topology() {
        let topologies = vec![
            TopologyModel::ZipfPopularity { exponent: 1.2 },
            TopologyModel::HubAndSpoke {
                num_hubs: 3,
                hub_probability: 0.8,
            },
            TopologyModel::Bipartite {
                source_fraction: 0.4,
                forward_probability: 0.8,
            },
            TopologyModel::SmallWorldRoutes { exponent: 1.1 },
        ];
        for topology in topologies {
            let config = base_config(topology.clone());
            let stream = generate(&config);
            assert_eq!(stream.len(), 2_000);
            assert!(is_sorted_by_time(&stream), "{topology:?}");
            validate_stream(&stream, config.num_vertices).expect("valid stream");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = base_config(TopologyModel::ZipfPopularity { exponent: 1.2 });
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a, b);
        let mut other = config.clone();
        other.seed = 8;
        let c = generate(&other);
        assert_ne!(a, c);
    }

    #[test]
    fn hub_and_spoke_concentrates_traffic_on_hubs() {
        let config = base_config(TopologyModel::HubAndSpoke {
            num_hubs: 2,
            hub_probability: 0.9,
        });
        let stream = generate(&config);
        let touching_hubs = stream
            .iter()
            .filter(|r| r.src.index() < 2 || r.dst.index() < 2)
            .count();
        assert!(
            touching_hubs as f64 > 0.7 * stream.len() as f64,
            "only {touching_hubs} of {} touch hubs",
            stream.len()
        );
    }

    #[test]
    fn bipartite_flows_mostly_forward() {
        let config = base_config(TopologyModel::Bipartite {
            source_fraction: 0.5,
            forward_probability: 0.9,
        });
        let stream = generate(&config);
        let forward = stream
            .iter()
            .filter(|r| r.src.index() < 25 && r.dst.index() >= 25)
            .count();
        assert!(forward as f64 > 0.8 * stream.len() as f64);
    }
}
