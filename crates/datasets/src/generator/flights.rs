//! Flights-like passenger network.
//!
//! The paper's Flights TIN (Kaggle airline on-time data) has only 629
//! airports but 5.7M flights; each flight transfers a passenger count that
//! the paper itself randomises uniformly in 50–200. The tiny vertex set with
//! a huge interaction count is the regime where dense proportional tracking
//! is feasible and where quantity elements travel very long paths (Table 10
//! reports an average path length of 273). The emulation uses hub-and-spoke
//! routes over a Zipf-popular set of destination airports with uniform
//! 50–200 passenger counts.

use crate::config::DatasetSpec;
use crate::generator::engine::{EngineConfig, QuantityModel, TopologyModel};

/// Engine configuration emulating the Flights network.
pub fn engine_config(spec: &DatasetSpec) -> EngineConfig {
    EngineConfig {
        num_vertices: spec.num_vertices(),
        num_interactions: spec.num_interactions(),
        topology: TopologyModel::SmallWorldRoutes { exponent: 0.9 },
        quantity: QuantityModel::UniformInt { lo: 50, hi: 200 },
        mean_time_gap: 0.02, // many flights per "day"
        seed: spec.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetKind, ScaleProfile};
    use crate::generator::engine::generate;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec::new(DatasetKind::Flights, ScaleProfile::Tiny)
    }

    #[test]
    fn passenger_counts_are_in_paper_range() {
        let stream = generate(&engine_config(&tiny_spec()));
        assert!(stream.iter().all(|r| (50.0..=200.0).contains(&r.qty)));
        let mean = stream.iter().map(|r| r.qty).sum::<f64>() / stream.len() as f64;
        assert!((100.0..150.0).contains(&mean), "mean {mean} ≈ 125 expected");
    }

    #[test]
    fn vertex_set_is_small() {
        // Even at paper scale there are only 629 airports.
        let paper = DatasetSpec::new(DatasetKind::Flights, ScaleProfile::Paper);
        assert_eq!(engine_config(&paper).num_vertices, 629);
        // The interaction/vertex ratio is very high (long paths, deep mixing).
        let spec = tiny_spec();
        let config = engine_config(&spec);
        assert!(config.num_interactions > config.num_vertices);
    }

    #[test]
    fn popular_airports_receive_more_flights() {
        let spec = tiny_spec();
        let stream = generate(&engine_config(&spec));
        let n = spec.num_vertices();
        let mut arrivals = vec![0usize; n];
        for r in &stream {
            arrivals[r.dst.index()] += 1;
        }
        let max = *arrivals.iter().max().unwrap();
        let avg = stream.len() / n;
        assert!(max > 2 * avg, "hub airports should dominate arrivals");
    }
}
