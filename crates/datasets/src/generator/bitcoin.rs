//! Bitcoin-like transaction network.
//!
//! The paper's Bitcoin TIN covers all transactions up to 2013-12-28 after
//! address–user merging: 12M users, 45.5M transactions, average quantity
//! 34.4B satoshi with an extremely heavy tail. The defining characteristics
//! for the provenance algorithms are (i) a huge, sparse vertex set, (ii) a
//! Zipf-like activity distribution where exchanges and mining pools dominate,
//! and (iii) heavy-tailed amounts. The emulation uses Zipf popularity on both
//! endpoints and log-normal amounts.

use crate::config::DatasetSpec;
use crate::generator::engine::{EngineConfig, QuantityModel, TopologyModel};

/// Engine configuration emulating the Bitcoin network at the spec's scale.
pub fn engine_config(spec: &DatasetSpec) -> EngineConfig {
    EngineConfig {
        num_vertices: spec.num_vertices(),
        num_interactions: spec.num_interactions(),
        topology: TopologyModel::ZipfPopularity { exponent: 1.1 },
        quantity: QuantityModel::LogNormal {
            // Median well below the mean: the 34.4B average of Table 6 is
            // driven by the tail, as in the real data.
            median: 2.0e9,
            sigma: 2.2,
        },
        // ~5 years of history; the absolute unit is irrelevant to the
        // algorithms, only the ordering matters.
        mean_time_gap: 3.5,
        seed: spec.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DatasetKind, ScaleProfile};
    use crate::generator::engine::generate;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec::new(DatasetKind::Bitcoin, ScaleProfile::Tiny)
    }

    #[test]
    fn config_matches_spec_sizes() {
        let spec = tiny_spec();
        let config = engine_config(&spec);
        assert_eq!(config.num_vertices, spec.num_vertices());
        assert_eq!(config.num_interactions, spec.num_interactions());
    }

    #[test]
    fn activity_is_skewed() {
        let stream = generate(&engine_config(&tiny_spec()));
        let n = tiny_spec().num_vertices();
        let mut touches = vec![0usize; n];
        for r in &stream {
            touches[r.src.index()] += 1;
            touches[r.dst.index()] += 1;
        }
        touches.sort_unstable_by(|a, b| b.cmp(a));
        // The top 10% of vertices account for the majority of endpoint slots.
        let top = touches.iter().take(n / 10).sum::<usize>();
        let total: usize = touches.iter().sum();
        assert!(
            top * 2 > total,
            "top-10% vertices only cover {top}/{total} endpoint slots"
        );
    }

    #[test]
    fn amounts_are_heavy_tailed() {
        let stream = generate(&engine_config(&tiny_spec()));
        let mut qs: Vec<f64> = stream.iter().map(|r| r.qty).collect();
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = qs[qs.len() / 2];
        let mean = qs.iter().sum::<f64>() / qs.len() as f64;
        assert!(
            mean > 1.5 * median,
            "mean {mean} should greatly exceed median {median}"
        );
    }
}
