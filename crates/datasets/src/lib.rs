//! # tin-datasets — workloads for TIN provenance experiments
//!
//! The paper evaluates its provenance mechanisms on five real temporal
//! interaction networks (Bitcoin, CTU botnet traffic, Prosper Loans, US
//! Flights, NYC Taxis — Table 6). The raw traces are either huge or not
//! redistributable, so this crate provides:
//!
//! * **synthetic generators** ([`generator`]) that emulate each network's
//!   published shape (vertex/interaction counts, degree skew, quantity
//!   distribution) at configurable [`ScaleProfile`]s, and
//! * **CSV I/O** ([`io`]) so the real traces can be dropped in when available.
//!
//! ```
//! use tin_datasets::{DatasetKind, DatasetSpec, ScaleProfile};
//!
//! let spec = DatasetSpec::new(DatasetKind::Taxis, ScaleProfile::Tiny);
//! let tin = tin_datasets::generator::generate_tin(&spec);
//! assert_eq!(tin.num_interactions(), spec.num_interactions());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod formats;
pub mod generator;
pub mod io;

pub use config::{DatasetKind, DatasetSpec, ScaleProfile};
pub use formats::{NamedTin, VertexInterner};
pub use generator::{generate, generate_tin};

#[cfg(test)]
mod tests {
    use super::*;
    use tin_core::prelude::*;

    /// End-to-end smoke test: every generated dataset can be processed by
    /// every plain provenance policy without violating the origin invariant.
    #[test]
    fn generated_datasets_run_through_all_policies() {
        for kind in DatasetKind::all() {
            let spec = DatasetSpec::new(kind, ScaleProfile::Tiny);
            let stream = generate(&spec);
            for policy in SelectionPolicy::all() {
                let mut tracker =
                    build_tracker(&PolicyConfig::Plain(policy), spec.num_vertices()).unwrap();
                tracker.process_all(&stream);
                assert_eq!(tracker.interactions_processed(), stream.len());
                assert!(
                    tracker.check_all_invariants(),
                    "{kind} under {policy} violated the origin invariant"
                );
            }
        }
    }
}
