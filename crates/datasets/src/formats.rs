//! Loaders for the raw formats of the paper's five datasets.
//!
//! The plain `src,dst,time,qty` loader in [`crate::io`] assumes vertices are
//! already dense integer ids. The public traces the paper uses do not look
//! like that: Bitcoin identifies parties by address strings, CTU flows by IP
//! address, flights by IATA airport codes, and konect edge lists by arbitrary
//! user ids. This module provides:
//!
//! * [`VertexInterner`] — a string → dense [`VertexId`] mapping (and back),
//!   so raw identifiers can be used directly;
//! * [`NamedTin`] — the loaded interactions together with the interner;
//! * one loader per raw schema ([`read_named_edge_list`],
//!   [`read_taxi_trips`], [`read_flights`], [`read_bitcoin_transactions`],
//!   [`read_netflow`]), each documented with the column layout it expects and
//!   mirroring the preprocessing described in Section 7.1 (e.g. dropping
//!   Bitcoin transfers below 0.0001 BTC);
//! * [`write_named_edge_list`] — the matching writer.
//!
//! All loaders skip blank lines and `#` comments, accept comma / whitespace /
//! tab separators, detect an optional header line, report parse errors with
//! 1-based line numbers, and return interactions sorted by time.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use tin_core::error::{Result, TinError};
use tin_core::graph::Tin;
use tin_core::ids::VertexId;
use tin_core::interaction::{sort_by_time, Interaction};

/// The minimum quantity (in BTC) the paper keeps when preprocessing the
/// Bitcoin trace: "we did not take into consideration transactions with
/// insignificant flow (i.e., less than 0.0001 BTC)" (Section 7.1).
pub const BITCOIN_MIN_FLOW: f64 = 0.0001;

/// A bidirectional mapping between raw vertex names and dense vertex ids.
#[derive(Clone, Debug, Default)]
pub struct VertexInterner {
    by_name: HashMap<String, VertexId>,
    names: Vec<String>,
}

impl VertexInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the id of `name`, allocating the next dense id if it is new.
    pub fn intern(&mut self, name: &str) -> VertexId {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = VertexId::from(self.names.len());
        self.by_name.insert(name.to_string(), v);
        self.names.push(name.to_string());
        v
    }

    /// The id of `name`, if it has been seen.
    pub fn get(&self, name: &str) -> Option<VertexId> {
        self.by_name.get(name).copied()
    }

    /// The raw name of a vertex id, if it exists.
    pub fn name_of(&self, v: VertexId) -> Option<&str> {
        self.names.get(v.index()).map(String::as_str)
    }

    /// Number of distinct vertices interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no vertex has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (VertexId::from(i), n.as_str()))
    }
}

/// A loaded interaction stream whose vertices were interned from raw names.
#[derive(Clone, Debug, Default)]
pub struct NamedTin {
    /// Time-ordered interactions over dense vertex ids.
    pub interactions: Vec<Interaction>,
    /// The name ↔ id mapping.
    pub interner: VertexInterner,
}

impl NamedTin {
    /// Number of distinct vertices.
    pub fn num_vertices(&self) -> usize {
        self.interner.len()
    }

    /// Build the [`Tin`] graph over the loaded interactions.
    pub fn to_tin(&self) -> Result<Tin> {
        Tin::from_interactions(self.num_vertices(), self.interactions.clone())
    }

    /// Interactions involving a vertex given by its raw name (as source or
    /// destination). Empty if the name was never seen.
    pub fn interactions_of(&self, name: &str) -> Vec<&Interaction> {
        match self.interner.get(name) {
            None => Vec::new(),
            Some(v) => self
                .interactions
                .iter()
                .filter(|r| r.src == v || r.dst == v)
                .collect(),
        }
    }
}

/// Split a raw line into fields on commas, tabs and whitespace.
fn split_fields(line: &str) -> Vec<&str> {
    line.split(|c: char| c == ',' || c.is_whitespace())
        .filter(|f| !f.is_empty())
        .collect()
}

fn parse_f64(field: &str, what: &str, lineno: usize) -> Result<f64> {
    field.parse::<f64>().map_err(|_| TinError::Parse {
        line: lineno,
        message: format!("invalid {what}: {field:?}"),
    })
}

/// Shared loader core: every record is `(src name, dst name, time, qty)`;
/// `min_qty` drops records below a threshold, self-loops are skipped (several
/// raw traces contain them, e.g. bitcoin change outputs back to the sender).
fn read_records<R: Read>(
    reader: R,
    columns: [usize; 4],
    expected_fields: usize,
    header_token: Option<&str>,
    min_qty: f64,
) -> Result<NamedTin> {
    let buf = BufReader::new(reader);
    let mut interner = VertexInterner::new();
    let mut interactions = Vec::new();
    let [src_col, dst_col, time_col, qty_col] = columns;
    for (idx, line) in buf.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if idx == 0 {
            if let Some(token) = header_token {
                if trimmed.to_ascii_lowercase().contains(token) {
                    continue;
                }
            }
        }
        let fields = split_fields(trimmed);
        if fields.len() < expected_fields {
            return Err(TinError::Parse {
                line: lineno,
                message: format!(
                    "expected at least {expected_fields} fields, found {}",
                    fields.len()
                ),
            });
        }
        let time = parse_f64(fields[time_col], "timestamp", lineno)?;
        let qty = parse_f64(fields[qty_col], "quantity", lineno)?;
        if qty < min_qty || qty <= 0.0 {
            continue;
        }
        let src = interner.intern(fields[src_col]);
        let dst = interner.intern(fields[dst_col]);
        if src == dst {
            continue;
        }
        let r = Interaction::new(src, dst, time, qty);
        r.validate(Some(lineno))?;
        interactions.push(r);
    }
    sort_by_time(&mut interactions);
    Ok(NamedTin {
        interactions,
        interner,
    })
}

/// Read a konect-style edge list with arbitrary vertex names:
/// `src dst time qty` per line (Prosper Loans and similar traces).
pub fn read_named_edge_list<R: Read>(reader: R) -> Result<NamedTin> {
    read_records(reader, [0, 1, 2, 3], 4, Some("src"), 0.0)
}

/// Read NYC TLC-style taxi trips: `pickup_zone,dropoff_zone,dropoff_time,passengers`.
/// Zones are kept as names (e.g. "79" or "East Village"); the drop-off time is
/// the interaction time and the passenger count the quantity (Section 7.1).
pub fn read_taxi_trips<R: Read>(reader: R) -> Result<NamedTin> {
    read_records(reader, [0, 1, 2, 3], 4, Some("pickup"), 0.0)
}

/// Read a flights file: `origin,dest,departure_time,passengers`, airports as
/// IATA codes (Section 7.1 uses the departure time as the interaction time and
/// the passenger count as the quantity).
pub fn read_flights<R: Read>(reader: R) -> Result<NamedTin> {
    read_records(reader, [0, 1, 2, 3], 4, Some("origin"), 0.0)
}

/// Read Bitcoin transactions: `from_address,to_address,timestamp,btc`.
/// Transfers below [`BITCOIN_MIN_FLOW`] BTC are dropped, mirroring the
/// paper's preprocessing.
pub fn read_bitcoin_transactions<R: Read>(reader: R) -> Result<NamedTin> {
    read_records(reader, [0, 1, 2, 3], 4, Some("from"), BITCOIN_MIN_FLOW)
}

/// Read CTU-style netflow records: `start_time,src_ip,dst_ip,bytes`
/// (note the time-first column order used by the CTU-13 exports).
pub fn read_netflow<R: Read>(reader: R) -> Result<NamedTin> {
    read_records(reader, [1, 2, 0, 3], 4, Some("start"), 0.0)
}

/// Write a named edge list (`src dst time qty`, names from the interner) that
/// [`read_named_edge_list`] can read back.
pub fn write_named_edge_list<W: Write>(writer: W, named: &NamedTin) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "src,dst,time,qty")?;
    for r in &named.interactions {
        let src = named
            .interner
            .name_of(r.src)
            .ok_or_else(|| TinError::InvalidConfig(format!("no name for vertex {}", r.src)))?;
        let dst = named
            .interner
            .name_of(r.dst)
            .ok_or_else(|| TinError::InvalidConfig(format!("no name for vertex {}", r.dst)))?;
        writeln!(w, "{},{},{},{}", src, dst, r.time.0, r.qty)?;
    }
    w.flush()?;
    Ok(())
}

/// Convenience: load any of the supported raw formats from a file path.
pub fn read_named_edge_list_file(path: impl AsRef<Path>) -> Result<NamedTin> {
    let file = std::fs::File::open(path)?;
    read_named_edge_list(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_assigns_dense_ids() {
        let mut interner = VertexInterner::new();
        assert!(interner.is_empty());
        let a = interner.intern("alice");
        let b = interner.intern("bob");
        let a2 = interner.intern("alice");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.get("alice"), Some(a));
        assert_eq!(interner.get("carol"), None);
        assert_eq!(interner.name_of(a), Some("alice"));
        assert_eq!(interner.name_of(VertexId::new(9)), None);
        let pairs: Vec<_> = interner.iter().collect();
        assert_eq!(pairs, vec![(a, "alice"), (b, "bob")]);
    }

    #[test]
    fn named_edge_list_roundtrip() {
        let text = "src,dst,time,qty\nalice,bob,1.0,3\nbob,carol,2.5,4\ncarol,alice,3.0,1\n";
        let named = read_named_edge_list(text.as_bytes()).unwrap();
        assert_eq!(named.num_vertices(), 3);
        assert_eq!(named.interactions.len(), 3);
        assert_eq!(named.interner.get("alice").unwrap().index(), 0);
        // Rebuild the Tin and write it back out.
        let tin = named.to_tin().unwrap();
        assert_eq!(tin.num_vertices(), 3);
        assert_eq!(tin.num_interactions(), 3);
        let mut buf = Vec::new();
        write_named_edge_list(&mut buf, &named).unwrap();
        let reparsed = read_named_edge_list(buf.as_slice()).unwrap();
        assert_eq!(reparsed.interactions, named.interactions);
        assert_eq!(reparsed.num_vertices(), 3);
    }

    #[test]
    fn interactions_of_a_named_vertex() {
        let text = "alice bob 1 3\nbob carol 2 4\ncarol dave 3 2\n";
        let named = read_named_edge_list(text.as_bytes()).unwrap();
        assert_eq!(named.interactions_of("bob").len(), 2);
        assert_eq!(named.interactions_of("dave").len(), 1);
        assert!(named.interactions_of("nobody").is_empty());
    }

    #[test]
    fn taxi_trips_with_zone_names() {
        let text = "pickup_zone,dropoff_zone,dropoff_time,passengers\n\
                    Midtown,East Village?,100,2\n\
                    JFK,Midtown,200,1\n";
        // Commas separate columns; spaces inside names are not supported by
        // the whitespace-splitting loader, so zone ids are the common case.
        let text = text.replace("East Village?", "EastVillage");
        let named = read_taxi_trips(text.as_bytes()).unwrap();
        assert_eq!(named.num_vertices(), 3);
        assert_eq!(named.interactions.len(), 2);
        assert_eq!(named.interactions[0].qty, 2.0);
        assert!(named.interner.get("EastVillage").is_some());
    }

    #[test]
    fn flights_use_departure_time_and_passengers() {
        let text = "origin,dest,departure_time,passengers\nJFK,LAX,10,180\nLAX,SFO,20,95\nJFK,SFO,15,120\n";
        let named = read_flights(text.as_bytes()).unwrap();
        assert_eq!(named.num_vertices(), 3);
        assert_eq!(named.interactions.len(), 3);
        // Sorted by time.
        let times: Vec<f64> = named.interactions.iter().map(|r| r.time.0).collect();
        assert_eq!(times, vec![10.0, 15.0, 20.0]);
    }

    #[test]
    fn bitcoin_loader_drops_dust_and_self_transfers() {
        let text = "from,to,timestamp,btc\n\
                    addr1,addr2,1,0.5\n\
                    addr2,addr2,2,3.0\n\
                    addr2,addr3,3,0.00005\n\
                    addr3,addr1,4,2.0\n";
        let named = read_bitcoin_transactions(text.as_bytes()).unwrap();
        // Self-transfer and dust are dropped.
        assert_eq!(named.interactions.len(), 2);
        assert_eq!(named.interactions[0].qty, 0.5);
        assert_eq!(named.interactions[1].qty, 2.0);
        // addr2 and addr3 are still interned (they appear in kept records).
        assert!(named.interner.get("addr2").is_some());
        assert!(named.interner.get("addr3").is_some());
    }

    #[test]
    fn netflow_uses_time_first_column_order() {
        let text = "start,src,dst,bytes\n\
                    100,10.0.0.1,10.0.0.2,5000\n\
                    50,10.0.0.2,10.0.0.3,1500\n";
        let named = read_netflow(text.as_bytes()).unwrap();
        assert_eq!(named.interactions.len(), 2);
        // Sorted by the first column (start time).
        assert_eq!(named.interactions[0].qty, 1500.0);
        assert_eq!(named.interactions[1].qty, 5000.0);
        assert_eq!(
            named.interner.name_of(named.interactions[1].src),
            Some("10.0.0.1")
        );
    }

    #[test]
    fn comments_blank_lines_and_headerless_files() {
        let text = "# a comment\n\nalice bob 1 3\n";
        let named = read_named_edge_list(text.as_bytes()).unwrap();
        assert_eq!(named.interactions.len(), 1);
        // A file that starts directly with data (no header) also works.
        let text = "alice bob 1 3\nbob alice 2 1\n";
        let named = read_named_edge_list(text.as_bytes()).unwrap();
        assert_eq!(named.interactions.len(), 2);
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = read_named_edge_list("alice,bob,1\n".as_bytes()).unwrap_err();
        match err {
            TinError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("fields"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let err =
            read_named_edge_list("src,dst,time,qty\nalice,bob,xyz,1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TinError::Parse { line: 2, .. }));
        let err = read_named_edge_list("alice,bob,1,notanumber\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TinError::Parse { line: 1, .. }));
    }

    #[test]
    fn negative_and_zero_quantities_are_skipped() {
        let text = "alice,bob,1,0\nbob,carol,2,-3\ncarol,alice,3,2\n";
        let named = read_named_edge_list(text.as_bytes()).unwrap();
        assert_eq!(named.interactions.len(), 1);
        assert_eq!(named.interactions[0].qty, 2.0);
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let path =
            std::env::temp_dir().join(format!("tin_formats_test_{}.csv", std::process::id()));
        std::fs::write(&path, "alice bob 1 3\n").unwrap();
        let named = read_named_edge_list_file(&path).unwrap();
        assert_eq!(named.interactions.len(), 1);
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            read_named_edge_list_file("/nonexistent/missing.csv").unwrap_err(),
            TinError::Io(_)
        ));
    }

    #[test]
    fn loaded_stream_runs_through_trackers() {
        use tin_core::prelude::*;
        let text = "a b 1 5\nb c 2 3\nc a 3 4\na c 4 2\n";
        let named = read_named_edge_list(text.as_bytes()).unwrap();
        let mut tracker = ProportionalDenseTracker::new(named.num_vertices());
        tracker.process_all(&named.interactions);
        assert!(tracker.check_all_invariants());
        assert!(tracker.total_buffered() > 0.0);
    }
}
