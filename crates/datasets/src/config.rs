//! Dataset specifications and scale profiles.
//!
//! The paper evaluates on five real TINs (Table 6). The real traces are not
//! redistributable, so this crate generates synthetic TINs whose *shape*
//! (vertex count, interaction count, degree skew, quantity distribution)
//! matches the published statistics, at a configurable scale so the
//! experiments run on a laptop. The substitution rationale is documented in
//! `DESIGN.md`.

use serde::{Deserialize, Serialize};

/// The five datasets of the paper's evaluation (Table 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Bitcoin transaction network: 12M users, 45.5M transactions, BTC
    /// amounts (heavily skewed).
    Bitcoin,
    /// CTU botnet traffic: 608K IP addresses, 2.8M flows, bytes transferred.
    Ctu,
    /// Prosper peer-to-peer loans: 100K users, 3.08M loans, dollar amounts.
    ProsperLoans,
    /// US flights: 629 airports, 5.7M flights, 50–200 passengers per flight.
    Flights,
    /// NYC yellow taxi trips on 2019-01-01: 255 zones, 231K trips, passenger
    /// counts.
    Taxis,
}

impl DatasetKind {
    /// All five datasets, in the row order of Tables 6–8.
    pub fn all() -> [DatasetKind; 5] {
        [
            DatasetKind::Bitcoin,
            DatasetKind::Ctu,
            DatasetKind::ProsperLoans,
            DatasetKind::Flights,
            DatasetKind::Taxis,
        ]
    }

    /// Human-readable name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetKind::Bitcoin => "Bitcoin",
            DatasetKind::Ctu => "CTU",
            DatasetKind::ProsperLoans => "Prosper Loans",
            DatasetKind::Flights => "Flights",
            DatasetKind::Taxis => "Taxis",
        }
    }

    /// Short key used in file names and CSV output.
    pub fn key(&self) -> &'static str {
        match self {
            DatasetKind::Bitcoin => "bitcoin",
            DatasetKind::Ctu => "ctu",
            DatasetKind::ProsperLoans => "prosper",
            DatasetKind::Flights => "flights",
            DatasetKind::Taxis => "taxis",
        }
    }

    /// Vertex and interaction counts reported in Table 6 of the paper
    /// (`(#nodes, #interactions)`).
    pub fn paper_size(&self) -> (usize, usize) {
        match self {
            DatasetKind::Bitcoin => (12_000_000, 45_500_000),
            DatasetKind::Ctu => (608_000, 2_800_000),
            DatasetKind::ProsperLoans => (100_000, 3_080_000),
            DatasetKind::Flights => (629, 5_700_000),
            DatasetKind::Taxis => (255, 231_000),
        }
    }

    /// Average interaction quantity reported in Table 6.
    pub fn paper_avg_quantity(&self) -> f64 {
        match self {
            DatasetKind::Bitcoin => 34.4e9, // satoshi-scale average (34.4B)
            DatasetKind::Ctu => 19.2e3,     // 19.2 KB
            DatasetKind::ProsperLoans => 76.0,
            DatasetKind::Flights => 125.0,
            DatasetKind::Taxis => 1.53,
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How much of the paper-scale dataset to generate.
///
/// The full ("Paper") sizes are impractical on a laptop for the expensive
/// policies, which is exactly the paper's point; the smaller profiles keep
/// the *relative* characteristics (vertex/interaction ratio, skew) while
/// shrinking absolute counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ScaleProfile {
    /// ~1k interactions — unit/integration tests.
    Tiny,
    /// ~2% of paper scale, capped — default for Criterion benches.
    #[default]
    Small,
    /// ~10% of paper scale, capped — harness binaries.
    Medium,
    /// The sizes reported in Table 6 (only feasible for the cheap policies).
    Paper,
}

impl ScaleProfile {
    /// Short key used in output files.
    pub fn key(&self) -> &'static str {
        match self {
            ScaleProfile::Tiny => "tiny",
            ScaleProfile::Small => "small",
            ScaleProfile::Medium => "medium",
            ScaleProfile::Paper => "paper",
        }
    }

    /// Scale a paper-reported count down to this profile.
    fn scale_interactions(&self, paper: usize) -> usize {
        match self {
            ScaleProfile::Tiny => paper.min(1_000),
            ScaleProfile::Small => (paper / 50).clamp(2_000, 200_000),
            ScaleProfile::Medium => (paper / 10).clamp(10_000, 1_000_000),
            ScaleProfile::Paper => paper,
        }
    }

    /// Scale a paper-reported vertex count down to this profile, keeping the
    /// vertex:interaction ratio roughly intact (and at least 8 vertices so
    /// the topology generators have something to work with).
    fn scale_vertices(&self, paper_vertices: usize, paper_interactions: usize) -> usize {
        let interactions = self.scale_interactions(paper_interactions);
        if matches!(self, ScaleProfile::Paper) {
            return paper_vertices;
        }
        let ratio = paper_vertices as f64 / paper_interactions as f64;
        ((interactions as f64 * ratio).ceil() as usize).clamp(8, paper_vertices)
    }
}

/// A fully-specified synthetic dataset: which network, at what scale, with
/// which RNG seed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which of the five networks to emulate.
    pub kind: DatasetKind,
    /// Scale profile.
    pub scale: ScaleProfile,
    /// RNG seed (generation is fully deterministic given the spec).
    pub seed: u64,
}

impl DatasetSpec {
    /// Create a spec with the default seed (42).
    pub fn new(kind: DatasetKind, scale: ScaleProfile) -> Self {
        DatasetSpec {
            kind,
            scale,
            seed: 42,
        }
    }

    /// Create a spec with an explicit seed.
    pub fn with_seed(kind: DatasetKind, scale: ScaleProfile, seed: u64) -> Self {
        DatasetSpec { kind, scale, seed }
    }

    /// Number of vertices to generate.
    pub fn num_vertices(&self) -> usize {
        let (v, r) = self.kind.paper_size();
        self.scale.scale_vertices(v, r)
    }

    /// Number of interactions to generate.
    pub fn num_interactions(&self) -> usize {
        let (_, r) = self.kind.paper_size();
        self.scale.scale_interactions(r)
    }

    /// A file-name friendly identifier, e.g. `bitcoin_small_seed42`.
    pub fn slug(&self) -> String {
        format!("{}_{}_seed{}", self.kind.key(), self.scale.key(), self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_datasets_with_unique_keys() {
        let keys: std::collections::HashSet<&str> =
            DatasetKind::all().iter().map(|k| k.key()).collect();
        assert_eq!(keys.len(), 5);
    }

    #[test]
    fn paper_sizes_match_table6() {
        assert_eq!(DatasetKind::Bitcoin.paper_size(), (12_000_000, 45_500_000));
        assert_eq!(DatasetKind::Taxis.paper_size(), (255, 231_000));
        assert_eq!(DatasetKind::Flights.paper_size().0, 629);
        assert!(DatasetKind::ProsperLoans.paper_avg_quantity() > 0.0);
        assert_eq!(DatasetKind::Ctu.label(), "CTU");
        assert_eq!(DatasetKind::Bitcoin.to_string(), "Bitcoin");
    }

    #[test]
    fn tiny_profile_caps_interactions() {
        for kind in DatasetKind::all() {
            let spec = DatasetSpec::new(kind, ScaleProfile::Tiny);
            assert!(spec.num_interactions() <= 1_000);
            assert!(spec.num_vertices() >= 8);
        }
    }

    #[test]
    fn scales_are_monotone() {
        for kind in DatasetKind::all() {
            let tiny = DatasetSpec::new(kind, ScaleProfile::Tiny).num_interactions();
            let small = DatasetSpec::new(kind, ScaleProfile::Small).num_interactions();
            let medium = DatasetSpec::new(kind, ScaleProfile::Medium).num_interactions();
            let paper = DatasetSpec::new(kind, ScaleProfile::Paper).num_interactions();
            assert!(
                tiny <= small && small <= medium && medium <= paper,
                "{kind}"
            );
        }
    }

    #[test]
    fn paper_profile_reproduces_table6_sizes() {
        let spec = DatasetSpec::new(DatasetKind::Flights, ScaleProfile::Paper);
        assert_eq!(spec.num_vertices(), 629);
        assert_eq!(spec.num_interactions(), 5_700_000);
    }

    #[test]
    fn small_graphs_keep_full_vertex_sets_at_medium_scale() {
        // Flights and Taxis have tiny vertex sets; the scaled profiles must
        // never exceed the paper's vertex count.
        for kind in [DatasetKind::Flights, DatasetKind::Taxis] {
            for scale in [ScaleProfile::Small, ScaleProfile::Medium] {
                let spec = DatasetSpec::new(kind, scale);
                assert!(spec.num_vertices() <= kind.paper_size().0);
            }
        }
    }

    #[test]
    fn slug_and_seed() {
        let spec = DatasetSpec::with_seed(DatasetKind::Ctu, ScaleProfile::Small, 7);
        assert_eq!(spec.slug(), "ctu_small_seed7");
        assert_eq!(
            DatasetSpec::new(DatasetKind::Ctu, ScaleProfile::Small).seed,
            42
        );
    }

    #[test]
    fn default_scale_is_small() {
        assert_eq!(ScaleProfile::default(), ScaleProfile::Small);
        assert_eq!(ScaleProfile::Medium.key(), "medium");
    }
}
