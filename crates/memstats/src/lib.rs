//! # tin-memstats — allocator-level memory measurement
//!
//! The paper's evaluation reports the *peak memory* used by each provenance
//! mechanism (Tables 8 and 10, Figures 5–8). This crate provides a counting
//! global allocator and scoped measurement helpers so the experiment harness
//! can report allocator-level numbers next to the logical footprints computed
//! by `tin-core`'s `MemoryFootprint` trait.
//!
//! ## Usage
//!
//! ```ignore
//! use tin_memstats::{CountingAllocator, MemoryScope};
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator::new();
//!
//! let scope = MemoryScope::start();
//! // ... run the tracker ...
//! let report = scope.finish();
//! println!("peak while running: {} bytes", report.peak_delta_bytes);
//! ```
//!
//! The allocator is optional: when it is not installed the scope helpers
//! simply report zeros, so library code can call them unconditionally.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Bytes currently allocated through the counting allocator.
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`CURRENT`].
static PEAK: AtomicUsize = AtomicUsize::new(0);
/// Total number of allocation calls.
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
/// Whether a [`CountingAllocator`] is installed as the global allocator.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A global allocator that forwards to the system allocator while counting
/// live bytes, peak bytes and allocation calls.
pub struct CountingAllocator;

impl CountingAllocator {
    /// Create the allocator (const, so it can be used in a `static`).
    pub const fn new() -> Self {
        CountingAllocator
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

fn on_alloc(size: usize) {
    INSTALLED.store(true, Ordering::Relaxed);
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // Update the peak with a CAS loop (racy peaks are acceptable for the
    // experiment harness, but we avoid losing large updates).
    let mut peak = PEAK.load(Ordering::Relaxed);
    while now > peak {
        match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: all methods forward to the system allocator with the same layout;
// the bookkeeping uses only atomics and cannot panic or allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// A snapshot of the allocator counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemorySnapshot {
    /// Bytes currently allocated.
    pub current_bytes: usize,
    /// Peak bytes allocated since process start (or since the last
    /// [`reset_peak`]).
    pub peak_bytes: usize,
    /// Number of allocation calls since process start.
    pub allocations: usize,
}

/// Take a snapshot of the global counters. All zeros when the counting
/// allocator is not installed.
pub fn snapshot() -> MemorySnapshot {
    MemorySnapshot {
        current_bytes: CURRENT.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
    }
}

/// True if a [`CountingAllocator`] has observed at least one allocation,
/// i.e. it is installed as the global allocator.
pub fn allocator_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Reset the peak counter to the current live size. Useful between
/// experiment runs within one process.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Result of a [`MemoryScope`] measurement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Live bytes when the scope started.
    pub start_bytes: usize,
    /// Live bytes when the scope finished.
    pub end_bytes: usize,
    /// Peak bytes observed during the scope, relative to the start
    /// (`max(peak_during - start, 0)`), i.e. the peak *additional* memory the
    /// measured code needed.
    pub peak_delta_bytes: usize,
    /// Net live-byte growth over the scope (`end - start`, clamped at 0).
    pub retained_bytes: usize,
    /// Allocation calls during the scope.
    pub allocations: usize,
}

/// Measures peak and retained allocation over a region of code.
#[derive(Debug)]
pub struct MemoryScope {
    start: MemorySnapshot,
}

impl MemoryScope {
    /// Start a measurement scope. Resets the peak counter so that the peak
    /// reflects only allocations made after this call.
    pub fn start() -> Self {
        reset_peak();
        MemoryScope { start: snapshot() }
    }

    /// Finish the scope and produce a report.
    pub fn finish(self) -> MemoryReport {
        let end = snapshot();
        MemoryReport {
            start_bytes: self.start.current_bytes,
            end_bytes: end.current_bytes,
            peak_delta_bytes: end.peak_bytes.saturating_sub(self.start.current_bytes),
            retained_bytes: end.current_bytes.saturating_sub(self.start.current_bytes),
            allocations: end.allocations.saturating_sub(self.start.allocations),
        }
    }
}

/// Measure a closure: returns its result together with the memory report.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, MemoryReport) {
    let scope = MemoryScope::start();
    let value = f();
    (value, scope.finish())
}

/// Format a byte count for human-readable reports (KB/MB/GB, matching the
/// units used in the paper's tables).
pub fn format_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2}GB", b / GB)
    } else if b >= MB {
        format!("{:.2}MB", b / MB)
    } else if b >= KB {
        format!("{:.2}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the counting allocator is deliberately *not* installed in unit
    // tests (installing a global allocator affects the whole test binary).
    // These tests exercise the bookkeeping helpers directly.

    #[test]
    fn snapshot_fields_are_consistent() {
        let s = snapshot();
        // Peak never exceeds what was ever allocated plus live bytes; in this
        // test binary (no global allocator installed) both start at zero.
        assert!(s.peak_bytes >= s.current_bytes || s.current_bytes > 0);
    }

    #[test]
    fn on_alloc_dealloc_bookkeeping() {
        let before = snapshot();
        on_alloc(1024);
        let during = snapshot();
        assert!(during.current_bytes >= before.current_bytes + 1024);
        assert!(during.peak_bytes >= before.current_bytes + 1024);
        assert!(during.allocations > before.allocations);
        on_dealloc(1024);
        let after = snapshot();
        assert!(after.current_bytes <= during.current_bytes);
        assert!(allocator_installed());
    }

    #[test]
    fn scope_reports_growth() {
        let scope = MemoryScope::start();
        on_alloc(4096);
        let report = scope.finish();
        assert!(report.peak_delta_bytes >= 4096);
        assert!(report.retained_bytes >= 4096);
        assert!(report.allocations >= 1);
        on_dealloc(4096);
    }

    #[test]
    fn measure_returns_value_and_report() {
        let (value, report) = measure(|| {
            on_alloc(100);
            on_dealloc(100);
            42
        });
        assert_eq!(value, 42);
        assert!(report.allocations >= 1);
    }

    #[test]
    fn reset_peak_clamps_to_current() {
        on_alloc(10_000);
        on_dealloc(10_000);
        reset_peak();
        let s = snapshot();
        assert_eq!(s.peak_bytes, s.current_bytes);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(10), "10B");
        assert_eq!(format_bytes(2048), "2.00KB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3.00MB");
        assert_eq!(format_bytes(4 * 1024 * 1024 * 1024), "4.00GB");
    }

    #[test]
    fn default_constructor() {
        let _a: CountingAllocator = Default::default();
        let _b = CountingAllocator::new();
    }
}
