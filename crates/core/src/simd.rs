//! Vectorised kernels for dense provenance-vector arithmetic.
//!
//! The paper's implementation "exploits SIMD instructions to reduce the cost
//! of vector-wise operations" (Section 4.3) and observes in Figure 5(a) that
//! runtime is roughly constant for small vector lengths because of SIMD data
//! parallelism. We obtain the same effect portably: the kernels below process
//! fixed-size chunks with simple, dependency-free loops that LLVM reliably
//! auto-vectorises in release builds. (Explicit `std::simd` is still unstable
//! and platform intrinsics would violate the no-extra-dependency rule.)
//!
//! ## Who runs on these kernels
//!
//! Three provenance representations route their arithmetic through this
//! module:
//!
//! * [`crate::dense_vec::DenseProvenance`] — the paper's fixed dense
//!   vectors (full proportional, selective, grouped tracking);
//! * the dense half of [`crate::adaptive_vec::ProvenanceVec`] — vectors
//!   that *promoted themselves* at runtime because their sparse list grew
//!   past the configured density threshold. For those, `add_assign` /
//!   `add_scaled` / `scale` replace branchy ordered-list merges with
//!   straight-line chunked loops, which is the entire point of promoting;
//! * the ablation bench, which compares these chunked kernels against the
//!   scalar [`mod@reference`] implementations.
//!
//! The sparse/adaptive split is described in [`crate::sparse_vec`] and
//! [`crate::adaptive_vec`]; the promotion threshold is configured through
//! [`crate::policy::PolicyConfig::AdaptiveProportional`].

/// Chunk width used by the kernels. Eight `f64`s = one AVX-512 register or two
/// AVX2 registers; the exact value only matters for the ablation bench.
pub const CHUNK: usize = 8;

/// `dst[i] += src[i]` — the ⊕ operation of Algorithm 3 (line 6).
pub fn add_assign(dst: &mut [f64], src: &[f64]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "provenance vectors must have equal length"
    );
    let mut dst_chunks = dst.chunks_exact_mut(CHUNK);
    let mut src_chunks = src.chunks_exact(CHUNK);
    for (d, s) in dst_chunks.by_ref().zip(src_chunks.by_ref()) {
        for i in 0..CHUNK {
            d[i] += s[i];
        }
    }
    for (d, s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d += *s;
    }
}

/// `dst[i] += factor * src[i]` — the proportional transfer of Algorithm 3
/// (line 9): the destination receives the fraction `factor = r.q / |B_{r.s}|`
/// of every component of the source vector.
pub fn add_scaled(dst: &mut [f64], src: &[f64], factor: f64) {
    assert_eq!(
        dst.len(),
        src.len(),
        "provenance vectors must have equal length"
    );
    let mut dst_chunks = dst.chunks_exact_mut(CHUNK);
    let mut src_chunks = src.chunks_exact(CHUNK);
    for (d, s) in dst_chunks.by_ref().zip(src_chunks.by_ref()) {
        for i in 0..CHUNK {
            d[i] += factor * s[i];
        }
    }
    for (d, s) in dst_chunks
        .into_remainder()
        .iter_mut()
        .zip(src_chunks.remainder())
    {
        *d += factor * *s;
    }
}

/// `v[i] *= factor` — the ⊖ operation of Algorithm 3 (line 10) expressed as
/// keeping the complementary fraction `1 - r.q/|B_{r.s}|` at the source.
pub fn scale(v: &mut [f64], factor: f64) {
    let mut chunks = v.chunks_exact_mut(CHUNK);
    for c in chunks.by_ref() {
        for x in c.iter_mut() {
            *x *= factor;
        }
    }
    for x in chunks.into_remainder() {
        *x *= factor;
    }
}

/// Set every component to zero (resetting `p_{r.s}` after a full relay,
/// Algorithm 3 line 6).
pub fn clear(v: &mut [f64]) {
    for x in v.iter_mut() {
        *x = 0.0;
    }
}

/// Sum of all components (equals `|B_v|` for a consistent provenance vector).
pub fn sum(v: &[f64]) -> f64 {
    // Chunked accumulation into independent lanes, then a horizontal add:
    // faster and more accurate than a single serial accumulator.
    let mut lanes = [0.0f64; CHUNK];
    let mut chunks = v.chunks_exact(CHUNK);
    for c in chunks.by_ref() {
        for i in 0..CHUNK {
            lanes[i] += c[i];
        }
    }
    let mut total: f64 = lanes.iter().sum();
    for x in chunks.remainder() {
        total += *x;
    }
    total
}

/// Reference (non-chunked) implementations used by the ablation bench and the
/// property tests to validate the chunked kernels.
pub mod reference {
    /// Scalar `dst += src`.
    pub fn add_assign(dst: &mut [f64], src: &[f64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d += *s;
        }
    }

    /// Scalar `dst += factor * src`.
    pub fn add_scaled(dst: &mut [f64], src: &[f64], factor: f64) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d += factor * *s;
        }
    }

    /// Scalar `v *= factor`.
    pub fn scale(v: &mut [f64], factor: f64) {
        for x in v.iter_mut() {
            *x *= factor;
        }
    }

    /// Scalar sum.
    pub fn sum(v: &[f64]) -> f64 {
        v.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantity::qty_approx_eq;

    #[test]
    fn add_assign_matches_reference() {
        for len in [0, 1, 7, 8, 9, 31, 64, 100] {
            let mut a: Vec<f64> = (0..len).map(|i| i as f64).collect();
            let b: Vec<f64> = (0..len).map(|i| (i * 3) as f64 + 0.5).collect();
            let mut a_ref = a.clone();
            add_assign(&mut a, &b);
            reference::add_assign(&mut a_ref, &b);
            assert_eq!(a, a_ref, "len={len}");
        }
    }

    #[test]
    fn add_scaled_matches_reference() {
        for len in [0, 1, 5, 8, 13, 40] {
            let mut a: Vec<f64> = (0..len).map(|i| i as f64 * 0.25).collect();
            let b: Vec<f64> = (0..len).map(|i| (len - i) as f64).collect();
            let mut a_ref = a.clone();
            add_scaled(&mut a, &b, 0.3);
            reference::add_scaled(&mut a_ref, &b, 0.3);
            for (x, y) in a.iter().zip(&a_ref) {
                assert!(qty_approx_eq(*x, *y));
            }
        }
    }

    #[test]
    fn scale_matches_reference() {
        for len in [0, 3, 8, 17] {
            let mut a: Vec<f64> = (0..len).map(|i| i as f64 + 1.0).collect();
            let mut a_ref = a.clone();
            scale(&mut a, 0.6);
            reference::scale(&mut a_ref, 0.6);
            assert_eq!(a, a_ref);
        }
    }

    #[test]
    fn sum_matches_reference() {
        for len in [0, 1, 8, 9, 100] {
            let a: Vec<f64> = (0..len).map(|i| (i % 7) as f64 * 0.1).collect();
            assert!(qty_approx_eq(sum(&a), reference::sum(&a)));
        }
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut a = vec![1.0, 2.0, 3.0];
        clear(&mut a);
        assert_eq!(a, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn add_assign_length_mismatch_panics() {
        let mut a = vec![1.0; 3];
        add_assign(&mut a, &[1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn add_scaled_length_mismatch_panics() {
        let mut a = vec![1.0; 3];
        add_scaled(&mut a, &[1.0; 2], 0.5);
    }
}
