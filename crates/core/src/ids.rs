//! Identifier newtypes used throughout the TIN provenance library.
//!
//! The paper (Table 1) indexes vertices, groups of vertices and time moments.
//! We keep these as thin newtypes so that indices cannot be accidentally mixed
//! (e.g. a group id used where a vertex id is expected), while remaining
//! `Copy` and as cheap as the underlying integer / float.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a vertex `v ∈ V` of the temporal interaction network.
///
/// Vertex ids are dense indices in `0..|V|`, which lets trackers use them
/// directly as positions into dense provenance vectors `p_v` (Section 4.3 of
/// the paper).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Create a vertex id from a raw dense index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        VertexId(raw)
    }

    /// The raw dense index of this vertex.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(raw: u32) -> Self {
        VertexId(raw)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

impl From<usize> for VertexId {
    /// Convert a dense index into a vertex id.
    ///
    /// # Panics
    /// Panics if `raw` does not fit in `u32`; TINs with more than 4.29 billion
    /// vertices are out of scope (the largest dataset in the paper has 12M).
    #[inline]
    fn from(raw: usize) -> Self {
        VertexId(u32::try_from(raw).expect("vertex index exceeds u32::MAX"))
    }
}

/// Identifier of a *group* of vertices, used by grouped provenance tracking
/// (Section 5.2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Create a group id from a raw dense index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        GroupId(raw)
    }

    /// The raw dense index of this group.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u32> for GroupId {
    #[inline]
    fn from(raw: u32) -> Self {
        GroupId(raw)
    }
}

/// Origin of a quantity, as reported by provenance queries.
///
/// Most of the time an origin is a concrete [`VertexId`] (the vertex that
/// generated the quantity), but the scope-limiting techniques of Section 5.3
/// introduce the *artificial vertex α* representing "some vertex, no longer
/// tracked", and the selective/grouped techniques of Sections 5.1–5.2 report
/// aggregated origins ("any non-tracked vertex", "group g").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Origin {
    /// A concrete origin vertex.
    Vertex(VertexId),
    /// A group of vertices (grouped provenance tracking, Section 5.2).
    Group(GroupId),
    /// Any vertex outside the tracked set (selective tracking, Section 5.1).
    Untracked,
    /// The artificial vertex α: provenance that was discarded by windowing or
    /// budget shrinking (Section 5.3).
    Unknown,
}

impl Origin {
    /// Returns the concrete vertex if this origin is a single vertex.
    #[inline]
    pub fn as_vertex(self) -> Option<VertexId> {
        match self {
            Origin::Vertex(v) => Some(v),
            _ => None,
        }
    }

    /// True if this origin is the artificial vertex α or the aggregated
    /// "untracked" bucket, i.e. it does not identify a concrete source.
    #[inline]
    pub fn is_aggregate(self) -> bool {
        !matches!(self, Origin::Vertex(_))
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Vertex(v) => write!(f, "{v}"),
            Origin::Group(g) => write!(f, "{g}"),
            Origin::Untracked => write!(f, "other"),
            Origin::Unknown => write!(f, "α"),
        }
    }
}

impl From<VertexId> for Origin {
    #[inline]
    fn from(v: VertexId) -> Self {
        Origin::Vertex(v)
    }
}

/// A point in time. Interaction timestamps `r.t ∈ ℝ⁺` (Definition 1).
///
/// Stored as `f64` seconds (or any consistent unit); only the ordering matters
/// to the algorithms.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default, Serialize, Deserialize)]
pub struct Timestamp(pub f64);

impl Timestamp {
    /// Construct a timestamp from a raw value.
    #[inline]
    pub const fn new(t: f64) -> Self {
        Timestamp(t)
    }

    /// The zero timestamp.
    pub const ZERO: Timestamp = Timestamp(0.0);

    /// Raw value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl From<f64> for Timestamp {
    #[inline]
    fn from(t: f64) -> Self {
        Timestamp(t)
    }
}

impl Eq for Timestamp {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Timestamp {
    /// Total order over timestamps.
    ///
    /// Interaction timestamps are finite non-negative reals (Definition 1); we
    /// use `total_cmp` so that the order is total even if NaN sneaks in via a
    /// malformed data file, in which case NaN sorts after all real values.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
        assert_eq!(VertexId::from(42usize), v);
    }

    #[test]
    fn vertex_id_display() {
        assert_eq!(VertexId::new(7).to_string(), "v7");
        assert_eq!(format!("{:?}", VertexId::new(7)), "v7");
    }

    #[test]
    fn group_id_roundtrip() {
        let g = GroupId::new(3);
        assert_eq!(g.index(), 3);
        assert_eq!(g.to_string(), "g3");
        assert_eq!(GroupId::from(3u32), g);
    }

    #[test]
    fn origin_vertex_accessors() {
        let o = Origin::Vertex(VertexId::new(5));
        assert_eq!(o.as_vertex(), Some(VertexId::new(5)));
        assert!(!o.is_aggregate());
    }

    #[test]
    fn origin_aggregate_kinds() {
        assert!(Origin::Unknown.is_aggregate());
        assert!(Origin::Untracked.is_aggregate());
        assert!(Origin::Group(GroupId::new(0)).is_aggregate());
        assert_eq!(Origin::Unknown.as_vertex(), None);
    }

    #[test]
    fn origin_display() {
        assert_eq!(Origin::Vertex(VertexId::new(1)).to_string(), "v1");
        assert_eq!(Origin::Group(GroupId::new(2)).to_string(), "g2");
        assert_eq!(Origin::Untracked.to_string(), "other");
        assert_eq!(Origin::Unknown.to_string(), "α");
    }

    #[test]
    fn origin_ordering_is_stable() {
        let mut origins = vec![
            Origin::Unknown,
            Origin::Vertex(VertexId::new(9)),
            Origin::Vertex(VertexId::new(1)),
            Origin::Untracked,
        ];
        origins.sort();
        assert_eq!(
            origins,
            vec![
                Origin::Vertex(VertexId::new(1)),
                Origin::Vertex(VertexId::new(9)),
                Origin::Untracked,
                Origin::Unknown,
            ]
        );
    }

    #[test]
    fn timestamp_ordering() {
        let a = Timestamp::new(1.0);
        let b = Timestamp::new(2.5);
        assert!(a < b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(Timestamp::ZERO.value(), 0.0);
        assert_eq!(Timestamp::from(3.0).value(), 3.0);
    }

    #[test]
    fn timestamp_total_order_handles_nan() {
        let nan = Timestamp::new(f64::NAN);
        let one = Timestamp::new(1.0);
        // NaN sorts after finite values under total_cmp.
        assert_eq!(one.cmp(&nan), std::cmp::Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "vertex index exceeds u32::MAX")]
    fn vertex_id_from_huge_usize_panics() {
        let _ = VertexId::from(usize::MAX);
    }
}
