//! Adaptive provenance vectors: sparse lists that promote themselves to
//! dense SIMD vectors at runtime.
//!
//! Section 4.3 of the paper presents dense `|V|`-length vectors and sparse
//! ordered lists as a *compile-time* choice between two trackers: dense
//! vectors win on small, well-mixed origin spaces (SIMD arithmetic, no
//! branches), sparse lists win when each vertex sees few origins. On real
//! streams the right answer varies per vertex and over time — hub vertices
//! accumulate provenance from a large fraction of the network while leaf
//! vertices stay near-empty.
//!
//! [`ProvenanceVec`] makes the choice a *runtime* decision per vector. Every
//! vector starts as a [`SparseProvenance`] list; once its length crosses the
//! promotion threshold of the tracker's [`AdaptiveParams`] (a fraction of
//! `|V|`), it is promoted to a dense `Vec<f64>` indexed by origin slot and
//! all arithmetic routes through the [`crate::simd`] kernels. Scope-limiting
//! operations demote back to sparse: a window reset
//! ([`ProvenanceVec::reset_to_unknown`]) or a budget shrink
//! ([`ProvenanceVec::shrink_keep_largest_with`]) leaves at most a handful of
//! entries, so the list representation wins again.
//!
//! The dense slot layout over a `|V|`-vertex network is `|V| + 2` slots:
//! slot `v` for [`Origin::Vertex`]`(v)`, slot `|V|` for
//! [`Origin::Untracked`], slot `|V|+1` for [`Origin::Unknown`] — ascending
//! slot order equals ascending [`Origin`] order, so promotion and demotion
//! are single ordered passes. Group origins (Section 5.2) never occur in the
//! trackers that use this type; if one is ever added to a dense vector the
//! vector safely demotes itself back to a list.

use crate::ids::{Origin, VertexId};
use crate::memory::{vec_bytes, MemoryFootprint};
use crate::origins::OriginSet;
use crate::quantity::{qty_is_zero, Quantity};
use crate::simd;
use crate::sparse_vec::{MergeScratch, SparseProvenance};

thread_local! {
    /// Reusable scratch list for the dense-source → sparse-destination
    /// transfer path: the scaled dense slots are materialised here (bulk
    /// load into a warmed buffer, no per-interaction allocation) before an
    /// in-place merge into the destination.
    static TMP_SPARSE: std::cell::RefCell<SparseProvenance> =
        std::cell::RefCell::new(SparseProvenance::new());
}

/// Default promotion threshold: promote a vector once its list holds more
/// than this fraction of the origin space (see
/// [`crate::policy::PolicyConfig::AdaptiveProportional`]). At 0.5 a
/// promoted vector is no larger than the list it replaces (8-byte dense
/// slots vs 16-byte list entries), so the default never trades memory for
/// speed; lower thresholds promote earlier and bet on SIMD merges, higher
/// ones stay sparse longer.
pub const DEFAULT_DENSE_THRESHOLD: f64 = 0.5;

/// A list never promotes below this length, whatever the threshold says —
/// tiny dense vectors would only add promote/demote churn.
const MIN_PROMOTE_LEN: usize = 4;

/// Per-tracker adaptivity configuration shared by all of its vectors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveParams {
    /// Dense dimension (`|V| + 2`), or 0 when promotion is disabled.
    dense_dim: usize,
    /// List length at which a sparse vector promotes; `usize::MAX` disables
    /// promotion.
    promote_len: usize,
}

impl AdaptiveParams {
    /// Promotion disabled: vectors stay sparse forever (the paper's plain
    /// sparse representation).
    pub fn sparse_only() -> Self {
        AdaptiveParams {
            dense_dim: 0,
            promote_len: usize::MAX,
        }
    }

    /// Adaptive representation over `num_vertices` vertices: promote once a
    /// list holds at least `dense_threshold · num_vertices` entries.
    ///
    /// # Errors
    /// Returns [`crate::TinError::InvalidConfig`] unless
    /// `0 < dense_threshold ≤ 1`.
    pub fn new(num_vertices: usize, dense_threshold: f64) -> crate::Result<Self> {
        if !(dense_threshold.is_finite() && 0.0 < dense_threshold && dense_threshold <= 1.0) {
            // tin-lint: allow(hot-path-alloc): config-validation error path, runs once at construction
            return Err(crate::TinError::InvalidConfig(format!(
                "adaptive dense threshold must be in (0, 1], got {dense_threshold}"
            )));
        }
        let promote_len =
            ((num_vertices as f64 * dense_threshold).ceil() as usize).max(MIN_PROMOTE_LEN);
        Ok(AdaptiveParams {
            dense_dim: num_vertices + 2,
            promote_len,
        })
    }

    /// True if vectors governed by these parameters may promote to dense.
    pub fn promotion_enabled(&self) -> bool {
        self.promote_len != usize::MAX
    }

    /// The list length at which promotion fires.
    pub fn promote_len(&self) -> usize {
        self.promote_len
    }
}

/// Dense slot index of an origin, if it is representable.
#[inline]
fn slot_for(origin: Origin, dim: usize) -> Option<usize> {
    match origin {
        Origin::Vertex(v) if v.index() < dim - 2 => Some(v.index()),
        Origin::Untracked => Some(dim - 2),
        Origin::Unknown => Some(dim - 1),
        _ => None,
    }
}

/// Origin represented by a dense slot (inverse of [`slot_for`]).
#[inline]
fn origin_for(slot: usize, dim: usize) -> Origin {
    if slot == dim - 1 {
        Origin::Unknown
    } else if slot == dim - 2 {
        Origin::Untracked
    } else {
        Origin::Vertex(VertexId::from(slot))
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Repr {
    Sparse(SparseProvenance),
    Dense(Vec<Quantity>),
}

/// A provenance vector whose representation adapts at runtime (see the
/// module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct ProvenanceVec {
    repr: Repr,
}

impl Default for ProvenanceVec {
    fn default() -> Self {
        Self::new()
    }
}

impl ProvenanceVec {
    /// Create an empty vector (sparse representation).
    pub fn new() -> Self {
        ProvenanceVec {
            repr: Repr::Sparse(SparseProvenance::new()),
        }
    }

    /// Wrap an existing sparse list.
    pub fn from_sparse(sparse: SparseProvenance) -> Self {
        ProvenanceVec {
            repr: Repr::Sparse(sparse),
        }
    }

    /// True if this vector currently uses the dense representation.
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense(_))
    }

    /// Append the checkpoint encoding. The representation tag is part of the
    /// state: a restored vector stays in the same representation as the
    /// original, so promotion/demotion history replays identically.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use crate::codec::{put_f64, put_u8, put_usize};
        match &self.repr {
            Repr::Sparse(s) => {
                put_u8(out, 0);
                s.encode_into(out);
            }
            Repr::Dense(values) => {
                put_u8(out, 1);
                put_usize(out, values.len());
                for &v in values {
                    put_f64(out, v);
                }
            }
        }
    }

    /// Decode a vector written by [`Self::encode_into`].
    pub fn decode_from(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<Self> {
        let repr = match r.u8()? {
            0 => Repr::Sparse(SparseProvenance::decode_from(r)?),
            1 => {
                let len = r.usize()?;
                if r.remaining() < len.saturating_mul(8) {
                    // tin-lint: allow(hot-path-alloc): corrupt-checkpoint error path, not the streaming kernel
                    return Err(r.corrupt(format!("truncated: {len} dense slots declared")));
                }
                // tin-lint: allow(hot-path-alloc): checkpoint restore path, not the streaming kernel
                let mut values = Vec::with_capacity(len);
                for _ in 0..len {
                    values.push(r.f64()?);
                }
                Repr::Dense(values)
            }
            // tin-lint: allow(hot-path-alloc): corrupt-checkpoint error path, not the streaming kernel
            other => return Err(r.corrupt(format!("unknown provenance repr tag {other}"))),
        };
        Ok(ProvenanceVec { repr })
    }

    /// Number of non-zero entries (the sparse list length ℓ). O(1) for the
    /// sparse representation, O(dim) for the dense one.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(s) => s.len(),
            Repr::Dense(values) => values.iter().filter(|&&q| !qty_is_zero(q)).count(),
        }
    }

    /// True if the vector holds no quantity at all.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Sparse(s) => s.is_empty(),
            Repr::Dense(values) => values.iter().all(|&q| qty_is_zero(q)),
        }
    }

    /// Total represented quantity.
    pub fn total(&self) -> Quantity {
        match &self.repr {
            Repr::Sparse(s) => s.total(),
            Repr::Dense(values) => simd::sum(values),
        }
    }

    /// Quantity attributed to `origin` (0 if absent).
    pub fn get(&self, origin: Origin) -> Quantity {
        match &self.repr {
            Repr::Sparse(s) => s.get(origin),
            Repr::Dense(values) => slot_for(origin, values.len()).map_or(0.0, |slot| values[slot]),
        }
    }

    /// Quantity attributed to a concrete origin vertex.
    pub fn get_vertex(&self, v: VertexId) -> Quantity {
        self.get(Origin::Vertex(v))
    }

    /// Add `qty` to the entry for `origin`.
    pub fn add(&mut self, origin: Origin, qty: Quantity) {
        if qty_is_zero(qty) {
            return;
        }
        match &mut self.repr {
            Repr::Sparse(s) => {
                s.add(origin, qty);
                return;
            }
            Repr::Dense(values) => {
                if let Some(slot) = slot_for(origin, values.len()) {
                    values[slot] += qty;
                    return;
                }
            }
        }
        // Unrepresentable origin (a group) in a dense vector: fall back to
        // the sparse list, which can hold any origin.
        self.demote();
        self.add(origin, qty);
    }

    /// Add `qty` to the entry for a concrete vertex origin.
    pub fn add_vertex(&mut self, v: VertexId, qty: Quantity) {
        self.add(Origin::Vertex(v), qty);
    }

    /// Demote a dense destination whose sparse source holds an origin the
    /// dense slot layout cannot represent (a group).
    fn demote_if_unrepresentable(&mut self, src: &ProvenanceVec) {
        let must_demote = match (&self.repr, &src.repr) {
            (Repr::Dense(d), Repr::Sparse(s)) => {
                s.iter().any(|(o, _)| slot_for(o, d.len()).is_none())
            }
            _ => false,
        };
        if must_demote {
            self.demote();
        }
    }

    /// Full relay (Algorithm 3 lines 5–7): `self ⊕= src; src = 0`.
    ///
    /// Sparse/sparse pairs swap or merge in place without allocating. An
    /// empty sparse destination takes over a dense source by swapping
    /// representations (O(1), no allocation); a non-empty sparse destination
    /// promotes first — justified, because a full relay hands it *all* of
    /// the dense source's entries.
    pub fn take_all_from(&mut self, src: &mut ProvenanceVec) {
        if let (Repr::Sparse(dst), Repr::Dense(s)) = (&self.repr, &src.repr) {
            if dst.is_empty() {
                std::mem::swap(&mut self.repr, &mut src.repr);
                return;
            }
            let dim = s.len();
            if !self.promote_to(dim) {
                // Destination holds a group origin: demote the source.
                src.demote();
            }
        }
        self.demote_if_unrepresentable(src);
        match (&mut self.repr, &mut src.repr) {
            (Repr::Sparse(dst), Repr::Sparse(s)) => dst.take_all_from(s),
            (Repr::Dense(dst), Repr::Sparse(s)) => {
                let dim = dst.len();
                for (o, q) in s.iter() {
                    dst[slot_for(o, dim).expect("representability checked above")] += q;
                }
                s.clear();
            }
            (Repr::Dense(dst), Repr::Dense(s)) => {
                debug_assert_eq!(dst.len(), s.len(), "mismatched dense dimensions");
                simd::add_assign(dst, s);
                simd::clear(s);
            }
            (Repr::Sparse(_), Repr::Dense(_)) => {
                unreachable!("the sparse-dst/dense-src case is resolved above")
            }
        }
    }

    /// Proportional split (Algorithm 3 lines 8–10): `self ⊕= factor·src;
    /// src ⊖= factor·src`. Mass is conserved exactly on both
    /// representations (the sparse side folds epsilon-dropped entries into
    /// α, the dense side never drops).
    pub fn transfer_from(&mut self, src: &mut ProvenanceVec, factor: f64) {
        debug_assert!(
            (0.0..=1.0 + 1e-12).contains(&factor),
            "transfer fraction must be in [0,1], got {factor}"
        );
        // A sparse destination is never promoted pre-emptively for a
        // proportional transfer: with a small factor, most scaled entries
        // drop below the epsilon and the destination may end up holding only
        // a handful of entries — inflating it to `|V| + 2` dense slots up
        // front would spread the dense representation virally through the
        // network. Instead the scaled source is streamed into the sparse
        // list, and the *tracker* decides promotion afterwards from the
        // actual list length (`maybe_promote`).
        if let (Repr::Sparse(_), Repr::Dense(values)) = (&self.repr, &src.repr) {
            let dim = values.len();
            let mut dropped = 0.0;
            TMP_SPARSE.with(|cell| {
                let mut tmp = cell.borrow_mut();
                tmp.clear();
                // Slots are visited in ascending order, so this hits
                // `add_many`'s sorted bulk-load fast path: O(nnz), no sort,
                // and the warmed buffer means no allocation either.
                tmp.add_many(values.iter().enumerate().filter_map(|(slot, &v)| {
                    let q = factor * v;
                    if qty_is_zero(q) {
                        // The source still gives up factor·v for this slot
                        // (it is scaled by 1−factor below), so the share the
                        // destination cannot represent must fold into α —
                        // sub-epsilon *slots* included.
                        dropped += q;
                        None
                    } else {
                        Some((origin_for(slot, dim), q))
                    }
                }));
                if let Repr::Sparse(dst) = &mut self.repr {
                    dst.merge_add(&tmp);
                    dst.fold_into_unknown(dropped);
                }
            });
            src.scale(1.0 - factor);
            return;
        }
        self.demote_if_unrepresentable(src);
        match (&mut self.repr, &mut src.repr) {
            (Repr::Sparse(dst), Repr::Sparse(s)) => dst.transfer_from(s, factor),
            (Repr::Dense(dst), Repr::Sparse(s)) => {
                let dim = dst.len();
                for (o, q) in s.iter() {
                    dst[slot_for(o, dim).expect("representability checked above")] += factor * q;
                }
                s.scale(1.0 - factor);
            }
            (Repr::Dense(dst), Repr::Dense(s)) => {
                debug_assert_eq!(dst.len(), s.len(), "mismatched dense dimensions");
                simd::add_scaled(dst, s, factor);
                simd::scale(s, 1.0 - factor);
            }
            (Repr::Sparse(_), Repr::Dense(_)) => {
                unreachable!("the sparse-dst/dense-src case is resolved above")
            }
        }
    }

    /// Multiply every entry by `factor` (with α-folding on the sparse side).
    pub fn scale(&mut self, factor: f64) {
        match &mut self.repr {
            Repr::Sparse(s) => s.scale(factor),
            Repr::Dense(values) => simd::scale(values, factor),
        }
    }

    /// Remove all quantity. The representation is kept (a cleared dense
    /// vector is likely to refill densely).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Sparse(s) => s.clear(),
            Repr::Dense(values) => simd::clear(values),
        }
    }

    /// Replace the whole vector by a single `(α, total)` entry — the window
    /// reset of Section 5.3.1. Always demotes to the sparse representation
    /// (one entry does not need `|V| + 2` slots).
    pub fn reset_to_unknown(&mut self, total: Quantity) {
        let mut sparse =
            match std::mem::replace(&mut self.repr, Repr::Sparse(SparseProvenance::new())) {
                Repr::Sparse(s) => s,
                Repr::Dense(_) => SparseProvenance::new(),
            };
        sparse.reset_to_unknown(total);
        self.repr = Repr::Sparse(sparse);
    }

    /// Budget shrink (Section 5.3.2): keep the `keep` largest entries, fold
    /// the rest into α, and demote to the sparse representation (the result
    /// has at most `keep + 1` entries). Returns the folded quantity.
    pub fn shrink_keep_largest_with(
        &mut self,
        keep: usize,
        scratch: &mut MergeScratch,
    ) -> Quantity {
        self.demote();
        match &mut self.repr {
            Repr::Sparse(s) => s.shrink_keep_largest_with(keep, scratch),
            Repr::Dense(_) => unreachable!("demote() always leaves a sparse representation"),
        }
    }

    /// Promote a sparse vector to `dim` dense slots if every entry is
    /// representable. Returns true if the vector is dense afterwards.
    fn promote_to(&mut self, dim: usize) -> bool {
        let sparse = match &self.repr {
            Repr::Dense(_) => return true,
            Repr::Sparse(s) => s,
        };
        if sparse.iter().any(|(o, _)| slot_for(o, dim).is_none()) {
            return false;
        }
        // tin-lint: allow(hot-path-alloc): promotion is a rare representation switch, amortized over many interactions
        let mut values = vec![0.0; dim];
        for (o, q) in sparse.iter() {
            values[slot_for(o, dim).expect("checked above")] += q;
        }
        self.repr = Repr::Dense(values);
        true
    }

    /// Demote a dense vector back to a sparse list (no-op when already
    /// sparse).
    fn demote(&mut self) {
        if let Repr::Dense(values) = &self.repr {
            let dim = values.len();
            let sparse: SparseProvenance = values
                .iter()
                .enumerate()
                .filter(|(_, &q)| !qty_is_zero(q))
                .map(|(slot, &q)| (origin_for(slot, dim), q))
                .collect(); // tin-lint: allow(hot-path-alloc): demotion is a rare representation switch (window reset / budget shrink)
            self.repr = Repr::Sparse(sparse);
        }
    }

    /// Promote to dense if the list has crossed the threshold of `params`.
    /// Called by trackers after every growth operation; a no-op for
    /// sparse-only parameters or already-dense vectors.
    #[inline]
    pub fn maybe_promote(&mut self, params: &AdaptiveParams) {
        if let Repr::Sparse(s) = &self.repr {
            if s.len() >= params.promote_len {
                self.promote_to(params.dense_dim);
            }
        }
    }

    /// Visit every non-zero `(origin, quantity)` entry in origin order.
    pub fn for_each_entry(&self, mut f: impl FnMut(Origin, Quantity)) {
        match &self.repr {
            Repr::Sparse(s) => {
                for (o, q) in s.iter() {
                    f(o, q);
                }
            }
            Repr::Dense(values) => {
                let dim = values.len();
                for (slot, &q) in values.iter().enumerate() {
                    if !qty_is_zero(q) {
                        f(origin_for(slot, dim), q);
                    }
                }
            }
        }
    }

    /// Collect the non-zero entries (cold paths only — allocates).
    pub fn collect_entries(&self) -> Vec<(Origin, Quantity)> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_entry(|o, q| out.push((o, q)));
        out
    }

    /// Convert to an [`OriginSet`] query answer.
    pub fn to_origin_set(&self) -> OriginSet {
        // tin-lint: allow(hot-path-alloc): query-path conversion, not the per-interaction kernel; empty Vec::new never allocates
        let mut pairs = Vec::new();
        self.for_each_entry(|o, q| pairs.push((o, q)));
        OriginSet::from_pairs(pairs)
    }

    /// Internal consistency check used by debug assertions and tests.
    pub fn is_consistent(&self) -> bool {
        match &self.repr {
            Repr::Sparse(s) => s.is_consistent(),
            Repr::Dense(values) => values.iter().all(|q| q.is_finite() && *q > -1e-9),
        }
    }
}

impl MemoryFootprint for ProvenanceVec {
    fn footprint_bytes(&self) -> usize {
        match &self.repr {
            Repr::Sparse(s) => s.footprint_bytes(),
            Repr::Dense(values) => vec_bytes(values),
        }
    }
}

impl FromIterator<(Origin, Quantity)> for ProvenanceVec {
    fn from_iter<T: IntoIterator<Item = (Origin, Quantity)>>(iter: T) -> Self {
        // tin-lint: allow(hot-path-alloc): FromIterator construction happens at build/test time, not per interaction
        Self::from_sparse(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantity::qty_approx_eq;

    fn ov(i: u32) -> Origin {
        Origin::Vertex(VertexId::new(i))
    }

    fn params(n: usize, t: f64) -> AdaptiveParams {
        AdaptiveParams::new(n, t).unwrap()
    }

    #[test]
    fn params_validation() {
        assert!(AdaptiveParams::new(10, 0.0).is_err());
        assert!(AdaptiveParams::new(10, -0.5).is_err());
        assert!(AdaptiveParams::new(10, 1.5).is_err());
        assert!(AdaptiveParams::new(10, f64::NAN).is_err());
        let p = params(100, 0.25);
        assert!(p.promotion_enabled());
        assert_eq!(p.promote_len(), 25);
        assert!(!AdaptiveParams::sparse_only().promotion_enabled());
        // Tiny networks still respect the minimum promotion length.
        assert_eq!(params(4, 0.1).promote_len(), 4);
    }

    #[test]
    fn starts_sparse_and_promotes_at_threshold() {
        let p = params(16, 0.5); // promote at 8 entries
        let mut v = ProvenanceVec::new();
        for i in 0..7u32 {
            v.add(ov(i), 1.0);
            v.maybe_promote(&p);
            assert!(!v.is_dense(), "must stay sparse below the threshold");
        }
        v.add(ov(7), 1.0);
        v.maybe_promote(&p);
        assert!(v.is_dense());
        assert_eq!(v.len(), 8);
        assert!(qty_approx_eq(v.total(), 8.0));
        assert!(qty_approx_eq(v.get(ov(3)), 1.0));
        assert!(v.is_consistent());
    }

    #[test]
    fn sparse_only_never_promotes() {
        let p = AdaptiveParams::sparse_only();
        let mut v = ProvenanceVec::new();
        for i in 0..1000u32 {
            v.add(ov(i), 1.0);
            v.maybe_promote(&p);
        }
        assert!(!v.is_dense());
        assert_eq!(v.len(), 1000);
    }

    #[test]
    fn dense_and_sparse_agree_on_all_ops() {
        let p = params(32, 0.1);
        // Build identical contents in a promoted and an unpromoted vector.
        let pairs: Vec<(Origin, Quantity)> = (0..16u32)
            .map(|i| (ov(i), (i + 1) as f64))
            .chain([(Origin::Unknown, 2.5), (Origin::Untracked, 1.25)])
            .collect();
        let mut dense: ProvenanceVec = pairs.iter().copied().collect();
        dense.maybe_promote(&p);
        assert!(dense.is_dense());
        let sparse: ProvenanceVec = pairs.iter().copied().collect();
        assert!(!sparse.is_dense());

        assert!(qty_approx_eq(dense.total(), sparse.total()));
        assert_eq!(dense.len(), sparse.len());
        for (o, _) in &pairs {
            assert!(qty_approx_eq(dense.get(*o), sparse.get(*o)), "{o:?}");
        }
        assert!(dense.to_origin_set().approx_eq(&sparse.to_origin_set()));

        // Proportional transfer out of each; destinations must agree.
        let mut dense_src = dense.clone();
        let mut sparse_src = sparse.clone();
        let mut dense_dst = ProvenanceVec::new();
        let mut sparse_dst = ProvenanceVec::new();
        dense_dst.transfer_from(&mut dense_src, 0.4);
        sparse_dst.transfer_from(&mut sparse_src, 0.4);
        assert!(dense_dst
            .to_origin_set()
            .approx_eq(&sparse_dst.to_origin_set()));
        assert!(qty_approx_eq(dense_src.total(), sparse_src.total()));

        // Full relay; sources must end empty.
        let mut dense_dst2 = ProvenanceVec::new();
        dense_dst2.take_all_from(&mut dense_src);
        assert!(dense_src.is_empty());
        let mut sparse_dst2 = ProvenanceVec::new();
        sparse_dst2.take_all_from(&mut sparse_src);
        assert!(sparse_src.is_empty());
        assert!(dense_dst2
            .to_origin_set()
            .approx_eq(&sparse_dst2.to_origin_set()));
    }

    #[test]
    fn reset_and_shrink_demote() {
        let p = params(8, 0.5);
        let mut scratch = MergeScratch::new();
        let mut v: ProvenanceVec = (0..8u32).map(|i| (ov(i), (i + 1) as f64)).collect();
        v.maybe_promote(&p);
        assert!(v.is_dense());
        let removed = v.shrink_keep_largest_with(2, &mut scratch);
        assert!(!v.is_dense(), "shrink demotes back to sparse");
        assert!(removed > 0.0);
        assert_eq!(v.len(), 3); // 2 kept + α
        assert!(qty_approx_eq(v.total(), 36.0));

        let mut w: ProvenanceVec = (0..8u32).map(|i| (ov(i), 1.0)).collect();
        w.maybe_promote(&p);
        assert!(w.is_dense());
        w.reset_to_unknown(8.0);
        assert!(!w.is_dense(), "window reset demotes back to sparse");
        assert_eq!(w.len(), 1);
        assert!(qty_approx_eq(w.get(Origin::Unknown), 8.0));
    }

    #[test]
    fn group_origins_fall_back_to_sparse() {
        let p = params(8, 0.1);
        let mut v: ProvenanceVec = (0..6u32).map(|i| (ov(i), 1.0)).collect();
        v.maybe_promote(&p);
        assert!(v.is_dense());
        v.add(Origin::Group(crate::ids::GroupId::new(3)), 2.0);
        assert!(!v.is_dense(), "unrepresentable origin demotes");
        assert!(qty_approx_eq(v.total(), 8.0));
        assert!(v.is_consistent());
        // A vector holding a group origin refuses promotion but still merges.
        let mut dense_src: ProvenanceVec = (0..6u32).map(|i| (ov(i), 1.0)).collect();
        dense_src.maybe_promote(&p);
        v.take_all_from(&mut dense_src);
        assert!(qty_approx_eq(v.total(), 14.0));
        assert!(v.is_consistent());
    }

    #[test]
    fn mixed_representation_transfers() {
        let p = params(16, 0.25);
        // Dense destination, sparse source.
        let mut dst: ProvenanceVec = (0..8u32).map(|i| (ov(i), 1.0)).collect();
        dst.maybe_promote(&p);
        let mut src: ProvenanceVec = vec![(ov(2), 4.0), (ov(12), 2.0)].into_iter().collect();
        let before = dst.total() + src.total();
        dst.transfer_from(&mut src, 0.5);
        assert!(qty_approx_eq(dst.total() + src.total(), before));
        assert!(qty_approx_eq(dst.get(ov(2)), 3.0));
        assert!(qty_approx_eq(src.get(ov(12)), 1.0));

        // Sparse destination, dense source: destination promotes.
        let mut dense_src: ProvenanceVec = (0..8u32).map(|i| (ov(i), 2.0)).collect();
        dense_src.maybe_promote(&p);
        assert!(dense_src.is_dense());
        let mut sparse_dst: ProvenanceVec = vec![(ov(1), 1.0)].into_iter().collect();
        sparse_dst.take_all_from(&mut dense_src);
        assert!(sparse_dst.is_dense());
        assert!(dense_src.is_empty());
        assert!(qty_approx_eq(sparse_dst.total(), 17.0));
    }

    #[test]
    fn footprint_reflects_representation() {
        let p = params(64, 0.1);
        let mut v: ProvenanceVec = (0..7u32).map(|i| (ov(i), 1.0)).collect();
        let sparse_bytes = v.footprint_bytes();
        v.maybe_promote(&p);
        assert!(v.is_dense());
        // 66 dense slots outweigh 7 sparse entries.
        assert!(v.footprint_bytes() > sparse_bytes);
        assert_eq!(v.footprint_bytes(), 66 * std::mem::size_of::<f64>());
    }

    /// Regression (PR 2 review): the dense representation must not spread
    /// virally. A proportional transfer out of a dense hub streams into a
    /// sparse destination (which only promotes later, on its own length),
    /// and a full relay into an *empty* destination is a representation
    /// swap, not a fresh dense allocation.
    #[test]
    fn transfers_do_not_promote_small_destinations() {
        let p = params(16, 0.5); // promote at 8 entries
        let mut hub: ProvenanceVec = (0..10u32).map(|i| (ov(i), 100.0)).collect();
        hub.maybe_promote(&p);
        assert!(hub.is_dense());

        // Tiny transfer into a near-empty leaf: the leaf stays sparse.
        let mut leaf: ProvenanceVec = vec![(ov(12), 1.0)].into_iter().collect();
        let before = hub.total() + leaf.total();
        leaf.transfer_from(&mut hub, 0.01);
        assert!(!leaf.is_dense(), "a 1%% transfer must not densify the leaf");
        assert!(qty_approx_eq(leaf.total() + hub.total(), before));
        assert!(leaf.is_consistent() && hub.is_consistent());

        // Sub-epsilon dense slots: the transferred share of dust slots must
        // fold into the destination's α, not vanish (the source is scaled
        // down regardless).
        let mut dusty: ProvenanceVec = (0..10u32).map(|i| (ov(i), 1.0)).collect();
        dusty.maybe_promote(&p);
        assert!(dusty.is_dense());
        dusty.scale(1e-7); // every slot is now far below the epsilon
        let dust_total = dusty.total();
        let mut dst = ProvenanceVec::new();
        dst.transfer_from(&mut dusty, 0.5);
        assert!(
            ((dst.total() + dusty.total()) - dust_total).abs() < 1e-15,
            "dust transfer leaked mass: {} + {} vs {}",
            dst.total(),
            dusty.total(),
            dust_total
        );

        // Full relay into an empty vector: representations swap.
        let mut empty = ProvenanceVec::new();
        let hub_total = hub.total();
        empty.take_all_from(&mut hub);
        assert!(
            empty.is_dense(),
            "the relay target takes over the dense buffer"
        );
        assert!(!hub.is_dense() && hub.is_empty());
        assert!(qty_approx_eq(empty.total(), hub_total));
    }
}
