//! Binary encoding primitives shared by the checkpoint subsystem.
//!
//! Checkpoints must restore tracker state *bit-identically* — resumed runs
//! are proptested with `==` on floating-point provenance totals — so every
//! number is written in a fixed-width little-endian layout and every `f64`
//! round-trips through [`f64::to_bits`]/[`f64::from_bits`] without any
//! textual formatting in between. The writer side is a handful of free
//! functions appending to a `Vec<u8>`; the reader side is [`ByteReader`],
//! which carries the name of the checkpoint section being decoded so that
//! a short or malformed buffer surfaces as a diagnosable
//! [`TinError::CorruptCheckpoint`] rather than a generic I/O error.

use crate::error::{Result, TinError};

/// Append a single byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32` in little-endian byte order.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` in little-endian byte order.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `usize` as a `u64` (checkpoints are portable across platforms
/// with different pointer widths).
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append an `f64` as its IEEE-754 bit pattern. Exact: NaN payloads, signed
/// zeros, and subnormals all survive the round-trip.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a `bool` as one byte (0 or 1).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, u8::from(v));
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_usize(out, bytes.len());
    out.extend_from_slice(bytes);
}

/// Cursor over an encoded buffer that reports malformed input as
/// [`TinError::CorruptCheckpoint`], labelled with the section being decoded.
///
/// The `path` field of the raised errors is left empty; the file-level
/// reader patches in the real path before surfacing the error to callers.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: String,
}

impl<'a> ByteReader<'a> {
    /// Reader over `buf`, labelling errors with `section`.
    pub fn new(buf: &'a [u8], section: &str) -> Self {
        ByteReader {
            buf,
            pos: 0,
            section: section.to_string(),
        }
    }

    /// Relabel the section for subsequent errors (the checkpoint file reader
    /// reuses one reader across sections).
    pub fn set_section(&mut self, section: &str) {
        self.section = section.to_string();
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Build the section-labelled corruption error for `reason`.
    pub fn corrupt(&self, reason: impl Into<String>) -> TinError {
        TinError::CorruptCheckpoint {
            path: String::new(),
            section: self.section.clone(),
            reason: reason.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.corrupt(format!(
                "truncated: needed {n} bytes, {} remaining",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `usize` written by [`put_usize`], rejecting values that do not
    /// fit the platform's pointer width.
    pub fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("length {v} overflows usize")))
    }

    /// Read an `f64` bit pattern written by [`put_f64`].
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `bool` written by [`put_bool`], rejecting bytes other than 0/1.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.corrupt(format!("invalid bool byte {other}"))),
        }
    }

    /// Read a length-prefixed byte string written by [`put_bytes`].
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.usize()?;
        if self.remaining() < len {
            return Err(self.corrupt(format!(
                "truncated: byte string of length {len} with {} bytes remaining",
                self.remaining()
            )));
        }
        self.take(len)
    }

    /// Assert the reader consumed its whole buffer (catches trailing
    /// garbage appended to a section).
    pub fn expect_end(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(self.corrupt(format!("{} unexpected trailing bytes", self.remaining())))
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) over `bytes` —
/// the per-section integrity check of the checkpoint file format.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_usize(&mut buf, 123_456);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_bool(&mut buf, true);
        put_bytes(&mut buf, b"tin");

        let mut r = ByteReader::new(&buf, "test");
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.usize().unwrap(), 123_456);
        let z = r.f64().unwrap();
        assert_eq!(z.to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"tin");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_read_is_corrupt_checkpoint() {
        let buf = [1u8, 2];
        let mut r = ByteReader::new(&buf, "cursor");
        let err = r.u32().unwrap_err();
        match err {
            TinError::CorruptCheckpoint {
                section, reason, ..
            } => {
                assert_eq!(section, "cursor");
                assert!(reason.contains("truncated"));
            }
            other => panic!("expected CorruptCheckpoint, got {other:?}"),
        }
    }

    #[test]
    fn bad_bool_and_trailing_bytes_rejected() {
        let buf = [7u8, 9];
        let mut r = ByteReader::new(&buf, "states");
        assert!(matches!(r.bool(), Err(TinError::CorruptCheckpoint { .. })));
        assert!(matches!(
            r.expect_end(),
            Err(TinError::CorruptCheckpoint { .. })
        ));
    }

    #[test]
    fn oversized_byte_string_is_truncation_not_panic() {
        let mut buf = Vec::new();
        put_usize(&mut buf, 1_000_000);
        buf.extend_from_slice(&[0u8; 4]);
        let mut r = ByteReader::new(&buf, "states");
        assert!(matches!(r.bytes(), Err(TinError::CorruptCheckpoint { .. })));
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"tin"), crc32(b"tim"));
    }
}
