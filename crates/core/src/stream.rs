//! Streaming access to interaction sequences.
//!
//! The paper maintains provenance *in real time, as new interactions take
//! place in a streaming fashion* (Section 1). The trackers therefore consume
//! interactions one at a time through the [`InteractionSource`] abstraction,
//! which also performs the ordering validation that the offline [`crate::Tin`]
//! constructor does eagerly.

use crate::error::{Result, TinError};
use crate::graph::Tin;
use crate::interaction::Interaction;

/// A source of time-ordered interactions.
///
/// This is intentionally close to `Iterator<Item = Result<Interaction>>`: a
/// source may be backed by an in-memory vector, a file parser, or a synthetic
/// generator, and may fail mid-stream (I/O or parse errors).
pub trait InteractionSource {
    /// Produce the next interaction, `Ok(None)` at end of stream.
    fn next_interaction(&mut self) -> Result<Option<Interaction>>;

    /// A hint of the total number of interactions, if known (used by the
    /// experiment harness for progress reporting and pre-allocation).
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// Drain the source into a vector.
    fn collect_all(&mut self) -> Result<Vec<Interaction>> {
        let mut out = Vec::with_capacity(self.len_hint().unwrap_or(0));
        while let Some(r) = self.next_interaction()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// How a [`VecSource`] treats interactions that go backwards in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OrderingPolicy {
    /// Return [`TinError::OutOfOrder`] when time decreases (default).
    #[default]
    Strict,
    /// Silently accept out-of-order interactions (the caller guarantees the
    /// order is intended, e.g. "order of receipt" streams).
    Permissive,
}

/// An in-memory interaction source with optional ordering validation.
#[derive(Clone, Debug)]
pub struct VecSource {
    interactions: Vec<Interaction>,
    pos: usize,
    policy: OrderingPolicy,
    last_time: Option<f64>,
}

impl VecSource {
    /// Create a strict (time-ordered) source over a vector of interactions.
    pub fn new(interactions: Vec<Interaction>) -> Self {
        VecSource {
            interactions,
            pos: 0,
            policy: OrderingPolicy::Strict,
            last_time: None,
        }
    }

    /// Create a source with an explicit ordering policy.
    pub fn with_policy(interactions: Vec<Interaction>, policy: OrderingPolicy) -> Self {
        VecSource {
            interactions,
            pos: 0,
            policy,
            last_time: None,
        }
    }

    /// Create a source over a whole TIN's interaction sequence.
    pub fn from_tin(tin: &Tin) -> Self {
        Self::new(tin.interactions().to_vec())
    }

    /// Number of interactions already produced.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl InteractionSource for VecSource {
    fn next_interaction(&mut self) -> Result<Option<Interaction>> {
        if self.pos >= self.interactions.len() {
            return Ok(None);
        }
        let r = self.interactions[self.pos];
        r.validate(Some(self.pos))?;
        if self.policy == OrderingPolicy::Strict {
            if let Some(prev) = self.last_time {
                if r.time.0 < prev {
                    return Err(TinError::OutOfOrder {
                        position: self.pos,
                        previous: prev,
                        current: r.time.0,
                    });
                }
            }
        }
        self.last_time = Some(r.time.0);
        self.pos += 1;
        Ok(Some(r))
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.interactions.len())
    }
}

/// Merge several time-ordered sources into one time-ordered stream
/// (k-way merge). Useful when a TIN is stored partitioned, e.g. one file per
/// day of taxi trips.
pub struct MergedSource<S: InteractionSource> {
    sources: Vec<S>,
    /// Lookahead buffer: the next pending interaction of each source.
    heads: Vec<Option<Interaction>>,
    initialized: bool,
}

impl<S: InteractionSource> MergedSource<S> {
    /// Create a merged source. Each inner source must itself be time-ordered.
    pub fn new(sources: Vec<S>) -> Self {
        let n = sources.len();
        MergedSource {
            sources,
            heads: vec![None; n],
            initialized: false,
        }
    }

    fn fill_head(&mut self, i: usize) -> Result<()> {
        self.heads[i] = self.sources[i].next_interaction()?;
        Ok(())
    }
}

impl<S: InteractionSource> InteractionSource for MergedSource<S> {
    fn next_interaction(&mut self) -> Result<Option<Interaction>> {
        if !self.initialized {
            for i in 0..self.sources.len() {
                self.fill_head(i)?;
            }
            self.initialized = true;
        }
        // Find the head with the smallest timestamp.
        let mut best: Option<(usize, f64)> = None;
        for (i, head) in self.heads.iter().enumerate() {
            if let Some(r) = head {
                match best {
                    None => best = Some((i, r.time.0)),
                    Some((_, t)) if r.time.0 < t => best = Some((i, r.time.0)),
                    _ => {}
                }
            }
        }
        match best {
            None => Ok(None),
            Some((i, _)) => {
                let r = self.heads[i].take();
                self.fill_head(i)?;
                Ok(r)
            }
        }
    }

    fn len_hint(&self) -> Option<usize> {
        self.sources.iter().map(|s| s.len_hint()).sum()
    }
}

/// Adapter exposing any `InteractionSource` as a standard iterator of
/// `Result<Interaction>`.
pub struct SourceIter<S: InteractionSource>(pub S);

impl<S: InteractionSource> Iterator for SourceIter<S> {
    type Item = Result<Interaction>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.0.next_interaction() {
            Ok(Some(r)) => Some(Ok(r)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;

    #[test]
    fn vec_source_yields_all_in_order() {
        let mut src = VecSource::new(paper_running_example());
        assert_eq!(src.len_hint(), Some(6));
        let all = src.collect_all().unwrap();
        assert_eq!(all.len(), 6);
        assert_eq!(src.position(), 6);
        // After exhaustion the source keeps returning None.
        assert!(src.next_interaction().unwrap().is_none());
    }

    #[test]
    fn vec_source_detects_out_of_order() {
        let rs = vec![
            Interaction::new(0u32, 1u32, 5.0, 1.0),
            Interaction::new(1u32, 2u32, 3.0, 1.0),
        ];
        let mut src = VecSource::new(rs.clone());
        assert!(src.next_interaction().is_ok());
        let err = src.next_interaction().unwrap_err();
        assert!(matches!(err, TinError::OutOfOrder { position: 1, .. }));

        // Permissive policy accepts the same stream.
        let mut src = VecSource::with_policy(rs, OrderingPolicy::Permissive);
        assert_eq!(src.collect_all().unwrap().len(), 2);
    }

    #[test]
    fn vec_source_validates_interactions() {
        let rs = vec![Interaction::new(0u32, 0u32, 1.0, 1.0)];
        let mut src = VecSource::new(rs);
        let err = src.next_interaction().unwrap_err();
        assert!(matches!(err, TinError::SelfLoop { .. }));
    }

    #[test]
    fn from_tin_roundtrip() {
        let tin = Tin::from_interactions(3, paper_running_example()).unwrap();
        let mut src = VecSource::from_tin(&tin);
        assert_eq!(src.collect_all().unwrap(), paper_running_example());
    }

    #[test]
    fn merged_source_interleaves_by_time() {
        let a = VecSource::new(vec![
            Interaction::new(0u32, 1u32, 1.0, 1.0),
            Interaction::new(0u32, 1u32, 4.0, 1.0),
        ]);
        let b = VecSource::new(vec![
            Interaction::new(1u32, 2u32, 2.0, 1.0),
            Interaction::new(1u32, 2u32, 3.0, 1.0),
            Interaction::new(1u32, 2u32, 9.0, 1.0),
        ]);
        let mut merged = MergedSource::new(vec![a, b]);
        assert_eq!(merged.len_hint(), Some(5));
        let all = merged.collect_all().unwrap();
        let times: Vec<f64> = all.iter().map(|r| r.time.value()).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 9.0]);
    }

    #[test]
    fn merged_source_with_empty_inputs() {
        let empty = VecSource::new(vec![]);
        let one = VecSource::new(vec![Interaction::new(0u32, 1u32, 1.0, 2.0)]);
        let mut merged = MergedSource::new(vec![empty, one]);
        let all = merged.collect_all().unwrap();
        assert_eq!(all.len(), 1);
        let mut nothing = MergedSource::new(Vec::<VecSource>::new());
        assert!(nothing.next_interaction().unwrap().is_none());
    }

    #[test]
    fn source_iter_adapter() {
        let src = VecSource::new(paper_running_example());
        let collected: Result<Vec<_>> = SourceIter(src).collect();
        assert_eq!(collected.unwrap().len(), 6);
    }
}
