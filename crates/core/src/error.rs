//! Error types for the TIN provenance library.

use std::fmt;

use crate::ids::VertexId;

/// Errors raised while building or processing a temporal interaction network.
#[derive(Debug, Clone, PartialEq)]
pub enum TinError {
    /// An interaction carried a non-positive or non-finite quantity.
    InvalidQuantity {
        /// The offending quantity value.
        quantity: f64,
        /// Index of the interaction in the stream, if known.
        position: Option<usize>,
    },
    /// An interaction carried a negative or non-finite timestamp.
    InvalidTimestamp {
        /// The offending timestamp value.
        timestamp: f64,
        /// Index of the interaction in the stream, if known.
        position: Option<usize>,
    },
    /// An interaction referenced a vertex outside the declared vertex set.
    UnknownVertex {
        /// The unknown vertex.
        vertex: VertexId,
        /// Number of vertices the tracker was configured with.
        num_vertices: usize,
    },
    /// A self-loop interaction (`r.s == r.d`) was encountered and the
    /// configuration forbids them.
    SelfLoop {
        /// The vertex interacting with itself.
        vertex: VertexId,
        /// Index of the interaction in the stream, if known.
        position: Option<usize>,
    },
    /// The interaction stream was not sorted by time and strict ordering was
    /// requested.
    OutOfOrder {
        /// Index of the interaction that went back in time.
        position: usize,
        /// Timestamp of the previous interaction.
        previous: f64,
        /// Timestamp of the offending interaction.
        current: f64,
    },
    /// A parse error while reading interactions from a text format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Configuration error (e.g. zero groups, empty tracked set, zero budget).
    InvalidConfig(String),
    /// An I/O error, stringified to keep the error type `Clone + PartialEq`.
    Io(String),
    /// A shard worker thread of the parallel engine terminated (panicked or
    /// dropped its channels) before the computation finished. The engine is
    /// poisoned: every subsequent operation returns this error instead of
    /// hanging on a channel that will never be served.
    WorkerLost {
        /// The shard whose worker died first, when known.
        shard: Option<usize>,
    },
}

impl fmt::Display for TinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TinError::InvalidQuantity { quantity, position } => match position {
                Some(p) => write!(f, "interaction #{p}: invalid quantity {quantity}"),
                None => write!(f, "invalid quantity {quantity}"),
            },
            TinError::InvalidTimestamp {
                timestamp,
                position,
            } => match position {
                Some(p) => write!(f, "interaction #{p}: invalid timestamp {timestamp}"),
                None => write!(f, "invalid timestamp {timestamp}"),
            },
            TinError::UnknownVertex {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} is outside the declared vertex set of size {num_vertices}"
            ),
            TinError::SelfLoop { vertex, position } => match position {
                Some(p) => write!(f, "interaction #{p}: self-loop at {vertex}"),
                None => write!(f, "self-loop at {vertex}"),
            },
            TinError::OutOfOrder {
                position,
                previous,
                current,
            } => write!(
                f,
                "interaction #{position} is out of order: time {current} < previous {previous}"
            ),
            TinError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            TinError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TinError::Io(msg) => write!(f, "I/O error: {msg}"),
            TinError::WorkerLost { shard } => match shard {
                Some(s) => write!(
                    f,
                    "shard worker {s} terminated before the computation finished; \
                     the sharded engine is poisoned"
                ),
                None => write!(
                    f,
                    "a shard worker terminated before the computation finished; \
                     the sharded engine is poisoned"
                ),
            },
        }
    }
}

impl std::error::Error for TinError {}

impl From<std::io::Error> for TinError {
    fn from(e: std::io::Error) -> Self {
        TinError::Io(e.to_string())
    }
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TinError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_quantity() {
        let e = TinError::InvalidQuantity {
            quantity: -3.0,
            position: Some(7),
        };
        assert_eq!(e.to_string(), "interaction #7: invalid quantity -3");
        let e = TinError::InvalidQuantity {
            quantity: 0.0,
            position: None,
        };
        assert_eq!(e.to_string(), "invalid quantity 0");
    }

    #[test]
    fn display_unknown_vertex() {
        let e = TinError::UnknownVertex {
            vertex: VertexId::new(10),
            num_vertices: 5,
        };
        assert!(e.to_string().contains("v10"));
        assert!(e.to_string().contains("size 5"));
    }

    #[test]
    fn display_out_of_order() {
        let e = TinError::OutOfOrder {
            position: 3,
            previous: 5.0,
            current: 4.0,
        };
        assert!(e.to_string().contains("#3"));
        assert!(e.to_string().contains("out of order"));
    }

    #[test]
    fn display_self_loop_and_parse_and_config() {
        let e = TinError::SelfLoop {
            vertex: VertexId::new(2),
            position: Some(1),
        };
        assert!(e.to_string().contains("self-loop"));
        let e = TinError::Parse {
            line: 12,
            message: "expected 4 fields".into(),
        };
        assert!(e.to_string().contains("line 12"));
        let e = TinError::InvalidConfig("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
    }

    #[test]
    fn io_error_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let e: TinError = io.into();
        assert!(matches!(e, TinError::Io(_)));
        assert!(e.to_string().contains("missing file"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        let e = TinError::InvalidConfig("x".into());
        takes_err(&e);
    }
}
