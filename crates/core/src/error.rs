//! Error types for the TIN provenance library.

use std::fmt;

use crate::ids::VertexId;

/// Errors raised while building or processing a temporal interaction network.
#[derive(Debug, Clone, PartialEq)]
pub enum TinError {
    /// An interaction carried a non-positive or non-finite quantity.
    InvalidQuantity {
        /// The offending quantity value.
        quantity: f64,
        /// Index of the interaction in the stream, if known.
        position: Option<usize>,
    },
    /// An interaction carried a negative or non-finite timestamp.
    InvalidTimestamp {
        /// The offending timestamp value.
        timestamp: f64,
        /// Index of the interaction in the stream, if known.
        position: Option<usize>,
    },
    /// An interaction referenced a vertex outside the declared vertex set.
    UnknownVertex {
        /// The unknown vertex.
        vertex: VertexId,
        /// Number of vertices the tracker was configured with.
        num_vertices: usize,
    },
    /// A self-loop interaction (`r.s == r.d`) was encountered and the
    /// configuration forbids them.
    SelfLoop {
        /// The vertex interacting with itself.
        vertex: VertexId,
        /// Index of the interaction in the stream, if known.
        position: Option<usize>,
    },
    /// The interaction stream was not sorted by time and strict ordering was
    /// requested.
    OutOfOrder {
        /// Index of the interaction that went back in time.
        position: usize,
        /// Timestamp of the previous interaction.
        previous: f64,
        /// Timestamp of the offending interaction.
        current: f64,
    },
    /// A parse error while reading interactions from a text format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Configuration error (e.g. zero groups, empty tracked set, zero budget).
    InvalidConfig(String),
    /// An I/O error, stringified to keep the error type `Clone + PartialEq`.
    Io(String),
    /// A shard worker thread of the parallel engine terminated (panicked or
    /// dropped its channels) before the computation finished. The engine is
    /// poisoned: every subsequent operation returns this error instead of
    /// hanging on a channel that will never be served.
    WorkerLost {
        /// The shard whose worker died first, when known.
        shard: Option<usize>,
    },
    /// A checkpoint file failed validation: a section checksum mismatched,
    /// the file was truncated, or a decoded value was malformed. Recovery
    /// never installs state from such a file; it falls back to the previous
    /// retained checkpoint instead.
    CorruptCheckpoint {
        /// Path of the offending checkpoint file (empty when the error was
        /// raised below the file layer, before the path is known).
        path: String,
        /// The file section that failed (`header`, `policy`, `cursor`,
        /// `states`, …).
        section: String,
        /// Human-readable description of the failure.
        reason: String,
    },
    /// A checkpoint file carries a schema version this build cannot decode.
    CheckpointVersionMismatch {
        /// The schema version found in the file header.
        found: u32,
        /// The schema version this build supports.
        supported: u32,
    },
}

impl fmt::Display for TinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TinError::InvalidQuantity { quantity, position } => match position {
                Some(p) => write!(f, "interaction #{p}: invalid quantity {quantity}"),
                None => write!(f, "invalid quantity {quantity}"),
            },
            TinError::InvalidTimestamp {
                timestamp,
                position,
            } => match position {
                Some(p) => write!(f, "interaction #{p}: invalid timestamp {timestamp}"),
                None => write!(f, "invalid timestamp {timestamp}"),
            },
            TinError::UnknownVertex {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} is outside the declared vertex set of size {num_vertices}"
            ),
            TinError::SelfLoop { vertex, position } => match position {
                Some(p) => write!(f, "interaction #{p}: self-loop at {vertex}"),
                None => write!(f, "self-loop at {vertex}"),
            },
            TinError::OutOfOrder {
                position,
                previous,
                current,
            } => write!(
                f,
                "interaction #{position} is out of order: time {current} < previous {previous}"
            ),
            TinError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            TinError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TinError::Io(msg) => write!(f, "I/O error: {msg}"),
            TinError::WorkerLost { shard } => match shard {
                Some(s) => write!(
                    f,
                    "shard worker {s} terminated before the computation finished; \
                     the sharded engine is poisoned"
                ),
                None => write!(
                    f,
                    "a shard worker terminated before the computation finished; \
                     the sharded engine is poisoned"
                ),
            },
            TinError::CorruptCheckpoint {
                path,
                section,
                reason,
            } => {
                if path.is_empty() {
                    write!(f, "corrupt checkpoint: section `{section}`: {reason}")
                } else {
                    write!(
                        f,
                        "corrupt checkpoint {path}: section `{section}`: {reason}"
                    )
                }
            }
            TinError::CheckpointVersionMismatch { found, supported } => write!(
                f,
                "checkpoint schema version {found} is not supported \
                 (this build reads version {supported})"
            ),
        }
    }
}

impl std::error::Error for TinError {}

impl From<std::io::Error> for TinError {
    fn from(e: std::io::Error) -> Self {
        TinError::Io(e.to_string())
    }
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, TinError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_quantity() {
        let e = TinError::InvalidQuantity {
            quantity: -3.0,
            position: Some(7),
        };
        assert_eq!(e.to_string(), "interaction #7: invalid quantity -3");
        let e = TinError::InvalidQuantity {
            quantity: 0.0,
            position: None,
        };
        assert_eq!(e.to_string(), "invalid quantity 0");
    }

    #[test]
    fn display_unknown_vertex() {
        let e = TinError::UnknownVertex {
            vertex: VertexId::new(10),
            num_vertices: 5,
        };
        assert!(e.to_string().contains("v10"));
        assert!(e.to_string().contains("size 5"));
    }

    #[test]
    fn display_out_of_order() {
        let e = TinError::OutOfOrder {
            position: 3,
            previous: 5.0,
            current: 4.0,
        };
        assert!(e.to_string().contains("#3"));
        assert!(e.to_string().contains("out of order"));
    }

    #[test]
    fn display_self_loop_and_parse_and_config() {
        let e = TinError::SelfLoop {
            vertex: VertexId::new(2),
            position: Some(1),
        };
        assert!(e.to_string().contains("self-loop"));
        let e = TinError::Parse {
            line: 12,
            message: "expected 4 fields".into(),
        };
        assert!(e.to_string().contains("line 12"));
        let e = TinError::InvalidConfig("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
    }

    #[test]
    fn io_error_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let e: TinError = io.into();
        assert!(matches!(e, TinError::Io(_)));
        assert!(e.to_string().contains("missing file"));
    }

    #[test]
    fn display_corrupt_checkpoint() {
        let e = TinError::CorruptCheckpoint {
            path: "ckpt/ckpt-000000000064.tin".into(),
            section: "states".into(),
            reason: "crc mismatch".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("ckpt-000000000064.tin"));
        assert!(msg.contains("`states`"));
        assert!(msg.contains("crc mismatch"));

        let e = TinError::CorruptCheckpoint {
            path: String::new(),
            section: "cursor".into(),
            reason: "truncated".into(),
        };
        assert_eq!(
            e.to_string(),
            "corrupt checkpoint: section `cursor`: truncated"
        );
    }

    #[test]
    fn display_checkpoint_version_mismatch() {
        let e = TinError::CheckpointVersionMismatch {
            found: 9,
            supported: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("version 9"));
        assert!(msg.contains("version 1"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        let e = TinError::InvalidConfig("x".into());
        takes_err(&e);
    }
}
