//! Quantities transferred by interactions.
//!
//! Quantities `r.q ∈ ℝ⁺` (Definition 1) are non-negative reals: BTC amounts,
//! bytes, passengers, dollars. Proportional selection (Section 4.3) splits
//! quantities by arbitrary real ratios, so exact integer arithmetic is not an
//! option; instead we use `f64` together with an explicit tolerance for the
//! conservation checks that the trackers and the test-suite rely on.

/// Absolute tolerance used when comparing accumulated quantities.
///
/// Provenance trackers repeatedly split and re-add `f64` quantities; the
/// resulting rounding error is bounded by a few ULPs per operation, so a fixed
/// absolute epsilon combined with a relative epsilon is enough for all
/// realistic interaction streams (the paper's largest dataset performs 45.5M
/// additions on quantities up to ~10^10).
pub const QTY_ABS_EPSILON: f64 = 1e-6;

/// Relative tolerance used when comparing large accumulated quantities.
pub const QTY_REL_EPSILON: f64 = 1e-9;

/// A transferred or buffered quantity.
pub type Quantity = f64;

/// Returns true if two quantities are equal within the library tolerance.
///
/// The comparison uses the maximum of an absolute and a relative bound so it
/// behaves sensibly both for tiny passenger counts and for billion-scale
/// satoshi amounts.
#[inline]
pub fn qty_approx_eq(a: Quantity, b: Quantity) -> bool {
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs());
    diff <= QTY_ABS_EPSILON.max(QTY_REL_EPSILON * scale)
}

/// Returns true if a quantity should be treated as zero.
///
/// Buffers drop entries whose quantity falls below this threshold; otherwise
/// proportional splitting would accumulate unbounded numbers of infinitesimal
/// residues.
#[inline]
pub fn qty_is_zero(q: Quantity) -> bool {
    q.abs() <= QTY_ABS_EPSILON
}

/// Returns true if `a` is strictly greater than `b` beyond the tolerance.
#[inline]
pub fn qty_gt(a: Quantity, b: Quantity) -> bool {
    a > b && !qty_approx_eq(a, b)
}

/// Returns true if `a >= b` up to the tolerance.
#[inline]
pub fn qty_ge(a: Quantity, b: Quantity) -> bool {
    a > b || qty_approx_eq(a, b)
}

/// Clamp a slightly negative rounding residue to zero.
///
/// Subtracting a transferred amount from a buffer can leave `-1e-17` instead
/// of `0`; callers use this to keep buffered totals non-negative.
#[inline]
pub fn qty_clamp_non_negative(q: Quantity) -> Quantity {
    if q < 0.0 {
        debug_assert!(
            q > -QTY_ABS_EPSILON,
            "quantity went significantly negative: {q}"
        );
        0.0
    } else {
        q
    }
}

/// Validates that a quantity is usable as an interaction quantity:
/// finite and strictly positive.
#[inline]
pub fn qty_is_valid_transfer(q: Quantity) -> bool {
    q.is_finite() && q > 0.0
}

/// Sums an iterator of quantities.
///
/// Uses Kahan (compensated) summation so that long streams of small
/// quantities (e.g. 45M interactions) do not lose precision against the
/// conservation invariants checked in tests and debug builds.
pub fn qty_sum<I: IntoIterator<Item = Quantity>>(iter: I) -> Quantity {
    let mut sum = 0.0f64;
    let mut c = 0.0f64;
    for q in iter {
        let y = q - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_small_values() {
        assert!(qty_approx_eq(1.0, 1.0));
        assert!(qty_approx_eq(1.0, 1.0 + 1e-9));
        assert!(!qty_approx_eq(1.0, 1.001));
    }

    #[test]
    fn approx_eq_large_values_uses_relative_bound() {
        let a = 34.4e9; // average Bitcoin interaction quantity in the paper
        assert!(qty_approx_eq(a, a + 1.0));
        assert!(!qty_approx_eq(a, a + 1e6));
    }

    #[test]
    fn zero_detection() {
        assert!(qty_is_zero(0.0));
        assert!(qty_is_zero(1e-9));
        assert!(qty_is_zero(-1e-9));
        assert!(!qty_is_zero(0.01));
    }

    #[test]
    fn strict_comparisons() {
        assert!(qty_gt(2.0, 1.0));
        assert!(!qty_gt(1.0 + 1e-12, 1.0));
        assert!(qty_ge(1.0, 1.0));
        assert!(qty_ge(2.0, 1.0));
        assert!(!qty_ge(1.0, 2.0));
    }

    #[test]
    fn clamp_negative_residue() {
        assert_eq!(qty_clamp_non_negative(-1e-12), 0.0);
        assert_eq!(qty_clamp_non_negative(3.5), 3.5);
        assert_eq!(qty_clamp_non_negative(0.0), 0.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn clamp_significantly_negative_panics_in_debug() {
        let _ = qty_clamp_non_negative(-1.0);
    }

    #[test]
    fn transfer_validity() {
        assert!(qty_is_valid_transfer(0.5));
        assert!(!qty_is_valid_transfer(0.0));
        assert!(!qty_is_valid_transfer(-1.0));
        assert!(!qty_is_valid_transfer(f64::NAN));
        assert!(!qty_is_valid_transfer(f64::INFINITY));
    }

    #[test]
    fn kahan_sum_matches_naive_on_small_input() {
        let xs = [1.0, 2.0, 3.0, 4.5];
        assert_eq!(qty_sum(xs), 10.5);
    }

    #[test]
    fn kahan_sum_is_stable_on_many_small_additions() {
        // 10 million additions of 0.1: naive summation drifts noticeably,
        // compensated summation stays within tolerance.
        let n = 1_000_000;
        let total = qty_sum(std::iter::repeat_n(0.1, n));
        assert!(qty_approx_eq(total, n as f64 * 0.1));
    }

    #[test]
    fn kahan_sum_empty_is_zero() {
        assert_eq!(qty_sum(std::iter::empty()), 0.0);
    }
}
