//! The temporal interaction network `G(V, E, R)` of Definition 1.
//!
//! A [`Tin`] owns the time-ordered interaction sequence `R` and indexes it by
//! edge `(v, u)` so that the per-edge interaction histories of Figure 3 and
//! the adjacency queries needed by the analytics layer (e.g. the direct
//! neighbours used by the Section 7.6 alerting use case) are cheap.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{Result, TinError};
use crate::ids::VertexId;
use crate::interaction::{is_sorted_by_time, sort_by_time, validate_stream, Interaction};
use crate::quantity::{qty_sum, Quantity};

/// Summary statistics of a TIN, mirroring Table 6 of the paper
/// (#nodes, #interactions, average quantity).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TinStats {
    /// Number of vertices |V|.
    pub num_vertices: usize,
    /// Number of directed edges |E| with at least one interaction.
    pub num_edges: usize,
    /// Number of interactions |R|.
    pub num_interactions: usize,
    /// Average transferred quantity over all interactions.
    pub avg_quantity: Quantity,
    /// Total transferred quantity over all interactions.
    pub total_quantity: Quantity,
    /// Time of the first interaction (0 if the TIN is empty).
    pub min_time: f64,
    /// Time of the last interaction (0 if the TIN is empty).
    pub max_time: f64,
}

/// A temporal interaction network: a vertex set `0..num_vertices`, the edge
/// set derived from the interactions, and the time-ordered interaction list.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Tin {
    num_vertices: usize,
    /// Interactions sorted by non-decreasing time.
    interactions: Vec<Interaction>,
    /// For each edge (src, dst): indices into `interactions`, in time order.
    edges: BTreeMap<(VertexId, VertexId), Vec<usize>>,
    /// Out-neighbours per vertex (deduplicated, sorted).
    out_neighbors: Vec<Vec<VertexId>>,
    /// In-neighbours per vertex (deduplicated, sorted).
    in_neighbors: Vec<Vec<VertexId>>,
}

impl Tin {
    /// Build a TIN from a set of interactions.
    ///
    /// * `num_vertices` — size of the vertex set V; every interaction endpoint
    ///   must be a valid index into `0..num_vertices`.
    /// * Interactions are validated and sorted by time (stable sort).
    pub fn from_interactions(
        num_vertices: usize,
        mut interactions: Vec<Interaction>,
    ) -> Result<Self> {
        validate_stream(&interactions, num_vertices)?;
        if !is_sorted_by_time(&interactions) {
            sort_by_time(&mut interactions);
        }
        let mut edges: BTreeMap<(VertexId, VertexId), Vec<usize>> = BTreeMap::new();
        let mut out_neighbors = vec![Vec::new(); num_vertices];
        let mut in_neighbors = vec![Vec::new(); num_vertices];
        for (i, r) in interactions.iter().enumerate() {
            edges.entry((r.src, r.dst)).or_default().push(i);
            out_neighbors[r.src.index()].push(r.dst);
            in_neighbors[r.dst.index()].push(r.src);
        }
        for list in out_neighbors.iter_mut().chain(in_neighbors.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        Ok(Tin {
            num_vertices,
            interactions,
            edges,
            out_neighbors,
            in_neighbors,
        })
    }

    /// Build a TIN inferring the vertex-set size as `max vertex id + 1`.
    pub fn from_interactions_auto(interactions: Vec<Interaction>) -> Result<Self> {
        let num_vertices = interactions
            .iter()
            .map(|r| r.src.index().max(r.dst.index()) + 1)
            .max()
            .unwrap_or(0);
        Self::from_interactions(num_vertices, interactions)
    }

    /// Number of vertices |V|.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges with at least one interaction.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of interactions |R|.
    #[inline]
    pub fn num_interactions(&self) -> usize {
        self.interactions.len()
    }

    /// The time-ordered interactions.
    #[inline]
    pub fn interactions(&self) -> &[Interaction] {
        &self.interactions
    }

    /// Iterate over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices as u32).map(VertexId::new)
    }

    /// The interaction history on edge `(src, dst)`, in time order
    /// (the `(t, q)` sequences drawn on the edges of Figure 3).
    pub fn edge_history(&self, src: VertexId, dst: VertexId) -> Vec<&Interaction> {
        self.edges
            .get(&(src, dst))
            .map(|idx| idx.iter().map(|&i| &self.interactions[i]).collect())
            .unwrap_or_default()
    }

    /// Out-neighbours of `v` (vertices `u` such that `v` transferred to `u`
    /// at least once).
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out_neighbors
            .get(v.index())
            .map(|x| x.as_slice())
            .unwrap_or(&[])
    }

    /// In-neighbours of `v` (vertices `u` such that `u` transferred to `v`
    /// at least once). These are the "direct neighbours" of the Section 7.6
    /// alerting use case.
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.in_neighbors
            .get(v.index())
            .map(|x| x.as_slice())
            .unwrap_or(&[])
    }

    /// Out-degree of `v` in the static graph induced by the interactions.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v` in the static graph induced by the interactions.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Total quantity generated... more precisely: total quantity *sent* by
    /// each vertex across all its outgoing interactions. Used e.g. to pick the
    /// top-k contributing vertices for selective provenance (Section 7.3).
    pub fn total_sent_per_vertex(&self) -> Vec<Quantity> {
        let mut sent = vec![0.0; self.num_vertices];
        for r in &self.interactions {
            sent[r.src.index()] += r.qty;
        }
        sent
    }

    /// Total quantity received by each vertex across all incoming interactions.
    pub fn total_received_per_vertex(&self) -> Vec<Quantity> {
        let mut recv = vec![0.0; self.num_vertices];
        for r in &self.interactions {
            recv[r.dst.index()] += r.qty;
        }
        recv
    }

    /// Summary statistics (Table 6 style).
    pub fn stats(&self) -> TinStats {
        let total_quantity = qty_sum(self.interactions.iter().map(|r| r.qty));
        let n = self.interactions.len();
        TinStats {
            num_vertices: self.num_vertices,
            num_edges: self.edges.len(),
            num_interactions: n,
            avg_quantity: if n == 0 {
                0.0
            } else {
                total_quantity / n as f64
            },
            total_quantity,
            min_time: self.interactions.first().map(|r| r.time.0).unwrap_or(0.0),
            max_time: self.interactions.last().map(|r| r.time.0).unwrap_or(0.0),
        }
    }

    /// Returns the `k` vertices that send the largest total quantity, in
    /// descending order of sent quantity (ties broken by vertex id). This is
    /// how the paper selects the tracked set for selective provenance
    /// (Section 7.3: "we select the top-k contributing vertices").
    pub fn top_k_senders(&self, k: usize) -> Vec<VertexId> {
        let sent = self.total_sent_per_vertex();
        let mut order: Vec<VertexId> = self.vertices().collect();
        order.sort_by(|a, b| {
            sent[b.index()]
                .total_cmp(&sent[a.index()])
                .then_with(|| a.cmp(b))
        });
        order.truncate(k);
        order
    }

    /// Take a prefix of the first `n` interactions as a new TIN over the same
    /// vertex set (used by the cumulative-cost experiment, Figure 6).
    pub fn prefix(&self, n: usize) -> Tin {
        let interactions = self.interactions[..n.min(self.interactions.len())].to_vec();
        Tin::from_interactions(self.num_vertices, interactions)
            .expect("prefix of a valid TIN is valid")
    }
}

impl TryFrom<Vec<Interaction>> for Tin {
    type Error = TinError;

    fn try_from(interactions: Vec<Interaction>) -> Result<Self> {
        Tin::from_interactions_auto(interactions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;

    fn example_tin() -> Tin {
        Tin::from_interactions(3, paper_running_example()).unwrap()
    }

    #[test]
    fn builds_from_running_example() {
        let tin = example_tin();
        assert_eq!(tin.num_vertices(), 3);
        assert_eq!(tin.num_interactions(), 6);
        // Figure 3(b): edges v1->v2, v2->v0, v0->v1, v2->v1.
        assert_eq!(tin.num_edges(), 4);
    }

    #[test]
    fn edge_history_matches_figure3() {
        let tin = example_tin();
        let h = tin.edge_history(VertexId::new(1), VertexId::new(2));
        assert_eq!(h.len(), 2);
        assert_eq!((h[0].time.value(), h[0].qty), (1.0, 3.0));
        assert_eq!((h[1].time.value(), h[1].qty), (5.0, 7.0));
        let h = tin.edge_history(VertexId::new(2), VertexId::new(0));
        assert_eq!(h.len(), 2);
        assert_eq!((h[0].time.value(), h[0].qty), (3.0, 5.0));
        assert_eq!((h[1].time.value(), h[1].qty), (8.0, 1.0));
        // Non-existent edge.
        assert!(tin
            .edge_history(VertexId::new(0), VertexId::new(2))
            .is_empty());
    }

    #[test]
    fn neighbors_and_degrees() {
        let tin = example_tin();
        assert_eq!(
            tin.out_neighbors(VertexId::new(2)),
            &[VertexId::new(0), VertexId::new(1)]
        );
        assert_eq!(tin.in_neighbors(VertexId::new(0)), &[VertexId::new(2)]);
        assert_eq!(tin.out_degree(VertexId::new(2)), 2);
        assert_eq!(tin.in_degree(VertexId::new(2)), 1);
        assert_eq!(tin.in_neighbors(VertexId::new(99)), &[] as &[VertexId]);
    }

    #[test]
    fn stats_match_running_example() {
        let tin = example_tin();
        let s = tin.stats();
        assert_eq!(s.num_vertices, 3);
        assert_eq!(s.num_interactions, 6);
        assert_eq!(s.total_quantity, 3.0 + 5.0 + 3.0 + 7.0 + 2.0 + 1.0);
        assert!((s.avg_quantity - s.total_quantity / 6.0).abs() < 1e-12);
        assert_eq!(s.min_time, 1.0);
        assert_eq!(s.max_time, 8.0);
    }

    #[test]
    fn stats_of_empty_tin() {
        let tin = Tin::from_interactions(5, vec![]).unwrap();
        let s = tin.stats();
        assert_eq!(s.num_interactions, 0);
        assert_eq!(s.avg_quantity, 0.0);
        assert_eq!(s.num_edges, 0);
    }

    #[test]
    fn unsorted_input_gets_sorted() {
        let mut rs = paper_running_example();
        rs.reverse();
        let tin = Tin::from_interactions(3, rs).unwrap();
        assert!(is_sorted_by_time(tin.interactions()));
        assert_eq!(tin.interactions()[0].time.value(), 1.0);
    }

    #[test]
    fn auto_vertex_count() {
        let tin = Tin::from_interactions_auto(paper_running_example()).unwrap();
        assert_eq!(tin.num_vertices(), 3);
        let tin = Tin::try_from(paper_running_example()).unwrap();
        assert_eq!(tin.num_vertices(), 3);
    }

    #[test]
    fn rejects_unknown_vertex() {
        let rs = paper_running_example();
        let err = Tin::from_interactions(2, rs).unwrap_err();
        assert!(matches!(err, TinError::UnknownVertex { .. }));
    }

    #[test]
    fn sent_and_received_totals() {
        let tin = example_tin();
        let sent = tin.total_sent_per_vertex();
        // v0 sends 3; v1 sends 3 + 7 = 10; v2 sends 5 + 2 + 1 = 8.
        assert_eq!(sent, vec![3.0, 10.0, 8.0]);
        let recv = tin.total_received_per_vertex();
        // v0 receives 5 + 1 = 6; v1 receives 3 + 2 = 5; v2 receives 3 + 7 = 10.
        assert_eq!(recv, vec![6.0, 5.0, 10.0]);
    }

    #[test]
    fn top_k_senders_ordering() {
        let tin = example_tin();
        assert_eq!(
            tin.top_k_senders(2),
            vec![VertexId::new(1), VertexId::new(2)]
        );
        assert_eq!(tin.top_k_senders(0), vec![]);
        assert_eq!(tin.top_k_senders(10).len(), 3);
    }

    #[test]
    fn prefix_takes_first_interactions() {
        let tin = example_tin();
        let p = tin.prefix(2);
        assert_eq!(p.num_interactions(), 2);
        assert_eq!(p.num_vertices(), 3);
        assert_eq!(p.interactions()[1].time.value(), 3.0);
        // Prefix longer than the stream returns the whole stream.
        assert_eq!(tin.prefix(100).num_interactions(), 6);
    }

    #[test]
    fn vertices_iterator() {
        let tin = example_tin();
        let vs: Vec<VertexId> = tin.vertices().collect();
        assert_eq!(
            vs,
            vec![VertexId::new(0), VertexId::new(1), VertexId::new(2)]
        );
    }
}
