//! Logical memory accounting.
//!
//! The paper's Tables 8 and 10 and Figures 5–8 report the *memory
//! requirements* of each provenance mechanism. Besides the allocator-level
//! peak tracking provided by the `tin-memstats` crate, every tracker exposes a
//! logical footprint through [`MemoryFootprint`]: the number of bytes needed
//! to store its provenance state (buffers, provenance vectors/lists, paths),
//! independent of allocator overhead. The experiment harness reports both.

/// Types that can report the number of heap bytes their provenance state
/// occupies.
pub trait MemoryFootprint {
    /// Bytes of provenance state currently held (entries, vectors, lists,
    /// paths), excluding the object's own inline size.
    fn footprint_bytes(&self) -> usize;
}

/// Detailed breakdown of a tracker's memory footprint, used by the harness to
/// reproduce Table 10's split between "mem entries" and "mem paths".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FootprintBreakdown {
    /// Bytes used by provenance entries (triples, pairs, vector slots).
    pub entries_bytes: usize,
    /// Bytes used by transfer paths (how-provenance, Section 6).
    pub paths_bytes: usize,
    /// Bytes used by auxiliary indexes (heaps, maps, group tables).
    pub index_bytes: usize,
}

impl FootprintBreakdown {
    /// Total bytes across all components.
    pub fn total(&self) -> usize {
        self.entries_bytes + self.paths_bytes + self.index_bytes
    }
}

/// Helper: bytes of the spine + elements of a `Vec<T>` (capacity-based, since
/// capacity is what the allocator actually reserved).
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Helper: bytes of a `VecDeque<T>`'s ring buffer.
pub fn deque_bytes<T>(v: &std::collections::VecDeque<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Helper: approximate bytes of a `BinaryHeap<T>`.
pub fn heap_bytes<T>(h: &std::collections::BinaryHeap<T>) -> usize {
    h.capacity() * std::mem::size_of::<T>()
}

/// Relative-drift detector behind the tracker footprint-spike notifications
/// (`ProvenanceTracker::arm_spike_monitor`).
///
/// Trackers maintain an O(1) running *estimate* of their footprint (summed
/// capacity bytes of the vectors each interaction touches); the monitor
/// compares the estimate against the value at the last engine sample and
/// raises a spike once the relative drift exceeds the armed fraction. The
/// engine then takes a full O(|V|) footprint sample and re-baselines, so the
/// number of extra samples is logarithmic in the footprint growth rather than
/// linear in the stream.
#[derive(Clone, Copy, Debug)]
pub struct SpikeMonitor {
    /// Relative drift (e.g. 0.25 = 25%) that raises a spike.
    fraction: f64,
    /// Footprint estimate at the last baseline (engine sample).
    baseline: isize,
    /// Current running estimate.
    estimate: isize,
}

impl SpikeMonitor {
    /// Create a monitor with the given relative threshold, baselined at the
    /// current footprint estimate.
    pub fn new(fraction: f64, estimate: usize) -> Self {
        let estimate = estimate as isize;
        SpikeMonitor {
            fraction: fraction.max(0.0),
            baseline: estimate,
            estimate,
        }
    }

    /// Fold a footprint change (bytes, signed) into the running estimate.
    #[inline]
    pub fn apply_delta(&mut self, delta: isize) {
        self.estimate += delta;
    }

    /// Replace the running estimate wholesale (used after operations that
    /// rewrite state beyond the vectors an interaction touches, e.g. a
    /// window reset).
    #[inline]
    pub fn set_estimate(&mut self, estimate: usize) {
        self.estimate = estimate as isize;
    }

    /// Re-baseline at the current estimate. The engine calls this (via
    /// `ProvenanceTracker::note_footprint_sampled`) whenever it takes a full
    /// footprint sample for any reason, so drift is always measured against
    /// the *last sample* — without it, sub-threshold drift accumulated
    /// before a periodic sample would fire a redundant spike (and a second
    /// O(|V|) sample) moments after.
    #[inline]
    pub fn rebaseline(&mut self) {
        self.baseline = self.estimate;
    }

    /// True if the estimate drifted by more than the armed fraction since
    /// the last baseline; reading a spike re-baselines the monitor (the
    /// caller is expected to take a full sample right after).
    #[inline]
    pub fn take_spike(&mut self) -> bool {
        let drift = (self.estimate - self.baseline).unsigned_abs();
        // A fixed floor keeps near-empty trackers from spiking on every
        // interaction (any growth is "infinite" relative to an empty state).
        const MIN_DRIFT_BYTES: usize = 4096;
        if drift >= MIN_DRIFT_BYTES
            && drift as f64 > self.fraction * self.baseline.unsigned_abs().max(1) as f64
        {
            self.baseline = self.estimate;
            true
        } else {
            false
        }
    }
}

/// Format a byte count the way the paper's tables do (KB / MB / GB).
pub fn format_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2}GB", b / GB)
    } else if b >= MB {
        format!("{:.2}MB", b / MB)
    } else if b >= KB {
        format!("{:.2}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BinaryHeap, VecDeque};

    #[test]
    fn breakdown_total() {
        let b = FootprintBreakdown {
            entries_bytes: 10,
            paths_bytes: 20,
            index_bytes: 5,
        };
        assert_eq!(b.total(), 35);
        assert_eq!(FootprintBreakdown::default().total(), 0);
    }

    #[test]
    fn vec_bytes_uses_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(vec_bytes(&v), 16 * 8);
        let empty: Vec<u64> = Vec::new();
        assert_eq!(vec_bytes(&empty), 0);
    }

    #[test]
    fn deque_and_heap_bytes() {
        let mut d: VecDeque<u32> = VecDeque::with_capacity(8);
        d.push_back(1);
        assert!(deque_bytes(&d) >= 8 * 4);
        let mut h: BinaryHeap<u16> = BinaryHeap::with_capacity(4);
        h.push(3);
        assert!(heap_bytes(&h) >= 4 * 2);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512B");
        assert_eq!(format_bytes(2048), "2.00KB");
        assert_eq!(format_bytes(5 * 1024 * 1024), "5.00MB");
        assert_eq!(format_bytes(3 * 1024 * 1024 * 1024), "3.00GB");
    }
}
