//! Logical memory accounting.
//!
//! The paper's Tables 8 and 10 and Figures 5–8 report the *memory
//! requirements* of each provenance mechanism. Besides the allocator-level
//! peak tracking provided by the `tin-memstats` crate, every tracker exposes a
//! logical footprint through [`MemoryFootprint`]: the number of bytes needed
//! to store its provenance state (buffers, provenance vectors/lists, paths),
//! independent of allocator overhead. The experiment harness reports both.

/// Types that can report the number of heap bytes their provenance state
/// occupies.
pub trait MemoryFootprint {
    /// Bytes of provenance state currently held (entries, vectors, lists,
    /// paths), excluding the object's own inline size.
    fn footprint_bytes(&self) -> usize;
}

/// Detailed breakdown of a tracker's memory footprint, used by the harness to
/// reproduce Table 10's split between "mem entries" and "mem paths".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FootprintBreakdown {
    /// Bytes used by provenance entries (triples, pairs, vector slots).
    pub entries_bytes: usize,
    /// Bytes used by transfer paths (how-provenance, Section 6).
    pub paths_bytes: usize,
    /// Bytes used by auxiliary indexes (heaps, maps, group tables).
    pub index_bytes: usize,
}

impl FootprintBreakdown {
    /// Total bytes across all components.
    pub fn total(&self) -> usize {
        self.entries_bytes + self.paths_bytes + self.index_bytes
    }
}

/// Helper: bytes of the spine + elements of a `Vec<T>` (capacity-based, since
/// capacity is what the allocator actually reserved).
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Helper: bytes of a `VecDeque<T>`'s ring buffer.
pub fn deque_bytes<T>(v: &std::collections::VecDeque<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Helper: approximate bytes of a `BinaryHeap<T>`.
pub fn heap_bytes<T>(h: &std::collections::BinaryHeap<T>) -> usize {
    h.capacity() * std::mem::size_of::<T>()
}

/// Format a byte count the way the paper's tables do (KB / MB / GB).
pub fn format_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2}GB", b / GB)
    } else if b >= MB {
        format!("{:.2}MB", b / MB)
    } else if b >= KB {
        format!("{:.2}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BinaryHeap, VecDeque};

    #[test]
    fn breakdown_total() {
        let b = FootprintBreakdown {
            entries_bytes: 10,
            paths_bytes: 20,
            index_bytes: 5,
        };
        assert_eq!(b.total(), 35);
        assert_eq!(FootprintBreakdown::default().total(), 0);
    }

    #[test]
    fn vec_bytes_uses_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(vec_bytes(&v), 16 * 8);
        let empty: Vec<u64> = Vec::new();
        assert_eq!(vec_bytes(&empty), 0);
    }

    #[test]
    fn deque_and_heap_bytes() {
        let mut d: VecDeque<u32> = VecDeque::with_capacity(8);
        d.push_back(1);
        assert!(deque_bytes(&d) >= 8 * 4);
        let mut h: BinaryHeap<u16> = BinaryHeap::with_capacity(4);
        h.push(3);
        assert!(heap_bytes(&h) >= 4 * 2);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512B");
        assert_eq!(format_bytes(2048), "2.00KB");
        assert_eq!(format_bytes(5 * 1024 * 1024), "5.00MB");
        assert_eq!(format_bytes(3 * 1024 * 1024 * 1024), "3.00GB");
    }
}
