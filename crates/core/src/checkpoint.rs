//! Durable on-disk checkpoints and crash recovery.
//!
//! The in-memory [`crate::snapshot::ProvenanceSnapshot`] is a *lossy* summary
//! (origin sets per vertex) intended for human-facing reporting. This module
//! is the lossless counterpart: it serialises the **full** tracker state —
//! every buffer, heap, queue and provenance vector, bit for bit — through the
//! same per-vertex migration payloads the sharded engine moves between
//! workers. A run resumed from a checkpoint is therefore indistinguishable
//! from one that never stopped: every float compares equal with `==`, not
//! merely approximately.
//!
//! ## File format (schema version 1)
//!
//! ```text
//! [ magic "TINCKPT\0" : 8 bytes ][ schema version : u32 LE ]
//! [ policy  section: len u32 | crc32 u32 | body ]
//! [ cursor  section: len u32 | crc32 u32 | body ]
//! [ states  section: len u32 | crc32 u32 | body ]
//! ```
//!
//! * **policy** — the [`PolicyConfig`] binary encoding plus the vertex count,
//!   so recovery can rebuild a tracker of the identical configuration and
//!   refuse mismatched files.
//! * **cursor** — the [`StreamCursor`]: stream position, last timestamp and
//!   the flow-accounting counters needed to seed an [`crate::engine`] report.
//! * **states** — one length-prefixed payload per vertex, in strictly
//!   increasing vertex order. Payloads are produced by
//!   [`crate::tracker::ProvenanceTracker::encode_vertex_state`] and are
//!   **shard-count independent**: a checkpoint captured by a 4-shard run
//!   restores into a sequential engine or a 2-shard engine unchanged.
//!
//! Every section carries its own CRC32; any mismatch, truncation or malformed
//! value surfaces as [`TinError::CorruptCheckpoint`] naming the section, and
//! recovery falls back to the previous retained checkpoint instead of
//! installing partial state.
//!
//! ## Durability protocol
//!
//! [`Checkpoint::write_atomic`] never exposes a torn file: bytes go to a
//! sibling temporary file, are fsynced, and only then renamed over the final
//! name (followed by a directory fsync so the rename itself is durable). A
//! crash at any instant leaves either the previous checkpoint or the new one,
//! never a hybrid. [`CheckpointStore::save`] adds bounded
//! retry-with-exponential-backoff for transient I/O failures and prunes old
//! files by count and age after each successful save.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

use crate::codec::{self, ByteReader};
use crate::error::{Result, TinError};
use crate::ids::VertexId;
use crate::policy::PolicyConfig;
use crate::quantity::Quantity;
use crate::tracker::ProvenanceTracker;

/// Leading magic bytes of every checkpoint file.
pub const MAGIC: [u8; 8] = *b"TINCKPT\0";

/// The on-disk schema version this build reads and writes.
pub const SCHEMA_VERSION: u32 = 1;

/// File-name extension of checkpoint files inside a [`CheckpointStore`].
pub const FILE_EXTENSION: &str = "tin";

/// Stream position and flow-accounting counters at the moment of capture.
///
/// Restoring a checkpoint seeds the engine's counters from this cursor so the
/// resumed run's [`crate::engine::EngineReport`] matches an uninterrupted one
/// (modulo wall-clock runtime, which is genuinely different).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamCursor {
    /// Interactions processed before the checkpoint was taken. Resume skips
    /// exactly this many interactions of the replayed stream.
    pub processed: usize,
    /// Timestamp of the last processed interaction (`None` iff `processed`
    /// is zero).
    pub last_time: Option<f64>,
    /// Total quantity moved so far (Σ r.q).
    pub total_quantity: Quantity,
    /// Quantity newly generated at source vertices so far.
    pub newborn_quantity: Quantity,
    /// Peak logical provenance footprint observed so far, in bytes.
    pub peak_footprint_bytes: usize,
}

impl StreamCursor {
    fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_usize(out, self.processed);
        codec::put_bool(out, self.last_time.is_some());
        codec::put_f64(out, self.last_time.unwrap_or(0.0));
        codec::put_f64(out, self.total_quantity);
        codec::put_f64(out, self.newborn_quantity);
        codec::put_usize(out, self.peak_footprint_bytes);
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<Self> {
        let processed = r.usize()?;
        let has_time = r.bool()?;
        let time = r.f64()?;
        Ok(StreamCursor {
            processed,
            last_time: has_time.then_some(time),
            total_quantity: r.f64()?,
            newborn_quantity: r.f64()?,
            peak_footprint_bytes: r.usize()?,
        })
    }
}

/// A full, lossless capture of one engine's provenance state.
#[derive(Debug)]
pub struct Checkpoint {
    /// The policy configuration the captured tracker was built from.
    pub policy: PolicyConfig,
    /// Number of vertices of the captured tracker.
    pub num_vertices: usize,
    /// Stream position and flow counters at capture time.
    pub cursor: StreamCursor,
    /// Per-vertex encoded migration payloads, strictly increasing by vertex
    /// id, one entry per vertex.
    pub states: Vec<(u32, Vec<u8>)>,
}

impl Checkpoint {
    /// Capture the full state of `tracker` without changing its observable
    /// behaviour (internally an extract → encode → re-install round trip per
    /// vertex, which moves buffers wholesale).
    ///
    /// # Errors
    /// Returns [`TinError::InvalidConfig`] if the tracker does not support
    /// durable checkpoints (every [`crate::tracker::build_tracker`] policy
    /// does).
    pub fn capture(
        policy: &PolicyConfig,
        cursor: StreamCursor,
        tracker: &mut dyn ProvenanceTracker,
    ) -> Result<Checkpoint> {
        let num_vertices = tracker.num_vertices();
        let mut states = Vec::with_capacity(num_vertices);
        for v in 0..num_vertices {
            let mut bytes = Vec::new();
            if !tracker.encode_vertex_state(VertexId::from(v), &mut bytes) {
                return Err(TinError::InvalidConfig(format!(
                    "tracker `{}` does not support durable checkpoints",
                    tracker.name()
                )));
            }
            states.push((v as u32, bytes));
        }
        Ok(Checkpoint {
            policy: policy.clone(),
            num_vertices,
            cursor,
            states,
        })
    }

    /// Restore this checkpoint's state into a **freshly built** tracker of
    /// the same configuration. Syncs the tracker's epoch clock to the cursor
    /// *before* installing any vertex, so window resets fired by the sync
    /// cannot clobber restored state.
    ///
    /// # Errors
    /// Returns [`TinError::CorruptCheckpoint`] if a payload fails to decode
    /// or carries trailing bytes, and [`TinError::InvalidConfig`] on a vertex
    ///-count mismatch.
    pub fn restore_into(&self, tracker: &mut dyn ProvenanceTracker) -> Result<()> {
        if tracker.num_vertices() != self.num_vertices {
            return Err(TinError::InvalidConfig(format!(
                "checkpoint captured {} vertices but the tracker has {}",
                self.num_vertices,
                tracker.num_vertices()
            )));
        }
        tracker.sync_epoch(self.cursor.processed, self.cursor.last_time.unwrap_or(0.0));
        for (v, bytes) in &self.states {
            let mut r = ByteReader::new(bytes, "states");
            tracker.restore_vertex_state(VertexId::new(*v), &mut r)?;
            r.expect_end()?;
        }
        Ok(())
    }

    /// Serialise to the versioned, checksummed on-disk byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        codec::put_u32(&mut out, SCHEMA_VERSION);

        let mut body = Vec::new();
        self.policy.encode_into(&mut body);
        codec::put_usize(&mut body, self.num_vertices);
        append_section(&mut out, &body);

        body.clear();
        self.cursor.encode_into(&mut body);
        append_section(&mut out, &body);

        body.clear();
        codec::put_usize(&mut body, self.states.len());
        for (v, bytes) in &self.states {
            codec::put_u32(&mut body, *v);
            codec::put_bytes(&mut body, bytes);
        }
        append_section(&mut out, &body);
        out
    }

    /// Decode a checkpoint from bytes. `path` labels errors; pass the file
    /// path when reading from disk, or `""` for in-memory buffers.
    ///
    /// # Errors
    /// * [`TinError::CorruptCheckpoint`] on bad magic, checksum mismatch,
    ///   truncation, trailing garbage, or any malformed value,
    /// * [`TinError::CheckpointVersionMismatch`] for foreign schema versions.
    pub fn decode(bytes: &[u8], path: &str) -> Result<Checkpoint> {
        Self::decode_inner(bytes).map_err(|e| patch_path(e, path))
    }

    fn decode_inner(bytes: &[u8]) -> Result<Checkpoint> {
        let corrupt_header = |reason: &str| TinError::CorruptCheckpoint {
            path: String::new(),
            section: "header".into(),
            reason: reason.into(),
        };
        if bytes.len() < MAGIC.len() + 4 {
            return Err(corrupt_header("file shorter than the header"));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt_header("bad magic bytes"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != SCHEMA_VERSION {
            return Err(TinError::CheckpointVersionMismatch {
                found: version,
                supported: SCHEMA_VERSION,
            });
        }

        let mut offset = MAGIC.len() + 4;
        let policy_body = read_section(bytes, &mut offset, "policy")?;
        let cursor_body = read_section(bytes, &mut offset, "cursor")?;
        let states_body = read_section(bytes, &mut offset, "states")?;
        if offset != bytes.len() {
            return Err(corrupt_header("trailing bytes after the last section"));
        }

        let mut r = ByteReader::new(policy_body, "policy");
        let policy = PolicyConfig::decode_from(&mut r)?;
        let num_vertices = r.usize()?;
        r.expect_end()?;

        let mut r = ByteReader::new(cursor_body, "cursor");
        let cursor = StreamCursor::decode_from(&mut r)?;
        r.expect_end()?;

        let mut r = ByteReader::new(states_body, "states");
        let count = r.usize()?;
        if count != num_vertices {
            return Err(r.corrupt(format!(
                "state count {count} does not match vertex count {num_vertices}"
            )));
        }
        let mut states = Vec::with_capacity(count);
        for i in 0..count {
            let v = r.u32()?;
            if v as usize != i {
                return Err(r.corrupt(format!("expected vertex {i}, found {v}")));
            }
            states.push((v, r.bytes()?.to_vec()));
        }
        r.expect_end()?;

        Ok(Checkpoint {
            policy,
            num_vertices,
            cursor,
            states,
        })
    }

    /// Write this checkpoint to `path` with the atomic durability protocol:
    /// temp file → `write_all` → fsync → rename → directory fsync. A crash
    /// at any point leaves either the old file or the complete new one.
    ///
    /// # Errors
    /// Propagates the underlying I/O failures as [`TinError::Io`].
    pub fn write_atomic(&self, path: &Path) -> Result<()> {
        write_atomic_bytes(&self.encode(), path)
    }

    /// Read and validate a checkpoint file.
    ///
    /// # Errors
    /// I/O failures surface as [`TinError::Io`]; validation failures as
    /// [`TinError::CorruptCheckpoint`] / [`TinError::CheckpointVersionMismatch`]
    /// carrying the file path.
    pub fn read(path: &Path) -> Result<Checkpoint> {
        let bytes = fs::read(path)?;
        Self::decode(&bytes, &path.display().to_string())
    }
}

/// Write already-encoded checkpoint bytes to `path` with the atomic
/// durability protocol (temp file → `write_all` → fsync → rename → directory
/// fsync). Factored out of [`Checkpoint::write_atomic`] so the store's save
/// loop encodes once and retries only the I/O.
fn write_atomic_bytes(bytes: &[u8], path: &Path) -> Result<()> {
    let tmp = tmp_sibling(path);
    let mut file = fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Append one `len | crc32 | body` section.
fn append_section(out: &mut Vec<u8>, body: &[u8]) {
    codec::put_u32(out, u32::try_from(body.len()).expect("section under 4 GiB"));
    codec::put_u32(out, codec::crc32(body));
    out.extend_from_slice(body);
}

/// Read one `len | crc32 | body` section starting at `*offset`, verifying
/// the checksum, and advance the offset past it.
fn read_section<'a>(bytes: &'a [u8], offset: &mut usize, section: &str) -> Result<&'a [u8]> {
    let corrupt = |reason: String| TinError::CorruptCheckpoint {
        path: String::new(),
        section: section.into(),
        reason,
    };
    let rest = &bytes[*offset..];
    if rest.len() < 8 {
        return Err(corrupt("truncated section header".into()));
    }
    let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
    let expected_crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
    let rest = &rest[8..];
    if rest.len() < len {
        return Err(corrupt(format!(
            "section claims {len} bytes but only {} remain",
            rest.len()
        )));
    }
    let body = &rest[..len];
    let actual_crc = codec::crc32(body);
    if actual_crc != expected_crc {
        return Err(corrupt(format!(
            "crc mismatch: stored {expected_crc:#010x}, computed {actual_crc:#010x}"
        )));
    }
    *offset += 8 + len;
    Ok(body)
}

/// Fill in the file path on corrupt-checkpoint errors raised below the file
/// layer (they carry an empty path until the reader knows it).
fn patch_path(err: TinError, path: &str) -> TinError {
    match err {
        TinError::CorruptCheckpoint {
            path: p,
            section,
            reason,
        } if p.is_empty() => TinError::CorruptCheckpoint {
            path: path.to_string(),
            section,
            reason,
        },
        other => other,
    }
}

/// Sibling temp-file name used by the atomic write protocol (same directory,
/// so the final rename never crosses a filesystem boundary).
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(ToOwned::to_owned).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// How many checkpoint files a [`CheckpointStore`] retains.
///
/// The newest checkpoint is always kept regardless of either bound, so a
/// valid recovery point survives arbitrarily aggressive retention settings.
#[derive(Clone, Debug, PartialEq)]
pub struct RetentionPolicy {
    /// Keep at most this many files (oldest pruned first); clamped to ≥ 1.
    pub max_count: usize,
    /// Additionally prune files whose modification time is older than this.
    pub max_age: Option<Duration>,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            max_count: 4,
            max_age: None,
        }
    }
}

/// Timing and size figures for the most recent successful
/// [`CheckpointStore::save`] — the raw material for the engines' checkpoint
/// metrics (encode vs. fsync stalls vs. retry churn).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SaveStats {
    /// Seconds spent encoding the checkpoint into its byte form.
    pub encode_secs: f64,
    /// Seconds spent in the atomic write protocol (temp file, `write_all`,
    /// fsync, rename, directory fsync), summed over every attempt.
    pub write_secs: f64,
    /// Failed attempts before the write succeeded (0 for a clean save).
    pub retries: usize,
    /// Size of the encoded checkpoint in bytes.
    pub encoded_bytes: usize,
}

/// A directory of retained checkpoint files with atomic saves, bounded
/// retry on transient I/O errors, retention pruning, and corrupt-file
/// fallback on load.
///
/// Files are named `ckpt-{processed:012}.tin`; the zero-padded stream
/// position makes lexicographic order equal stream order.
pub struct CheckpointStore {
    dir: PathBuf,
    retention: RetentionPolicy,
    retry_attempts: usize,
    retry_backoff: Duration,
    #[allow(clippy::type_complexity)]
    fault_hook: Option<Box<dyn FnMut() -> std::io::Result<()> + Send>>,
    saves: usize,
    last_save_stats: Option<SaveStats>,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("retention", &self.retention)
            .field("saves", &self.saves)
            .finish()
    }
}

impl CheckpointStore {
    /// Open (creating if necessary) a checkpoint directory with default
    /// retention (keep 4) and retry (3 attempts, 10 ms base backoff).
    ///
    /// # Errors
    /// Propagates directory-creation failures as [`TinError::Io`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            retention: RetentionPolicy::default(),
            retry_attempts: 3,
            retry_backoff: Duration::from_millis(10),
            fault_hook: None,
            saves: 0,
            last_save_stats: None,
        })
    }

    /// Replace the retention policy.
    pub fn with_retention(mut self, retention: RetentionPolicy) -> Self {
        self.retention = retention;
        self
    }

    /// Configure the save retry loop: total `attempts` (clamped to ≥ 1) with
    /// exponential backoff starting at `backoff` and doubling per retry.
    pub fn with_retry(mut self, attempts: usize, backoff: Duration) -> Self {
        self.retry_attempts = attempts.max(1);
        self.retry_backoff = backoff;
        self
    }

    /// Install a fault-injection hook, called before every write attempt; an
    /// `Err` from the hook is treated as a transient I/O failure of that
    /// attempt. Used by the failure-injection test harness.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FnMut() -> std::io::Result<()> + Send>) {
        self.fault_hook = Some(hook);
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of checkpoints successfully saved through this store.
    pub fn saves(&self) -> usize {
        self.saves
    }

    /// Encode/write timings of the most recent successful [`Self::save`]
    /// (`None` before the first). Engines poll this after a periodic
    /// checkpoint to feed their observability histograms.
    pub fn last_save_stats(&self) -> Option<SaveStats> {
        self.last_save_stats
    }

    /// The on-disk path a checkpoint at stream position `processed` gets.
    pub fn path_for(&self, processed: usize) -> PathBuf {
        self.dir
            .join(format!("ckpt-{processed:012}.{FILE_EXTENSION}"))
    }

    /// Save a checkpoint atomically, retrying transient I/O failures with
    /// exponential backoff, then prune old files per the retention policy.
    /// Returns the final file path.
    ///
    /// # Errors
    /// Returns the last attempt's [`TinError::Io`] if every retry failed.
    pub fn save(&mut self, checkpoint: &Checkpoint) -> Result<PathBuf> {
        let path = self.path_for(checkpoint.cursor.processed);
        let encode_start = Instant::now();
        let bytes = checkpoint.encode();
        let encode_secs = encode_start.elapsed().as_secs_f64();
        let mut delay = self.retry_backoff;
        let mut last_err = None;
        let mut write_secs = 0.0;
        for attempt in 0..self.retry_attempts {
            if attempt > 0 {
                std::thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
            let write_start = Instant::now();
            let attempt_result = match self.fault_hook.as_mut() {
                Some(hook) => hook().map_err(TinError::from),
                None => Ok(()),
            }
            .and_then(|()| write_atomic_bytes(&bytes, &path));
            write_secs += write_start.elapsed().as_secs_f64();
            match attempt_result {
                Ok(()) => {
                    self.saves += 1;
                    self.last_save_stats = Some(SaveStats {
                        encode_secs,
                        write_secs,
                        retries: attempt,
                        encoded_bytes: bytes.len(),
                    });
                    self.enforce_retention()?;
                    return Ok(path);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one attempt ran"))
    }

    /// All retained checkpoint files, oldest first (stream-position order).
    ///
    /// # Errors
    /// Propagates directory-read failures as [`TinError::Io`].
    pub fn list(&self) -> Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let is_checkpoint = path.extension().is_some_and(|e| e == FILE_EXTENSION)
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt-"));
            if is_checkpoint {
                files.push(path);
            }
        }
        files.sort();
        Ok(files)
    }

    /// The newest retained checkpoint file, if any.
    ///
    /// # Errors
    /// Propagates directory-read failures as [`TinError::Io`].
    pub fn latest(&self) -> Result<Option<PathBuf>> {
        Ok(self.list()?.into_iter().next_back())
    }

    /// Load the newest checkpoint that validates, skipping (but not
    /// deleting) corrupt or version-mismatched files — the fallback path of
    /// crash recovery.
    ///
    /// Returns `Ok(None)` for an empty store. If files exist but none
    /// validates, returns the *newest* file's error so the caller sees why
    /// recovery failed.
    ///
    /// # Errors
    /// See above; validation failures are [`TinError::CorruptCheckpoint`] /
    /// [`TinError::CheckpointVersionMismatch`] with the file path filled in.
    pub fn load_latest_valid(&self) -> Result<Option<(PathBuf, Checkpoint)>> {
        let mut newest_err = None;
        for path in self.list()?.into_iter().rev() {
            match Checkpoint::read(&path) {
                Ok(ckpt) => return Ok(Some((path, ckpt))),
                Err(e) => {
                    if newest_err.is_none() {
                        newest_err = Some(e);
                    }
                }
            }
        }
        match newest_err {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }

    /// Apply the retention policy: prune beyond `max_count`, then prune
    /// files older than `max_age` (by modification time). The newest file is
    /// always kept.
    fn enforce_retention(&self) -> Result<()> {
        let files = self.list()?;
        if files.is_empty() {
            return Ok(());
        }
        let keep = self.retention.max_count.max(1);
        let excess = files.len().saturating_sub(keep);
        for path in &files[..excess] {
            fs::remove_file(path)?;
        }
        if let Some(max_age) = self.retention.max_age {
            let now = SystemTime::now();
            // Skip the last element: the newest checkpoint always survives.
            for path in &files[excess..files.len() - 1] {
                let modified = fs::metadata(path).and_then(|m| m.modified())?;
                let age = now.duration_since(modified).unwrap_or_default();
                if age > max_age {
                    fs::remove_file(path)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::policy::SelectionPolicy;
    use crate::tracker::build_tracker;

    fn unique_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tin_ckpt_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_checkpoint() -> Checkpoint {
        let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
        let mut tracker = build_tracker(&config, 3).unwrap();
        tracker.process_all(&paper_running_example());
        Checkpoint::capture(
            &config,
            StreamCursor {
                processed: 6,
                last_time: Some(8.0),
                total_quantity: 21.0,
                newborn_quantity: 9.0,
                peak_footprint_bytes: 1234,
            },
            tracker.as_mut(),
        )
        .unwrap()
    }

    #[test]
    fn capture_leaves_tracker_untouched() {
        let config = PolicyConfig::Plain(SelectionPolicy::ProportionalDense);
        let mut tracker = build_tracker(&config, 3).unwrap();
        tracker.process_all(&paper_running_example());
        let before: Vec<_> = (0..3)
            .map(|v| {
                let v = VertexId::new(v);
                (tracker.buffered(v), tracker.origins(v))
            })
            .collect();
        let _ = Checkpoint::capture(&config, StreamCursor::default(), tracker.as_mut()).unwrap();
        for (i, (buffered, origins)) in before.into_iter().enumerate() {
            let v = VertexId::new(i as u32);
            assert_eq!(tracker.buffered(v), buffered);
            assert_eq!(tracker.origins(v), origins);
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.encode();
        let back = Checkpoint::decode(&bytes, "").unwrap();
        assert_eq!(back.policy, ckpt.policy);
        assert_eq!(back.num_vertices, 3);
        assert_eq!(back.cursor, ckpt.cursor);
        assert_eq!(back.states, ckpt.states);
    }

    #[test]
    fn restore_reproduces_state_bit_identically() {
        let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
        let ckpt = sample_checkpoint();
        let mut fresh = build_tracker(&config, 3).unwrap();
        ckpt.restore_into(fresh.as_mut()).unwrap();
        let mut reference = build_tracker(&config, 3).unwrap();
        reference.process_all(&paper_running_example());
        for v in 0..3u32 {
            let v = VertexId::new(v);
            assert_eq!(fresh.buffered(v), reference.buffered(v));
            assert_eq!(fresh.origins(v).shares(), reference.origins(v).shares());
        }
    }

    #[test]
    fn restore_rejects_vertex_count_mismatch() {
        let config = PolicyConfig::Plain(SelectionPolicy::Fifo);
        let ckpt = sample_checkpoint();
        let mut wrong = build_tracker(&config, 5).unwrap();
        assert!(matches!(
            ckpt.restore_into(wrong.as_mut()),
            Err(TinError::InvalidConfig(_))
        ));
    }

    #[test]
    fn decode_rejects_bad_magic_and_version() {
        let ckpt = sample_checkpoint();
        let mut bytes = ckpt.encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Checkpoint::decode(&bytes, "x.tin"),
            Err(TinError::CorruptCheckpoint { section, path, .. })
                if section == "header" && path == "x.tin"
        ));

        let mut bytes = ckpt.encode();
        bytes[8] = 99;
        assert!(matches!(
            Checkpoint::decode(&bytes, ""),
            Err(TinError::CheckpointVersionMismatch {
                found: 99,
                supported: SCHEMA_VERSION
            })
        ));
    }

    #[test]
    fn decode_detects_corruption_in_every_section() {
        let ckpt = sample_checkpoint();
        let clean = ckpt.encode();
        // Flip one byte at a time across the whole file; every position must
        // either fail validation or (for the rare CRC-colliding positions,
        // which do not exist for single-bit flips) decode identically.
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x01;
            let result = Checkpoint::decode(&bytes, "");
            assert!(
                matches!(
                    result,
                    Err(TinError::CorruptCheckpoint { .. })
                        | Err(TinError::CheckpointVersionMismatch { .. })
                ),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = sample_checkpoint().encode();
        for len in [0, 5, 12, 20, bytes.len() - 1] {
            assert!(
                matches!(
                    Checkpoint::decode(&bytes[..len], ""),
                    Err(TinError::CorruptCheckpoint { .. })
                ),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn atomic_write_and_read_round_trips() {
        let dir = unique_dir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt-000000000006.tin");
        let ckpt = sample_checkpoint();
        ckpt.write_atomic(&path).unwrap();
        // No temp file left behind.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let back = Checkpoint::read(&path).unwrap();
        assert_eq!(back.states, ckpt.states);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_saves_lists_and_loads() {
        let dir = unique_dir("store");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut ckpt = sample_checkpoint();
        for processed in [2, 4, 6] {
            ckpt.cursor.processed = processed;
            store.save(&ckpt).unwrap();
        }
        assert_eq!(store.saves(), 3);
        let files = store.list().unwrap();
        assert_eq!(files.len(), 3);
        assert_eq!(store.latest().unwrap(), Some(files[2].clone()));
        let (path, loaded) = store.load_latest_valid().unwrap().unwrap();
        assert_eq!(path, files[2]);
        assert_eq!(loaded.cursor.processed, 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_count_retention_prunes_oldest() {
        let dir = unique_dir("retention");
        let mut store = CheckpointStore::open(&dir)
            .unwrap()
            .with_retention(RetentionPolicy {
                max_count: 2,
                max_age: None,
            });
        let mut ckpt = sample_checkpoint();
        for processed in [1, 2, 3, 4] {
            ckpt.cursor.processed = processed;
            store.save(&ckpt).unwrap();
        }
        let files = store.list().unwrap();
        assert_eq!(files.len(), 2);
        assert!(files[0].to_string_lossy().contains("000000000003"));
        assert!(files[1].to_string_lossy().contains("000000000004"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_age_retention_keeps_newest() {
        let dir = unique_dir("age");
        let mut store = CheckpointStore::open(&dir)
            .unwrap()
            .with_retention(RetentionPolicy {
                max_count: 10,
                max_age: Some(Duration::ZERO),
            });
        let mut ckpt = sample_checkpoint();
        for processed in [1, 2, 3] {
            ckpt.cursor.processed = processed;
            store.save(&ckpt).unwrap();
        }
        // Zero max-age prunes everything except the always-kept newest file.
        let files = store.list().unwrap();
        assert_eq!(files.len(), 1);
        assert!(files[0].to_string_lossy().contains("000000000003"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_retries_transient_faults() {
        let dir = unique_dir("retry");
        let mut store = CheckpointStore::open(&dir)
            .unwrap()
            .with_retry(3, Duration::from_millis(1));
        let failures = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(2));
        let hook_failures = failures.clone();
        store.set_fault_hook(Box::new(move || {
            if hook_failures
                .fetch_update(
                    std::sync::atomic::Ordering::SeqCst,
                    std::sync::atomic::Ordering::SeqCst,
                    |n| n.checked_sub(1),
                )
                .is_ok()
            {
                Err(std::io::Error::other("injected transient fault"))
            } else {
                Ok(())
            }
        }));
        // Two injected failures, three attempts: the save succeeds.
        let ckpt = sample_checkpoint();
        store.save(&ckpt).unwrap();
        assert_eq!(store.saves(), 1);
        // Exhausting every attempt surfaces the I/O error.
        failures.store(usize::MAX, std::sync::atomic::Ordering::SeqCst);
        assert!(matches!(store.save(&ckpt), Err(TinError::Io(_))));
        assert_eq!(store.saves(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_latest_valid_falls_back_past_corrupt_files() {
        let dir = unique_dir("fallback");
        let mut store = CheckpointStore::open(&dir).unwrap();
        let mut ckpt = sample_checkpoint();
        ckpt.cursor.processed = 2;
        store.save(&ckpt).unwrap();
        ckpt.cursor.processed = 4;
        let newest = store.save(&ckpt).unwrap();
        // Corrupt the newest file: recovery falls back to processed=2.
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let (path, loaded) = store.load_latest_valid().unwrap().unwrap();
        assert!(path.to_string_lossy().contains("000000000002"));
        assert_eq!(loaded.cursor.processed, 2);
        // Corrupt every file: the newest file's error comes back.
        let oldest = store.path_for(2);
        let mut bytes = fs::read(&oldest).unwrap();
        bytes[20] ^= 0xFF;
        fs::write(&oldest, &bytes).unwrap();
        let err = store.load_latest_valid().unwrap_err();
        assert!(matches!(
            &err,
            TinError::CorruptCheckpoint { path, .. } if path.contains("000000000004")
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_loads_none() {
        let dir = unique_dir("empty");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load_latest_valid().unwrap().is_none());
        assert!(store.latest().unwrap().is_none());
        assert_eq!(store.saves(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
