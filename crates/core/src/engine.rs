//! The streaming provenance engine.
//!
//! The trackers in [`crate::tracker`] are deliberately minimal: they assume a
//! validated, time-ordered stream and panic-free inputs. Real deployments
//! (Section 1: provenance is maintained "in real-time, as new interactions
//! take place in a streaming fashion") need the glue around them:
//!
//! * input validation (ordering, vertex bounds, quantity sanity) with proper
//!   errors instead of debug assertions,
//! * flow accounting (how much quantity was relayed vs. newly generated —
//!   the two cases of Algorithm 1),
//! * periodic checkpoints of the provenance state (see [`crate::snapshot`]),
//! * and throughput reporting for capacity planning.
//!
//! [`ProvenanceEngine`] packages all of that behind one streaming interface,
//! and [`run_ensemble`] runs several policies side by side over the same
//! stream — the shape of every experiment in Section 7.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use tin_obs::{CounterId, GaugeId, HistogramId, Obs, Telemetry};

use crate::checkpoint::{Checkpoint, CheckpointStore, SaveStats, StreamCursor};
use crate::error::{Result, TinError};
use crate::ids::VertexId;
use crate::interaction::Interaction;
use crate::memory::FootprintBreakdown;
use crate::origins::OriginSet;
use crate::policy::PolicyConfig;
use crate::quantity::Quantity;
use crate::snapshot::ProvenanceSnapshot;
use crate::stream::InteractionSource;
use crate::tracker::{build_tracker, ProvenanceTracker};

/// Flow accounting and performance figures for a finished (or in-progress)
/// engine run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineReport {
    /// Stable key of the policy configuration the engine ran.
    pub policy: String,
    /// Number of interactions processed.
    pub interactions: usize,
    /// Wall-clock seconds spent inside the tracker.
    pub runtime_secs: f64,
    /// Total quantity moved by all interactions (Σ r.q).
    pub total_quantity: Quantity,
    /// Quantity that was newly generated at source vertices
    /// (the `r.q − |B_{r.s}|` case of Algorithm 1).
    pub newborn_quantity: Quantity,
    /// Quantity that was relayed out of existing buffers.
    pub relayed_quantity: Quantity,
    /// Logical provenance footprint at the end of the run.
    pub footprint: FootprintBreakdown,
    /// Peak logical provenance footprint observed during the run (sampled
    /// every [`ProvenanceEngine::FOOTPRINT_SAMPLE_INTERVAL`] interactions, so
    /// short-lived spikes between samples may be missed). At least as large
    /// as `footprint.total()`.
    pub peak_footprint_bytes: usize,
    /// Number of checkpoints recorded during the run.
    pub checkpoints_taken: usize,
}

impl EngineReport {
    /// Interactions processed per second (0 if the run took no measurable
    /// time).
    pub fn throughput(&self) -> f64 {
        if self.runtime_secs <= 0.0 {
            0.0
        } else {
            self.interactions as f64 / self.runtime_secs
        }
    }

    /// Fraction of the moved quantity that was newly generated rather than
    /// relayed (1.0 when every interaction was paid out of fresh units).
    pub fn newborn_fraction(&self) -> f64 {
        if self.total_quantity <= 0.0 {
            0.0
        } else {
            self.newborn_quantity / self.total_quantity
        }
    }
}

/// Preregistered metric handles for an attached [`Obs`] unit. Registration
/// happens once in [`ProvenanceEngine::with_observability`]; every hot-path
/// update is an index into pre-sized storage (zero steady-state
/// allocations, enforced by the `obs_alloc_counting` integration test).
struct EngineObsState {
    obs: Obs,
    /// Per-interaction `tracker.process` latency.
    latency_ns: HistogramId,
    /// Sampled logical footprint (every periodic or spike-driven sample).
    footprint_bytes: GaugeId,
    /// Spike-monitor firings that forced an out-of-schedule sample.
    spikes: CounterId,
    /// Durable checkpoint phase timings and retry churn.
    ckpt_capture_ns: HistogramId,
    ckpt_encode_ns: HistogramId,
    ckpt_write_ns: HistogramId,
    ckpt_retries: CounterId,
    ckpt_bytes: GaugeId,
}

impl EngineObsState {
    fn new(mut obs: Obs) -> Self {
        let latency_ns = obs.metrics.histogram("tracker_latency_ns", "ns");
        let footprint_bytes = obs.metrics.gauge("footprint_bytes", "bytes");
        let spikes = obs.metrics.counter("footprint_spikes_total", "count");
        let ckpt_capture_ns = obs.metrics.histogram("checkpoint_capture_ns", "ns");
        let ckpt_encode_ns = obs.metrics.histogram("checkpoint_encode_ns", "ns");
        let ckpt_write_ns = obs.metrics.histogram("checkpoint_write_ns", "ns");
        let ckpt_retries = obs.metrics.counter("checkpoint_retries_total", "count");
        let ckpt_bytes = obs.metrics.gauge("checkpoint_bytes", "bytes");
        EngineObsState {
            obs,
            latency_ns,
            footprint_bytes,
            spikes,
            ckpt_capture_ns,
            ckpt_encode_ns,
            ckpt_write_ns,
            ckpt_retries,
            ckpt_bytes,
        }
    }

    /// Fold one durable-save's phase timings into the checkpoint metrics
    /// and drop a span on the flight recorder.
    fn record_checkpoint(
        &mut self,
        capture_started: Instant,
        capture: Duration,
        stats: Option<SaveStats>,
    ) {
        self.obs
            .metrics
            .observe_duration(self.ckpt_capture_ns, capture);
        if let Some(s) = stats {
            self.obs
                .metrics
                .observe(self.ckpt_encode_ns, secs_to_ns(s.encode_secs));
            self.obs
                .metrics
                .observe(self.ckpt_write_ns, secs_to_ns(s.write_secs));
            self.obs.metrics.add(self.ckpt_retries, s.retries as u64);
            self.obs
                .metrics
                .set_gauge(self.ckpt_bytes, s.encoded_bytes as u64);
        }
        self.obs.trace.record("checkpoint", 0, capture_started);
    }
}

/// Whole nanoseconds from fractional seconds (saturating).
fn secs_to_ns(secs: f64) -> u64 {
    (secs * 1e9).max(0.0).min(u64::MAX as f64) as u64
}

/// An attached live-telemetry stream: a JSONL sink plus its cadence.
/// Emission happens off the per-interaction hot path (every `every`
/// interactions), so the zero-allocation steady-state contract is
/// unaffected between emission points.
struct TelemetryState {
    sink: Telemetry,
    every: usize,
}

/// A validated, instrumented streaming front-end for one provenance tracker.
pub struct ProvenanceEngine {
    tracker: Box<dyn ProvenanceTracker>,
    config: PolicyConfig,
    policy_key: String,
    num_vertices: usize,
    checkpoint_interval: Option<usize>,
    checkpoints: Vec<ProvenanceSnapshot>,
    durable: Option<(CheckpointStore, usize)>,
    last_time: Option<f64>,
    processed: usize,
    total_quantity: Quantity,
    newborn_quantity: Quantity,
    peak_footprint_bytes: usize,
    busy_secs: f64,
    /// Explicit footprint-sampling interval; `None` uses the default
    /// schedule `max(FOOTPRINT_SAMPLE_INTERVAL, |V|/64)`.
    footprint_sample_interval: Option<usize>,
    /// Attached observability unit (`None` = uninstrumented: the hot path
    /// pays exactly one branch).
    obs: Option<Box<EngineObsState>>,
    /// Attached live-telemetry stream, if any.
    telemetry: Option<Box<TelemetryState>>,
}

impl ProvenanceEngine {
    /// Minimum number of interactions between two peak-footprint samples.
    /// Footprint computation is O(|V|), so the actual interval scales with
    /// the vertex count (`max(1024, |V|/64)`) to keep the amortised
    /// accounting overhead bounded by a small constant per interaction —
    /// provenance footprints grow smoothly, so coarser sampling on huge
    /// graphs loses almost nothing. Trackers with a spike monitor (see
    /// [`ProvenanceTracker::arm_spike_monitor`]) additionally push a
    /// notification whenever their footprint estimate drifts by more than
    /// [`Self::SPIKE_FRACTION`] between samples, so short-lived spikes no
    /// longer hide between the periodic samples.
    pub const FOOTPRINT_SAMPLE_INTERVAL: usize = 1024;

    /// Relative footprint drift at which a tracker-pushed spike notification
    /// triggers an out-of-schedule footprint sample.
    pub const SPIKE_FRACTION: f64 = 0.25;

    /// Build an engine for a policy configuration over `num_vertices`
    /// vertices.
    ///
    /// # Errors
    /// Propagates [`TinError::InvalidConfig`] from the tracker factory.
    pub fn new(config: &PolicyConfig, num_vertices: usize) -> Result<Self> {
        let mut tracker = build_tracker(config, num_vertices)?;
        tracker.arm_spike_monitor(Self::SPIKE_FRACTION);
        Ok(ProvenanceEngine {
            tracker,
            config: config.clone(),
            policy_key: config.key(),
            num_vertices,
            checkpoint_interval: None,
            checkpoints: Vec::new(),
            durable: None,
            last_time: None,
            processed: 0,
            total_quantity: 0.0,
            newborn_quantity: 0.0,
            peak_footprint_bytes: 0,
            busy_secs: 0.0,
            footprint_sample_interval: None,
            obs: None,
            telemetry: None,
        })
    }

    /// Sample the footprint every `every` interactions instead of the
    /// default `max(`[`Self::FOOTPRINT_SAMPLE_INTERVAL`]`, |V|/64)`
    /// schedule. Spike-monitor notifications still force out-of-schedule
    /// samples. Footprint computation is O(|V|), so a small interval on a
    /// large graph trades throughput for timeline resolution.
    ///
    /// # Errors
    /// Returns [`TinError::InvalidConfig`] if `every` is zero.
    pub fn with_footprint_sample_interval(mut self, every: usize) -> Result<Self> {
        if every == 0 {
            return Err(TinError::InvalidConfig(
                "footprint sample interval must be positive".into(),
            ));
        }
        self.footprint_sample_interval = Some(every);
        Ok(self)
    }

    /// Attach an observability unit: per-interaction tracker latency,
    /// footprint samples, spike firings and checkpoint phase timings land
    /// in its metrics, checkpoint spans on its flight recorder. All metric
    /// handles are preregistered here, so the instrumented hot path stays
    /// allocation-free; the engine's observable results are unaffected.
    /// Retrieve the unit with [`Self::take_obs`] when the run ends.
    #[must_use]
    pub fn with_observability(mut self, obs: Obs) -> Self {
        self.obs = Some(Box::new(EngineObsState::new(obs)));
        self
    }

    /// The attached observability unit, if any (live scraping via
    /// [`Obs::snapshot`]).
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_deref().map(|state| &state.obs)
    }

    /// Detach and return the observability unit for export.
    pub fn take_obs(&mut self) -> Option<Obs> {
        self.obs.take().map(|state| state.obs)
    }

    /// Stream a delta-encoded telemetry record (see
    /// [`tin_obs::Telemetry`]) every `every` interactions. Attaches a
    /// default observability unit if none is present — telemetry without
    /// metrics would stream empty records.
    ///
    /// # Errors
    /// Returns [`TinError::InvalidConfig`] if `every` is zero.
    pub fn with_telemetry(mut self, sink: Telemetry, every: usize) -> Result<Self> {
        if every == 0 {
            return Err(TinError::InvalidConfig(
                "telemetry interval must be positive".into(),
            ));
        }
        if self.obs.is_none() {
            self = self.with_observability(Obs::new());
        }
        self.telemetry = Some(Box::new(TelemetryState { sink, every }));
        Ok(self)
    }

    /// Emit one telemetry record right now, tagged with `source` (the CLI
    /// uses `"final"` for the end-of-run record). Returns `false` without
    /// side effects when no telemetry stream is attached.
    ///
    /// # Errors
    /// Propagates sink write failures as [`TinError::Io`].
    pub fn emit_telemetry(&mut self, source: &str) -> Result<bool> {
        let Some(t) = self.telemetry.as_deref_mut() else {
            return Ok(false);
        };
        let Some(o) = self.obs.as_deref() else {
            return Ok(false);
        };
        let snap = o.obs.snapshot();
        t.sink.emit(self.processed as u64, source, &snap)?;
        Ok(true)
    }

    /// Record a [`ProvenanceSnapshot`] every `interval` interactions.
    ///
    /// # Errors
    /// Returns [`TinError::InvalidConfig`] if `interval` is zero.
    pub fn with_checkpoints(mut self, interval: usize) -> Result<Self> {
        if interval == 0 {
            return Err(TinError::InvalidConfig(
                "checkpoint interval must be positive".into(),
            ));
        }
        self.checkpoint_interval = Some(interval);
        Ok(self)
    }

    /// Write a durable [`Checkpoint`] into `store` every `every`
    /// interactions. Unlike [`Self::with_checkpoints`] (lossy in-memory
    /// summaries), these are full lossless state captures a crashed run can
    /// resume from with [`Self::resume_from`].
    ///
    /// # Errors
    /// Returns [`TinError::InvalidConfig`] if `every` is zero.
    pub fn with_durable_checkpoints(
        mut self,
        store: CheckpointStore,
        every: usize,
    ) -> Result<Self> {
        if every == 0 {
            return Err(TinError::InvalidConfig(
                "durable checkpoint interval must be positive".into(),
            ));
        }
        self.durable = Some((store, every));
        Ok(self)
    }

    /// Rebuild an engine from a durable [`Checkpoint`], bit-identical to the
    /// engine that captured it: tracker state, stream position, and flow
    /// counters all resume exactly. The caller then replays the interaction
    /// stream starting at interaction `checkpoint.cursor.processed`.
    ///
    /// # Errors
    /// Propagates factory errors for the embedded policy and
    /// [`TinError::CorruptCheckpoint`] for undecodable vertex payloads.
    pub fn resume_from(checkpoint: &Checkpoint) -> Result<Self> {
        let mut engine = ProvenanceEngine::new(&checkpoint.policy, checkpoint.num_vertices)?;
        checkpoint.restore_into(engine.tracker.as_mut())?;
        // Re-arm the spike monitor: `new` baselined it on an empty tracker,
        // and drift must be measured from the restored footprint.
        engine.tracker.arm_spike_monitor(Self::SPIKE_FRACTION);
        engine.processed = checkpoint.cursor.processed;
        engine.last_time = checkpoint.cursor.last_time;
        engine.total_quantity = checkpoint.cursor.total_quantity;
        engine.newborn_quantity = checkpoint.cursor.newborn_quantity;
        engine.peak_footprint_bytes = checkpoint.cursor.peak_footprint_bytes;
        Ok(engine)
    }

    /// The engine's current stream position and flow counters.
    pub fn cursor(&self) -> StreamCursor {
        StreamCursor {
            processed: self.processed,
            last_time: self.last_time,
            total_quantity: self.total_quantity,
            newborn_quantity: self.newborn_quantity,
            peak_footprint_bytes: self.peak_footprint_bytes,
        }
    }

    /// Capture a durable [`Checkpoint`] of the current state without
    /// touching disk. The tracker's observable state is unchanged.
    ///
    /// # Errors
    /// Returns [`TinError::InvalidConfig`] for trackers without durable
    /// checkpoint support (none of the factory policies).
    pub fn checkpoint(&mut self) -> Result<Checkpoint> {
        Checkpoint::capture(&self.config, self.cursor(), self.tracker.as_mut())
    }

    /// Capture the current state and save it into `store` (atomic write,
    /// retry, retention). Returns the checkpoint file's path.
    ///
    /// # Errors
    /// Propagates capture errors and the store's [`TinError::Io`] failures.
    pub fn checkpoint_to(&mut self, store: &mut CheckpointStore) -> Result<PathBuf> {
        let capture_start = Instant::now();
        let checkpoint = self.checkpoint()?;
        let capture_elapsed = capture_start.elapsed();
        let path = store.save(&checkpoint)?;
        let stats = store.last_save_stats();
        if let Some(o) = self.obs.as_deref_mut() {
            o.record_checkpoint(capture_start, capture_elapsed, stats);
        }
        Ok(path)
    }

    /// The wrapped tracker.
    pub fn tracker(&self) -> &dyn ProvenanceTracker {
        self.tracker.as_ref()
    }

    /// The stable key of the policy this engine runs.
    pub fn policy_key(&self) -> &str {
        &self.policy_key
    }

    /// Checkpoints recorded so far, oldest first.
    pub fn checkpoints(&self) -> &[ProvenanceSnapshot] {
        &self.checkpoints
    }

    /// Current provenance of the quantity buffered at `v`.
    pub fn origins(&self, v: VertexId) -> OriginSet {
        self.tracker.origins(v)
    }

    /// Current buffered quantity `|B_v|`.
    pub fn buffered(&self, v: VertexId) -> Quantity {
        self.tracker.buffered(v)
    }

    /// Validate and process one interaction.
    ///
    /// # Errors
    /// * [`TinError::InvalidQuantity`] / [`TinError::InvalidTimestamp`] /
    ///   [`TinError::SelfLoop`] for malformed interactions,
    /// * [`TinError::UnknownVertex`] for endpoints outside the vertex set,
    /// * [`TinError::OutOfOrder`] if time goes backwards.
    pub fn process(&mut self, r: &Interaction) -> Result<()> {
        validate_stream_step(r, self.processed, self.num_vertices, self.last_time)?;

        // Flow accounting (Algorithm 1): anything the source buffer cannot
        // cover is newly generated at the source.
        let newborn = newborn_quantity(self.tracker.buffered(r.src), r.qty);
        self.total_quantity += r.qty;
        self.newborn_quantity += newborn;

        let start = Instant::now();
        self.tracker.process(r);
        let elapsed = start.elapsed();
        self.busy_secs += elapsed.as_secs_f64();
        if let Some(o) = self.obs.as_deref_mut() {
            // Reuses the latency measurement the engine takes anyway; the
            // record itself is an array index plus integer adds. The sketch
            // offers are linear scans over a pre-sized table — also
            // allocation-free.
            o.obs.metrics.observe_duration(o.latency_ns, elapsed);
            o.obs.hot_vertices.offer(r.src.raw(), 1);
            o.obs.hot_vertices.offer(r.dst.raw(), 1);
        }

        self.last_time = Some(r.time.0);
        self.processed += 1;
        let sample_every = self
            .footprint_sample_interval
            .unwrap_or_else(|| Self::FOOTPRINT_SAMPLE_INTERVAL.max(self.num_vertices / 64));
        // Read the spike flag unconditionally: a short-circuited read on a
        // periodic-sample interaction would leave the monitor un-rebaselined
        // and trigger a redundant full sample one interaction later.
        let spiked = self.tracker.take_footprint_spike();
        if spiked || self.processed.is_multiple_of(sample_every) {
            let total = self.tracker.footprint().total();
            self.peak_footprint_bytes = self.peak_footprint_bytes.max(total);
            if let Some(o) = self.obs.as_deref_mut() {
                o.obs.metrics.set_gauge(o.footprint_bytes, total as u64);
                if spiked {
                    o.obs.metrics.inc(o.spikes);
                }
            }
            if !spiked {
                // A spike read re-baselines on its own; periodic samples
                // re-baseline here so drift is measured from the last sample.
                self.tracker.note_footprint_sampled();
            }
        }
        if let Some(interval) = self.checkpoint_interval {
            if self.processed.is_multiple_of(interval) {
                self.checkpoints
                    .push(ProvenanceSnapshot::capture(self.tracker.as_ref(), r.time.0));
            }
        }
        if let Some((_, every)) = &self.durable {
            if self.processed.is_multiple_of(*every) {
                let capture_start = Instant::now();
                let checkpoint =
                    Checkpoint::capture(&self.config, self.cursor(), self.tracker.as_mut())?;
                let capture_elapsed = capture_start.elapsed();
                let (store, _) = self.durable.as_mut().expect("durable checked above");
                store.save(&checkpoint)?;
                let stats = store.last_save_stats();
                if let Some(o) = self.obs.as_deref_mut() {
                    o.record_checkpoint(capture_start, capture_elapsed, stats);
                }
            }
        }
        if let Some(t) = self.telemetry.as_deref() {
            if self.processed.is_multiple_of(t.every) {
                self.emit_telemetry("interval")?;
            }
        }
        Ok(())
    }

    /// Process every interaction of a slice, stopping at the first error.
    pub fn process_all(&mut self, interactions: &[Interaction]) -> Result<()> {
        for r in interactions {
            self.process(r)?;
        }
        Ok(())
    }

    /// Drain an [`InteractionSource`], returning the final report.
    pub fn run(&mut self, source: &mut dyn InteractionSource) -> Result<EngineReport> {
        while let Some(r) = source.next_interaction()? {
            self.process(&r)?;
        }
        Ok(self.report())
    }

    /// The report for everything processed so far.
    pub fn report(&self) -> EngineReport {
        let footprint = self.tracker.footprint();
        EngineReport {
            policy: self.policy_key.clone(),
            interactions: self.processed,
            runtime_secs: self.busy_secs,
            total_quantity: self.total_quantity,
            newborn_quantity: self.newborn_quantity,
            relayed_quantity: self.total_quantity - self.newborn_quantity,
            peak_footprint_bytes: self.peak_footprint_bytes.max(footprint.total()),
            footprint,
            checkpoints_taken: self.checkpoints.len()
                + self.durable.as_ref().map_or(0, |(store, _)| store.saves()),
        }
    }
}

impl std::fmt::Debug for ProvenanceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProvenanceEngine")
            .field("policy", &self.policy_key)
            .field("num_vertices", &self.num_vertices)
            .field("processed", &self.processed)
            .field("checkpoints", &self.checkpoints.len())
            .finish()
    }
}

/// Stream-step validation shared by every engine front-end (the sequential
/// [`ProvenanceEngine`] and the sharded engine of the `tin-shard` crate):
/// malformed interaction, unknown endpoint, or time going backwards. Keeping
/// one copy is what makes the two engines' "identical validation and error
/// surface" claim safe against future rule changes.
///
/// # Errors
/// * [`TinError::InvalidQuantity`] / [`TinError::InvalidTimestamp`] /
///   [`TinError::SelfLoop`] for malformed interactions,
/// * [`TinError::UnknownVertex`] for endpoints outside the vertex set,
/// * [`TinError::OutOfOrder`] if time goes backwards.
pub fn validate_stream_step(
    r: &Interaction,
    processed: usize,
    num_vertices: usize,
    last_time: Option<f64>,
) -> Result<()> {
    r.validate(Some(processed))?;
    for endpoint in [r.src, r.dst] {
        if endpoint.index() >= num_vertices {
            return Err(TinError::UnknownVertex {
                vertex: endpoint,
                num_vertices,
            });
        }
    }
    if let Some(prev) = last_time {
        if r.time.0 < prev {
            return Err(TinError::OutOfOrder {
                position: processed,
                previous: prev,
                current: r.time.0,
            });
        }
    }
    Ok(())
}

/// Algorithm 1's newborn split, shared by every engine front-end: the part
/// of a transfer that the source's buffered quantity cannot cover is newly
/// generated at the source.
#[inline]
pub fn newborn_quantity(buffered_at_src: Quantity, qty: Quantity) -> Quantity {
    (qty - buffered_at_src).max(0.0)
}

/// Run several policy configurations over the same interaction sequence and
/// return one report per configuration, in input order. This is the shape of
/// the paper's comparative experiments (Tables 7 and 8): same workload, one
/// column per policy.
pub fn run_ensemble(
    configs: &[PolicyConfig],
    num_vertices: usize,
    interactions: &[Interaction],
) -> Result<Vec<EngineReport>> {
    let mut reports = Vec::with_capacity(configs.len());
    for config in configs {
        let mut engine = ProvenanceEngine::new(config, num_vertices)?;
        engine.process_all(interactions)?;
        reports.push(engine.report());
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::policy::SelectionPolicy;
    use crate::quantity::qty_approx_eq;
    use crate::stream::VecSource;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    fn fifo_config() -> PolicyConfig {
        PolicyConfig::Plain(SelectionPolicy::Fifo)
    }

    #[test]
    fn engine_runs_the_running_example() {
        let mut engine = ProvenanceEngine::new(&fifo_config(), 3).unwrap();
        let mut source = VecSource::new(paper_running_example());
        let report = engine.run(&mut source).unwrap();
        assert_eq!(report.interactions, 6);
        assert_eq!(report.policy, "fifo");
        assert!(report.runtime_secs >= 0.0);
        // Σ r.q = 21; newborn = 3 (interaction 1) + 2 (interaction 2)
        // + 4 (interaction 4) = 9; relayed = 12 (Table 2's parenthesised values).
        assert!(qty_approx_eq(report.total_quantity, 21.0));
        assert!(qty_approx_eq(report.newborn_quantity, 9.0));
        assert!(qty_approx_eq(report.relayed_quantity, 12.0));
        assert!((report.newborn_fraction() - 9.0 / 21.0).abs() < 1e-9);
        assert!(report.footprint.total() > 0);
        // Peak footprint is sampled (and floored at the final footprint).
        assert!(report.peak_footprint_bytes >= report.footprint.total());
        // Buffered totals match Table 2's final row.
        assert!(qty_approx_eq(engine.buffered(v(0)), 3.0));
        assert!(qty_approx_eq(engine.buffered(v(1)), 2.0));
        assert!(qty_approx_eq(engine.buffered(v(2)), 4.0));
        assert_eq!(engine.origins(v(0)).total(), engine.buffered(v(0)));
        assert_eq!(engine.policy_key(), "fifo");
        assert_eq!(engine.tracker().name(), "FIFO");
        assert!(format!("{engine:?}").contains("fifo"));
    }

    #[test]
    fn engine_rejects_malformed_input() {
        let mut engine = ProvenanceEngine::new(&fifo_config(), 3).unwrap();
        // Self-loop.
        let err = engine
            .process(&Interaction::new(1u32, 1u32, 1.0, 2.0))
            .unwrap_err();
        assert!(matches!(err, TinError::SelfLoop { .. }));
        // Non-positive quantity.
        let err = engine
            .process(&Interaction::new(0u32, 1u32, 1.0, 0.0))
            .unwrap_err();
        assert!(matches!(err, TinError::InvalidQuantity { .. }));
        // Unknown vertex.
        let err = engine
            .process(&Interaction::new(0u32, 9u32, 1.0, 2.0))
            .unwrap_err();
        assert!(matches!(err, TinError::UnknownVertex { .. }));
        // Out of order.
        engine
            .process(&Interaction::new(0u32, 1u32, 5.0, 2.0))
            .unwrap();
        let err = engine
            .process(&Interaction::new(0u32, 1u32, 4.0, 2.0))
            .unwrap_err();
        assert!(matches!(err, TinError::OutOfOrder { .. }));
        // Equal timestamps are fine.
        engine
            .process(&Interaction::new(1u32, 2u32, 5.0, 1.0))
            .unwrap();
    }

    #[test]
    fn engine_checkpoints_periodically() {
        let mut engine = ProvenanceEngine::new(&fifo_config(), 3)
            .unwrap()
            .with_checkpoints(2)
            .unwrap();
        engine.process_all(&paper_running_example()).unwrap();
        let report = engine.report();
        assert_eq!(report.checkpoints_taken, 3);
        assert_eq!(engine.checkpoints().len(), 3);
        assert_eq!(engine.checkpoints()[0].interactions_processed, 2);
        assert_eq!(engine.checkpoints()[2].time, 8.0);
        // Zero interval is rejected.
        assert!(ProvenanceEngine::new(&fifo_config(), 3)
            .unwrap()
            .with_checkpoints(0)
            .is_err());
    }

    #[test]
    fn engine_propagates_factory_errors() {
        let bad = PolicyConfig::Selective { tracked: vec![] };
        assert!(ProvenanceEngine::new(&bad, 3).is_err());
    }

    #[test]
    fn ensemble_compares_policies_on_the_same_stream() {
        let configs = vec![
            PolicyConfig::Plain(SelectionPolicy::NoProvenance),
            PolicyConfig::Plain(SelectionPolicy::Fifo),
            PolicyConfig::Plain(SelectionPolicy::ProportionalDense),
        ];
        let reports = run_ensemble(&configs, 3, &paper_running_example()).unwrap();
        assert_eq!(reports.len(), 3);
        // Flow accounting is policy-independent: every policy moves the same
        // quantity and generates the same newborn quantity.
        for report in &reports {
            assert_eq!(report.interactions, 6);
            assert!(qty_approx_eq(report.total_quantity, 21.0));
            assert!(qty_approx_eq(report.newborn_quantity, 9.0));
        }
        assert_eq!(reports[0].policy, "noprov");
        assert_eq!(reports[2].policy, "prop_dense");
        // An invalid member aborts the whole ensemble.
        let bad = vec![PolicyConfig::Windowed { window: 0 }];
        assert!(run_ensemble(&bad, 3, &paper_running_example()).is_err());
    }

    /// Satellite (PR 5): trackers push footprint-spike notifications, so a
    /// spike that lives and dies *between* two periodic samples still shows
    /// up in `peak_footprint_bytes`. The stream below grows a large
    /// provenance list at a hub and then lets a keep-important budget shrink
    /// rebuild it with a tight capacity — the only periodic sample lands
    /// mid-growth, so without the spike callback the reported peak would
    /// miss the top of the ramp.
    #[test]
    fn spike_callback_catches_peaks_between_samples() {
        use crate::policy::ShrinkCriterion;
        let n = 2000usize;
        let capacity = 1500usize;
        let config = PolicyConfig::Budgeted {
            capacity,
            keep_fraction: 0.5,
            criterion: ShrinkCriterion::KeepImportant,
            important: vec![VertexId::new(1)],
        };
        let mut engine = ProvenanceEngine::new(&config, n).unwrap();
        // Phase 1: `capacity` distinct generators feed vertex 0 — its list
        // grows to the budget limit without shrinking.
        for i in 1..=capacity as u32 {
            engine
                .process(&Interaction::new(i, 0u32, i as f64, 1.0))
                .unwrap();
        }
        let at_peak = engine.tracker().footprint().total();
        // Phase 2: one more origin pushes the list over budget; the
        // keep-important shrink rebuilds it at half the entries with a
        // fresh, tight allocation.
        engine
            .process(&Interaction::new(1501u32, 0u32, 1501.0, 1.0))
            .unwrap();
        let report = engine.report();
        // The shrink genuinely released memory...
        assert!(
            report.footprint.total() < at_peak,
            "shrink should drop the footprint: {} vs {at_peak}",
            report.footprint.total()
        );
        // ...and the single periodic sample (at interaction 1024, two thirds
        // up the ramp) undercounts the true peak, which only the spike
        // samples reach.
        assert!(
            report.peak_footprint_bytes as f64 >= 0.95 * at_peak as f64,
            "peak {} missed the spike of {at_peak}",
            report.peak_footprint_bytes
        );
        assert!(report.peak_footprint_bytes > report.footprint.total());
    }

    #[test]
    fn durable_checkpoints_resume_bit_identically() {
        use crate::checkpoint::CheckpointStore;
        let dir = std::env::temp_dir().join(format!("tin_engine_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        let interactions = paper_running_example();

        // Interrupted run: durable checkpoint every 2 interactions, "crash"
        // after 4.
        let mut engine = ProvenanceEngine::new(&fifo_config(), 3)
            .unwrap()
            .with_durable_checkpoints(store, 2)
            .unwrap();
        engine.process_all(&interactions[..4]).unwrap();
        assert_eq!(engine.report().checkpoints_taken, 2);

        // Recover from disk and replay the tail.
        let store = CheckpointStore::open(&dir).unwrap();
        let (_, checkpoint) = store.load_latest_valid().unwrap().unwrap();
        assert_eq!(checkpoint.cursor.processed, 4);
        let mut resumed = ProvenanceEngine::resume_from(&checkpoint).unwrap();
        resumed
            .process_all(&interactions[checkpoint.cursor.processed..])
            .unwrap();

        // Uninterrupted reference run.
        let mut reference = ProvenanceEngine::new(&fifo_config(), 3).unwrap();
        reference.process_all(&interactions).unwrap();

        // Bit-identical: exact float equality, not approximate.
        let resumed_report = resumed.report();
        let reference_report = reference.report();
        assert_eq!(resumed_report.interactions, reference_report.interactions);
        assert_eq!(
            resumed_report.total_quantity,
            reference_report.total_quantity
        );
        assert_eq!(
            resumed_report.newborn_quantity,
            reference_report.newborn_quantity
        );
        for i in 0..3u32 {
            assert_eq!(resumed.buffered(v(i)), reference.buffered(v(i)));
            assert_eq!(resumed.origins(v(i)), reference.origins(v(i)));
        }

        // Zero interval is rejected.
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(ProvenanceEngine::new(&fifo_config(), 3)
            .unwrap()
            .with_durable_checkpoints(store, 0)
            .is_err());
        // On-demand checkpoint_to saves one more file.
        let mut store = CheckpointStore::open(&dir).unwrap();
        let path = reference.checkpoint_to(&mut store).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// PR 8 tentpole + satellite: an attached [`Obs`] unit records
    /// per-interaction latency, footprint samples at the configured
    /// interval, and checkpoint phase timings — without changing any
    /// engine-observable result.
    #[test]
    fn observability_records_latency_footprint_and_checkpoints() {
        let interactions = paper_running_example();
        let dir = std::env::temp_dir().join(format!("tin_obs_engine_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt_store = CheckpointStore::open(&dir).unwrap();
        let mut engine = ProvenanceEngine::new(&fifo_config(), 3)
            .unwrap()
            .with_footprint_sample_interval(2)
            .unwrap()
            .with_durable_checkpoints(ckpt_store, 3)
            .unwrap()
            .with_observability(Obs::new());
        let mut plain = ProvenanceEngine::new(&fifo_config(), 3).unwrap();
        engine.process_all(&interactions).unwrap();
        plain.process_all(&interactions).unwrap();

        // Instrumentation must not perturb results: exact equality.
        for i in 0..3u32 {
            assert_eq!(engine.buffered(v(i)), plain.buffered(v(i)));
            assert_eq!(engine.origins(v(i)), plain.origins(v(i)));
        }
        assert_eq!(
            engine.report().total_quantity,
            plain.report().total_quantity
        );

        let snap = engine.obs().expect("obs attached").snapshot();
        let hist = |name: &str| {
            snap.histograms
                .iter()
                .find(|h| h.name == name)
                .unwrap_or_else(|| panic!("{name} registered"))
                .clone()
        };
        assert_eq!(hist("tracker_latency_ns").count, 6);
        assert!(hist("tracker_latency_ns").p50 <= hist("tracker_latency_ns").max);
        // Sample interval 2 over 6 interactions: at least 3 gauge samples.
        let footprint = snap.gauges.iter().find(|g| g.name == "footprint_bytes");
        assert!(footprint.unwrap().samples >= 3);
        assert!(footprint.unwrap().last > 0);
        // Durable checkpoints every 3 interactions: 2 saves, each timed.
        assert_eq!(hist("checkpoint_capture_ns").count, 2);
        assert_eq!(hist("checkpoint_encode_ns").count, 2);
        assert_eq!(hist("checkpoint_write_ns").count, 2);
        // ...and spans on the flight recorder.
        let obs = engine.take_obs().expect("detachable");
        assert_eq!(
            obs.trace
                .events()
                .iter()
                .filter(|e| e.name == "checkpoint")
                .count(),
            2
        );
        assert!(engine.obs().is_none());

        // Zero interval is rejected.
        assert!(ProvenanceEngine::new(&fifo_config(), 3)
            .unwrap()
            .with_footprint_sample_interval(0)
            .is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn telemetry_streams_interval_and_final_records() {
        use std::io::Write;
        use std::sync::{Arc, Mutex};

        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let interactions = paper_running_example();
        let buf = SharedBuf::default();
        // No explicit with_observability: with_telemetry attaches a default.
        let mut engine = ProvenanceEngine::new(&fifo_config(), 3)
            .unwrap()
            .with_telemetry(Telemetry::new(Box::new(buf.clone())), 2)
            .unwrap();
        engine.process_all(&interactions).unwrap();
        assert!(engine.emit_telemetry("final").unwrap());

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let records: Vec<tin_obs::json::Value> = text
            .lines()
            .map(|l| tin_obs::json::Value::parse(l).expect("valid JSONL"))
            .collect();
        // 6 interactions at cadence 2 → 3 interval records, plus the final.
        assert_eq!(records.len(), 4);
        use tin_obs::json::Value;
        assert_eq!(records[0].get("kind").and_then(Value::as_str), Some("full"));
        assert_eq!(
            records[0].get("source").and_then(Value::as_str),
            Some("interval")
        );
        assert_eq!(
            records[3].get("kind").and_then(Value::as_str),
            Some("delta")
        );
        assert_eq!(
            records[3].get("source").and_then(Value::as_str),
            Some("final")
        );
        assert_eq!(records[3].get("at").and_then(Value::as_u64), Some(6));
        // The hot-vertex sketch sees both endpoints of every interaction:
        // total touch weight across the sketch is 2 per interaction.
        let hot = records[3]
            .get("hot_vertices")
            .and_then(Value::as_arr)
            .unwrap();
        let touches: u64 = hot
            .iter()
            .map(|e| e.get("weight").and_then(Value::as_u64).unwrap())
            .sum();
        assert_eq!(touches, 12);

        // An engine without telemetry reports `false` and emits nothing.
        let mut plain = ProvenanceEngine::new(&fifo_config(), 3).unwrap();
        assert!(!plain.emit_telemetry("final").unwrap());

        // Zero cadence is rejected.
        assert!(ProvenanceEngine::new(&fifo_config(), 3)
            .unwrap()
            .with_telemetry(Telemetry::new(Box::new(std::io::sink())), 0)
            .is_err());
    }

    #[test]
    fn throughput_is_zero_for_empty_runs() {
        let engine = ProvenanceEngine::new(&fifo_config(), 3).unwrap();
        let report = engine.report();
        assert_eq!(report.interactions, 0);
        assert_eq!(report.throughput(), 0.0);
        assert_eq!(report.newborn_fraction(), 0.0);
    }
}
