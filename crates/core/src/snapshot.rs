//! Provenance snapshots: persisting and diffing the provenance state.
//!
//! The trackers of [`crate::tracker`] answer "what is the provenance of the
//! quantity buffered at `v` *right now*?". Analysts additionally want to
//! persist that answer, compare it across time, and keep a bounded history of
//! past states (the per-arrival pie charts of Figure 2 are exactly a sequence
//! of snapshots of one vertex). This module provides:
//!
//! * [`ProvenanceSnapshot`] — a serialisable capture of every vertex's origin
//!   set at one moment, with a plain-text persistence format;
//! * [`SnapshotDiff`] — the per-vertex / per-origin change between two
//!   snapshots;
//! * [`CheckpointedProvenance`] — a tracker wrapper that records a snapshot
//!   every `interval` interactions, giving O(1) *approximate* time-travel
//!   queries at checkpoint granularity (exact arbitrary-time queries are the
//!   job of [`crate::tracker::lazy`] and [`crate::tracker::backtrace`], which
//!   replay the log instead).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use serde::{Deserialize, Serialize};

use crate::error::{Result, TinError};
use crate::ids::{GroupId, Origin, VertexId};
use crate::interaction::Interaction;
use crate::memory::FootprintBreakdown;
use crate::origins::OriginSet;
use crate::quantity::{qty_is_zero, Quantity};
use crate::tracker::ProvenanceTracker;

/// A capture of the provenance state of every vertex at one moment in time.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceSnapshot {
    /// Timestamp of the last interaction folded into this snapshot.
    pub time: f64,
    /// Number of interactions processed when the snapshot was taken.
    pub interactions_processed: usize,
    /// Per-vertex origin sets (indexed by vertex id).
    pub origins: Vec<OriginSet>,
}

impl ProvenanceSnapshot {
    /// Capture the current state of a tracker. `time` is the timestamp of the
    /// last processed interaction (callers typically thread it through from
    /// the stream; it is metadata only).
    pub fn capture(tracker: &dyn ProvenanceTracker, time: f64) -> Self {
        let origins = (0..tracker.num_vertices())
            .map(|i| tracker.origins(VertexId::from(i)))
            .collect();
        ProvenanceSnapshot {
            time,
            interactions_processed: tracker.interactions_processed(),
            origins,
        }
    }

    /// Number of vertices covered by the snapshot.
    pub fn num_vertices(&self) -> usize {
        self.origins.len()
    }

    /// The origin set of a vertex (empty if the id is out of range).
    pub fn origins(&self, v: VertexId) -> OriginSet {
        self.origins.get(v.index()).cloned().unwrap_or_default()
    }

    /// The buffered quantity `|B_v|` recorded for a vertex.
    pub fn buffered(&self, v: VertexId) -> Quantity {
        self.origins
            .get(v.index())
            .map(|o| o.total())
            .unwrap_or(0.0)
    }

    /// Total quantity buffered anywhere in the network at snapshot time.
    pub fn total_buffered(&self) -> Quantity {
        self.origins.iter().map(|o| o.total()).sum()
    }

    /// Vertices with a non-empty buffer.
    pub fn non_empty_vertices(&self) -> usize {
        self.origins.iter().filter(|o| !o.is_empty()).count()
    }

    /// Compute the change from `earlier` to `self`.
    pub fn diff_from(&self, earlier: &ProvenanceSnapshot) -> SnapshotDiff {
        let n = self.num_vertices().max(earlier.num_vertices());
        let mut per_vertex = Vec::with_capacity(n);
        for i in 0..n {
            let v = VertexId::from(i);
            let delta = self.buffered(v) - earlier.buffered(v);
            per_vertex.push(delta);
        }
        SnapshotDiff {
            interactions: self
                .interactions_processed
                .saturating_sub(earlier.interactions_processed),
            per_vertex_delta: per_vertex,
        }
    }

    /// Write the snapshot as tab-separated text: a header line followed by one
    /// `vertex \t origin \t quantity` line per share. Empty buffers produce no
    /// lines. The format round-trips through [`ProvenanceSnapshot::read_tsv`].
    pub fn write_tsv<W: Write>(&self, writer: W) -> Result<()> {
        let mut w = BufWriter::new(writer);
        writeln!(
            w,
            "# snapshot\ttime={}\tinteractions={}\tvertices={}",
            self.time,
            self.interactions_processed,
            self.num_vertices()
        )?;
        for (i, set) in self.origins.iter().enumerate() {
            for (origin, qty) in set.iter() {
                writeln!(w, "{}\t{}\t{}", i, format_origin_key(origin), qty)?;
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Read a snapshot written by [`ProvenanceSnapshot::write_tsv`].
    pub fn read_tsv<R: Read>(reader: R) -> Result<Self> {
        let buf = BufReader::new(reader);
        let mut time = 0.0;
        let mut interactions_processed = 0;
        let mut num_vertices = 0usize;
        let mut pairs: Vec<(usize, Origin, Quantity)> = Vec::new();
        for (lineno, line) in buf.lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if trimmed.starts_with('#') {
                for field in trimmed.trim_start_matches('#').split('\t') {
                    if let Some(v) = field.trim().strip_prefix("time=") {
                        time = v.parse().map_err(|_| parse_err(lineno, "time"))?;
                    } else if let Some(v) = field.trim().strip_prefix("interactions=") {
                        interactions_processed =
                            v.parse().map_err(|_| parse_err(lineno, "interactions"))?;
                    } else if let Some(v) = field.trim().strip_prefix("vertices=") {
                        num_vertices = v.parse().map_err(|_| parse_err(lineno, "vertices"))?;
                    }
                }
                continue;
            }
            let fields: Vec<&str> = trimmed.split('\t').collect();
            if fields.len() != 3 {
                return Err(TinError::Parse {
                    line: lineno + 1,
                    message: format!("expected 3 tab-separated fields, found {}", fields.len()),
                });
            }
            let vertex: usize = fields[0].parse().map_err(|_| parse_err(lineno, "vertex"))?;
            let origin = parse_origin_key(fields[1]).ok_or_else(|| parse_err(lineno, "origin"))?;
            let qty: f64 = fields[2]
                .parse()
                .map_err(|_| parse_err(lineno, "quantity"))?;
            num_vertices = num_vertices.max(vertex + 1);
            pairs.push((vertex, origin, qty));
        }
        let mut per_vertex: Vec<Vec<(Origin, Quantity)>> = vec![Vec::new(); num_vertices];
        for (vertex, origin, qty) in pairs {
            per_vertex[vertex].push((origin, qty));
        }
        Ok(ProvenanceSnapshot {
            time,
            interactions_processed,
            origins: per_vertex.into_iter().map(OriginSet::from_pairs).collect(),
        })
    }

    /// Approximate equality: same number of vertices and matching origin sets
    /// within the library tolerance.
    pub fn approx_eq(&self, other: &ProvenanceSnapshot) -> bool {
        self.num_vertices() == other.num_vertices()
            && self
                .origins
                .iter()
                .zip(&other.origins)
                .all(|(a, b)| a.approx_eq(b))
    }
}

fn parse_err(lineno: usize, what: &str) -> TinError {
    TinError::Parse {
        line: lineno + 1,
        message: format!("invalid {what}"),
    }
}

/// Stable textual key for an origin, used by the TSV persistence format.
fn format_origin_key(origin: Origin) -> String {
    match origin {
        Origin::Vertex(v) => format!("v:{}", v.raw()),
        Origin::Group(g) => format!("g:{}", g.0),
        Origin::Untracked => "untracked".to_string(),
        Origin::Unknown => "unknown".to_string(),
    }
}

/// Parse an origin key produced by [`format_origin_key`].
fn parse_origin_key(key: &str) -> Option<Origin> {
    if let Some(raw) = key.strip_prefix("v:") {
        return raw
            .parse()
            .ok()
            .map(|r: u32| Origin::Vertex(VertexId::new(r)));
    }
    if let Some(raw) = key.strip_prefix("g:") {
        return raw
            .parse()
            .ok()
            .map(|r: u32| Origin::Group(GroupId::new(r)));
    }
    match key {
        "untracked" => Some(Origin::Untracked),
        "unknown" => Some(Origin::Unknown),
        _ => None,
    }
}

/// The change between two snapshots.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapshotDiff {
    /// Number of interactions processed between the two snapshots.
    pub interactions: usize,
    /// Per-vertex change of the buffered quantity (positive = accumulated).
    pub per_vertex_delta: Vec<Quantity>,
}

impl SnapshotDiff {
    /// Vertices whose buffered quantity increased by more than the tolerance.
    pub fn accumulating_vertices(&self) -> Vec<VertexId> {
        self.per_vertex_delta
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0.0 && !qty_is_zero(d))
            .map(|(i, _)| VertexId::from(i))
            .collect()
    }

    /// The vertex with the largest buffered-quantity increase, if any grew.
    pub fn fastest_accumulator(&self) -> Option<(VertexId, Quantity)> {
        self.per_vertex_delta
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0.0 && !qty_is_zero(d))
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &d)| (VertexId::from(i), d))
    }
}

/// A tracker wrapper that records periodic snapshots of the provenance state.
///
/// Every `interval` processed interactions a [`ProvenanceSnapshot`] is taken,
/// so past states can be inspected in O(1) at checkpoint granularity — the
/// space cost is one full origin decomposition per checkpoint, which is why
/// the wrapper also supports a bounded history (`max_checkpoints`).
pub struct CheckpointedProvenance {
    tracker: Box<dyn ProvenanceTracker>,
    interval: usize,
    max_checkpoints: Option<usize>,
    checkpoints: Vec<ProvenanceSnapshot>,
    last_time: f64,
}

impl CheckpointedProvenance {
    /// Wrap a tracker, snapshotting every `interval` interactions.
    ///
    /// # Errors
    /// Returns [`TinError::InvalidConfig`] if `interval` is zero.
    pub fn new(tracker: Box<dyn ProvenanceTracker>, interval: usize) -> Result<Self> {
        if interval == 0 {
            return Err(TinError::InvalidConfig(
                "checkpoint interval must be positive".into(),
            ));
        }
        Ok(CheckpointedProvenance {
            tracker,
            interval,
            max_checkpoints: None,
            checkpoints: Vec::new(),
            last_time: 0.0,
        })
    }

    /// Keep only the most recent `max` checkpoints (older ones are dropped).
    pub fn with_max_checkpoints(mut self, max: usize) -> Self {
        self.max_checkpoints = Some(max);
        self
    }

    /// The wrapped tracker.
    pub fn tracker(&self) -> &dyn ProvenanceTracker {
        self.tracker.as_ref()
    }

    /// The checkpoints recorded so far, oldest first.
    pub fn checkpoints(&self) -> &[ProvenanceSnapshot] {
        &self.checkpoints
    }

    /// The checkpoint interval.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// The most recent checkpoint taken at or before time `t`, if any.
    pub fn snapshot_at(&self, t: f64) -> Option<&ProvenanceSnapshot> {
        self.checkpoints.iter().rev().find(|s| s.time <= t)
    }

    /// The buffered-quantity history of one vertex across checkpoints:
    /// `(time, |B_v|, O(t, B_v))` per checkpoint (the raw material of the
    /// Figure 2 accumulation plot at checkpoint granularity).
    pub fn history_of(&self, v: VertexId) -> Vec<(f64, Quantity, OriginSet)> {
        self.checkpoints
            .iter()
            .map(|s| (s.time, s.buffered(v), s.origins(v)))
            .collect()
    }

    /// Take a snapshot right now, regardless of the interval.
    pub fn checkpoint_now(&mut self) -> &ProvenanceSnapshot {
        let snapshot = ProvenanceSnapshot::capture(self.tracker.as_ref(), self.last_time);
        self.checkpoints.push(snapshot);
        if let Some(max) = self.max_checkpoints {
            let excess = self.checkpoints.len().saturating_sub(max);
            if excess > 0 {
                self.checkpoints.drain(..excess);
            }
        }
        self.checkpoints.last().expect("just pushed")
    }
}

impl std::fmt::Debug for CheckpointedProvenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointedProvenance")
            .field("tracker", &self.tracker.name())
            .field("interval", &self.interval)
            .field("checkpoints", &self.checkpoints.len())
            .finish()
    }
}

impl ProvenanceTracker for CheckpointedProvenance {
    fn name(&self) -> &'static str {
        "Checkpointed"
    }

    fn num_vertices(&self) -> usize {
        self.tracker.num_vertices()
    }

    fn process(&mut self, r: &Interaction) {
        self.tracker.process(r);
        self.last_time = r.time.0;
        if self
            .tracker
            .interactions_processed()
            .is_multiple_of(self.interval)
        {
            self.checkpoint_now();
        }
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.tracker.buffered(v)
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        self.tracker.origins(v)
    }

    fn footprint(&self) -> FootprintBreakdown {
        let base = self.tracker.footprint();
        // Account for the checkpoint storage in the index component.
        let checkpoint_bytes: usize = self
            .checkpoints
            .iter()
            .map(|s| {
                s.origins
                    .iter()
                    .map(|o| o.len() * std::mem::size_of::<crate::origins::OriginShare>())
                    .sum::<usize>()
            })
            .sum();
        FootprintBreakdown {
            entries_bytes: base.entries_bytes,
            paths_bytes: base.paths_bytes,
            index_bytes: base.index_bytes + checkpoint_bytes,
        }
    }

    fn interactions_processed(&self) -> usize {
        self.tracker.interactions_processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::policy::{PolicyConfig, SelectionPolicy};
    use crate::quantity::qty_approx_eq;
    use crate::tracker::build_tracker;
    use crate::tracker::proportional_sparse::ProportionalSparseTracker;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    fn example_snapshot() -> ProvenanceSnapshot {
        let mut tracker = ProportionalSparseTracker::new(3);
        tracker.process_all(&paper_running_example());
        ProvenanceSnapshot::capture(&tracker, 8.0)
    }

    #[test]
    fn capture_reflects_tracker_state() {
        let snapshot = example_snapshot();
        assert_eq!(snapshot.num_vertices(), 3);
        assert_eq!(snapshot.interactions_processed, 6);
        assert_eq!(snapshot.time, 8.0);
        // Table 5, final row: buffered totals 3, 2, 4.
        assert!(qty_approx_eq(snapshot.buffered(v(0)), 3.0));
        assert!(qty_approx_eq(snapshot.buffered(v(1)), 2.0));
        assert!(qty_approx_eq(snapshot.buffered(v(2)), 4.0));
        assert!(qty_approx_eq(snapshot.total_buffered(), 9.0));
        assert_eq!(snapshot.non_empty_vertices(), 3);
        // Out-of-range vertex is empty.
        assert!(snapshot.origins(v(99)).is_empty());
        assert_eq!(snapshot.buffered(v(99)), 0.0);
    }

    #[test]
    fn tsv_roundtrip() {
        let snapshot = example_snapshot();
        let mut buf = Vec::new();
        snapshot.write_tsv(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("# snapshot"));
        let parsed = ProvenanceSnapshot::read_tsv(buf.as_slice()).unwrap();
        assert!(parsed.approx_eq(&snapshot));
        assert_eq!(parsed.time, 8.0);
        assert_eq!(parsed.interactions_processed, 6);
    }

    #[test]
    fn tsv_rejects_malformed_lines() {
        let err = ProvenanceSnapshot::read_tsv("0\tv:1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TinError::Parse { .. }));
        let err = ProvenanceSnapshot::read_tsv("0\tnonsense\t1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TinError::Parse { .. }));
        let err = ProvenanceSnapshot::read_tsv("x\tv:1\t1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TinError::Parse { .. }));
    }

    #[test]
    fn origin_key_roundtrip() {
        for origin in [
            Origin::Vertex(VertexId::new(7)),
            Origin::Group(GroupId::new(2)),
            Origin::Untracked,
            Origin::Unknown,
        ] {
            assert_eq!(parse_origin_key(&format_origin_key(origin)), Some(origin));
        }
        assert_eq!(parse_origin_key("v:notanumber"), None);
        assert_eq!(parse_origin_key("w:1"), None);
    }

    #[test]
    fn diff_between_snapshots() {
        let rs = paper_running_example();
        let mut tracker = ProportionalSparseTracker::new(3);
        tracker.process_all(&rs[..3]);
        let early = ProvenanceSnapshot::capture(&tracker, 4.0);
        tracker.process_all(&rs[3..]);
        let late = ProvenanceSnapshot::capture(&tracker, 8.0);
        let diff = late.diff_from(&early);
        assert_eq!(diff.interactions, 3);
        assert_eq!(diff.per_vertex_delta.len(), 3);
        // Between t=4 and t=8, v2 accumulates from 0 to 4 units.
        assert!(qty_approx_eq(diff.per_vertex_delta[2], 4.0));
        let accumulating = diff.accumulating_vertices();
        assert!(accumulating.contains(&v(0)));
        assert!(accumulating.contains(&v(2)));
        let (fastest, delta) = diff.fastest_accumulator().unwrap();
        assert_eq!(fastest, v(2));
        assert!(qty_approx_eq(delta, 4.0));
        // A no-op diff has no accumulators.
        let none = early.diff_from(&early);
        assert!(none.accumulating_vertices().is_empty());
        assert!(none.fastest_accumulator().is_none());
    }

    #[test]
    fn checkpointing_every_two_interactions() {
        let tracker = build_tracker(&PolicyConfig::Plain(SelectionPolicy::Fifo), 3).unwrap();
        let mut checkpointed = CheckpointedProvenance::new(tracker, 2).unwrap();
        checkpointed.process_all(&paper_running_example());
        assert_eq!(checkpointed.checkpoints().len(), 3);
        assert_eq!(checkpointed.interval(), 2);
        // Times of the 2nd, 4th and 6th interactions.
        let times: Vec<f64> = checkpointed.checkpoints().iter().map(|s| s.time).collect();
        assert_eq!(times, vec![3.0, 5.0, 8.0]);
        // snapshot_at picks the latest checkpoint at or before t.
        assert_eq!(checkpointed.snapshot_at(4.9).unwrap().time, 3.0);
        assert_eq!(checkpointed.snapshot_at(100.0).unwrap().time, 8.0);
        assert!(checkpointed.snapshot_at(0.5).is_none());
        // History of one vertex across checkpoints.
        let history = checkpointed.history_of(v(0));
        assert_eq!(history.len(), 3);
        assert!(qty_approx_eq(history[0].1, 5.0));
        // Wrapper still behaves like the underlying tracker.
        assert!(checkpointed.check_all_invariants());
        assert_eq!(checkpointed.interactions_processed(), 6);
        assert!(checkpointed.footprint().index_bytes > 0);
        assert_eq!(checkpointed.name(), "Checkpointed");
        assert!(format!("{checkpointed:?}").contains("Checkpointed"));
    }

    #[test]
    fn bounded_checkpoint_history() {
        let tracker = build_tracker(&PolicyConfig::Plain(SelectionPolicy::Fifo), 3).unwrap();
        let mut checkpointed = CheckpointedProvenance::new(tracker, 1)
            .unwrap()
            .with_max_checkpoints(2);
        checkpointed.process_all(&paper_running_example());
        assert_eq!(checkpointed.checkpoints().len(), 2);
        // Only the two most recent remain.
        assert_eq!(checkpointed.checkpoints()[0].time, 7.0);
        assert_eq!(checkpointed.checkpoints()[1].time, 8.0);
    }

    #[test]
    fn zero_interval_is_rejected() {
        let tracker = build_tracker(&PolicyConfig::Plain(SelectionPolicy::Fifo), 3).unwrap();
        assert!(CheckpointedProvenance::new(tracker, 0).is_err());
    }

    #[test]
    fn manual_checkpoint() {
        let tracker = build_tracker(&PolicyConfig::Plain(SelectionPolicy::Lifo), 3).unwrap();
        let mut checkpointed = CheckpointedProvenance::new(tracker, 1000).unwrap();
        checkpointed.process_all(&paper_running_example());
        assert!(checkpointed.checkpoints().is_empty());
        let snap = checkpointed.checkpoint_now().clone();
        assert_eq!(snap.interactions_processed, 6);
        assert_eq!(checkpointed.checkpoints().len(), 1);
        assert_eq!(checkpointed.tracker().name(), "LIFO");
    }
}
