//! Sparse provenance vectors: ordered `(origin, quantity)` lists
//! (Section 4.3, "Sparse vector representations").
//!
//! In sparse graphs each vertex receives quantities from a small subset of
//! origins, so instead of a `|V|`-length dense vector the paper stores an
//! ordered list of `(u, q)` pairs with `q > 0`. Vector-wise operations become
//! ordered-list merges. The windowing and budget techniques of Section 5.3
//! operate on this representation, so the entry key is an [`Origin`] (which
//! can also be the artificial vertex α or the "untracked" bucket).
//!
//! ## Layout: packed keys, split arrays
//!
//! Internally the list is stored structure-of-arrays: a `Vec<u32>` of packed
//! origin keys and a parallel `Vec<f64>` of quantities. The key encoding is
//! order-preserving (vertices, then groups, then the untracked bucket, then
//! α — exactly the [`Origin`] `Ord`), so ordered-list merges compare plain
//! `u32`s, and the compare-dominated merge phases stream a 4-byte key array
//! (16 keys per cache line) instead of 16-byte `(Origin, f64)` tuples. The
//! encoding caps concrete vertex ids at `2³² − 2¹⁶` and group ids at
//! `2¹⁶ − 2` — far beyond the paper's largest dataset (12M vertices).
//!
//! ## Zero-allocation kernels
//!
//! List merges are the hottest operation in the whole system: proportional
//! tracking performs one merge per interaction, and on Bitcoin-shaped
//! streams the lists grow to thousands of entries (Figure 6). The kernels
//! here therefore never allocate a per-interaction buffer:
//!
//! * [`SparseProvenance::merge_add`] / [`merge_add_scaled`] merge *in
//!   place* on the destination: source origins that already exist are a
//!   pure `+=` on the matched prefix, small tails are inserted directly,
//!   and only a large unmatched remainder goes through a reusable
//!   thread-local buffer (the former implementation rebuilt a
//!   freshly-allocated list on every interaction);
//! * tiny sources (≤ 4 entries, e.g. newborn singletons) skip the merge
//!   entirely and binary-search-insert instead;
//! * [`SparseProvenance::take_all_from`] (the full-relay case of
//!   Algorithm 3) is an O(1) pointer swap when the destination is empty;
//! * [`SparseProvenance::transfer_from`] performs the proportional split
//!   (destination gains `f·src`, source keeps `(1−f)·src`) with the source
//!   rewritten in place during the same merge passes;
//! * [`SparseProvenance::shrink_keep_largest_with`] selects the surviving
//!   entries with `select_nth_unstable_by` and a boolean [`MergeScratch`]
//!   mask — O(ℓ) instead of the former full sort + `BTreeSet` build.
//!
//! The allocation-free behaviour is locked in by the counting-allocator
//! regression test in `tests/alloc_counting.rs`.
//!
//! ## Mass conservation
//!
//! Scaling an entry below the library epsilon used to *drop* it, leaking
//! quantity out of the Definition 2 invariant. All kernels now fold the
//! dropped mass into the artificial-vertex entry `(α, ·)` instead, so
//! `total()` is preserved exactly under arbitrary merge/scale cycles (the
//! α entry is also where windowing and budget shrinking park forgotten
//! provenance, Section 5.3).
//!
//! [`merge_add_scaled`]: SparseProvenance::merge_add_scaled

use serde::{Deserialize, Serialize};

use crate::ids::{GroupId, Origin, VertexId};
use crate::memory::{vec_bytes, MemoryFootprint};
use crate::origins::OriginSet;
use crate::quantity::{qty_is_zero, qty_sum, Quantity};

/// Reusable scratch space for the shrink kernel (selection order and keep
/// mask). One instance per tracker is enough; the buffers warm up to the
/// largest list ever shrunk and are then reused allocation-free.
#[derive(Clone, Debug, Default)]
pub struct MergeScratch {
    /// Index permutation used by the shrink selection.
    order: Vec<usize>,
    /// Boolean keep-mask used by the shrink compaction.
    mask: Vec<bool>,
}

impl MergeScratch {
    /// Create an empty scratch (no capacity reserved yet).
    pub fn new() -> Self {
        MergeScratch::default()
    }

    /// Heap bytes currently reserved by the scratch buffers.
    pub fn footprint_bytes(&self) -> usize {
        vec_bytes(&self.order) + vec_bytes(&self.mask)
    }
}

/// Packed, order-preserving encoding of an [`Origin`] (see the module docs).
type Key = u32;

/// First key of the group range; vertex ids must stay below this.
const GROUP_BASE: Key = 0xFFFF_0000;
/// Key of [`Origin::Untracked`].
const UNTRACKED_KEY: Key = 0xFFFF_FFFE;
/// Key of [`Origin::Unknown`] (α) — the greatest key, so α always sits at
/// the end of the list and O(1) fold/append operations can target it.
const UNKNOWN_KEY: Key = 0xFFFF_FFFF;

#[inline]
fn encode(origin: Origin) -> Key {
    match origin {
        Origin::Vertex(v) => {
            assert!(
                v.0 < GROUP_BASE,
                "vertex id {} exceeds the packed-key limit {}",
                v.0,
                GROUP_BASE - 1
            );
            v.0
        }
        Origin::Group(g) => {
            assert!(
                g.0 < UNTRACKED_KEY - GROUP_BASE,
                "group id {} exceeds the packed-key limit {}",
                g.0,
                UNTRACKED_KEY - GROUP_BASE - 1
            );
            GROUP_BASE + g.0
        }
        Origin::Untracked => UNTRACKED_KEY,
        Origin::Unknown => UNKNOWN_KEY,
    }
}

#[inline]
fn decode(key: Key) -> Origin {
    if key < GROUP_BASE {
        Origin::Vertex(VertexId(key))
    } else if key == UNKNOWN_KEY {
        Origin::Unknown
    } else if key == UNTRACKED_KEY {
        Origin::Untracked
    } else {
        Origin::Group(GroupId(key - GROUP_BASE))
    }
}

/// A sparse provenance vector: entries sorted by origin, all quantities > 0.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseProvenance {
    /// Packed origin keys, strictly increasing.
    keys: Vec<Key>,
    /// Quantities, parallel to `keys`.
    vals: Vec<Quantity>,
}

/// Source lists at most this long merge via per-entry binary-search adds
/// instead of a full two-list merge, provided the destination is
/// substantially longer (see [`small_source_case`]) — O(ℓ_src · log ℓ_dst)
/// beats scanning a long destination for the newborn/singleton sources that
/// dominate many streams.
const SMALL_MERGE: usize = 4;

/// True when a merge should take the per-entry binary-search route: a tiny
/// source against a much larger destination. For comparably-sized small
/// lists the staged linear merge is faster than binary searching.
#[inline]
fn small_source_case(dst_len: usize, src_len: usize) -> bool {
    src_len <= SMALL_MERGE && dst_len >= 8 * src_len
}

/// Remainders at most this long are merged by per-entry insertion (the
/// `memmove` of a ≤ 64-entry tail is cheaper than a scratch round-trip).
const SMALL_TAIL: usize = 64;

/// Thread-local merge buffers (keys and values) for large-remainder merges.
#[derive(Default)]
struct MergeBuf {
    keys: Vec<Key>,
    vals: Vec<Quantity>,
}

thread_local! {
    /// Reused across every merge on the thread, so the steady state
    /// allocates nothing; results are spliced back into the destination
    /// (never swapped wholesale without a capacity check), so each vector's
    /// capacity stays proportional to its own list.
    static MERGE_BUF: std::cell::RefCell<MergeBuf> =
        // tin-lint: allow(hot-path-alloc): const-initialized empty Vec::new never allocates
        const { std::cell::RefCell::new(MergeBuf { keys: Vec::new(), vals: Vec::new() }) };
}

/// Install a merged tail: replace `dst[i..]` by the buffer contents. When
/// the whole list went through the buffer (`i == 0`) and the buffer is not
/// grossly over-sized, swap the allocations instead of copying — the old
/// destination buffers become the next merge buffers. The capacity guard is
/// what keeps vector capacities proportional to their own lists instead of
/// inheriting the largest buffer the thread ever merged.
#[inline]
fn commit_tail(
    dst_keys: &mut Vec<Key>,
    dst_vals: &mut Vec<Quantity>,
    i: usize,
    buf: &mut MergeBuf,
) {
    if i == 0 && buf.keys.capacity() <= 2 * buf.keys.len() {
        std::mem::swap(dst_keys, &mut buf.keys);
        std::mem::swap(dst_vals, &mut buf.vals);
    } else {
        dst_keys.truncate(i);
        dst_keys.extend_from_slice(&buf.keys);
        dst_vals.truncate(i);
        dst_vals.extend_from_slice(&buf.vals);
    }
}

/// Core of the zero-allocation merge kernels: `dst ⊕= factor·src`, returning
/// the scaled mass that fell below the epsilon (for the caller to fold into
/// α).
///
/// The loop is staged to match what real streams look like (on the
/// Bitcoin-shaped benchmark workload ~82% of source origins already exist in
/// the destination):
///
/// 1. **Matched prefix, in place.** While source origins are present in the
///    destination, the merge is a pure `+=` on the existing entries — no
///    list rebuild, no writes outside the matched slots, and only the 4-byte
///    key arrays are streamed for the compares. A source that is a subset of
///    the destination never leaves this phase.
/// 2. **Small remainder, insertion.** A tail of ≤ [`SMALL_TAIL`] combined
///    entries is inserted entry-by-entry (`Vec::insert` memmoves a tiny
///    tail).
/// 3. **Large remainder, scratch splice.** The rest of both lists is merged
///    into the thread-local [`MergeBuf`] and spliced over the destination's
///    tail (see [`commit_tail`]).
fn merge_scaled_core(
    dst_keys: &mut Vec<Key>,
    dst_vals: &mut Vec<Quantity>,
    src_keys: &[Key],
    src_vals: &[Quantity],
    factor: f64,
) -> Quantity {
    let k = src_keys.len();
    let mut i = 0;
    let mut j = 0;
    // Phase 1: matched prefix, in place.
    while i < dst_keys.len() && j < k {
        let dk = dst_keys[i];
        let sk = src_keys[j];
        if dk < sk {
            i += 1;
        } else if dk == sk {
            dst_vals[i] += factor * src_vals[j];
            i += 1;
            j += 1;
        } else {
            break;
        }
    }
    if j == k {
        return 0.0;
    }
    let mut dropped = 0.0;
    // Phase 2: small remainder, per-entry insertion.
    if (dst_keys.len() - i) + (k - j) <= SMALL_TAIL {
        while j < k {
            let sk = src_keys[j];
            while i < dst_keys.len() && dst_keys[i] < sk {
                i += 1;
            }
            if i < dst_keys.len() && dst_keys[i] == sk {
                dst_vals[i] += factor * src_vals[j];
            } else {
                let q = factor * src_vals[j];
                if qty_is_zero(q) {
                    dropped += q;
                } else {
                    dst_keys.insert(i, sk);
                    dst_vals.insert(i, q);
                }
            }
            j += 1;
        }
        return dropped;
    }
    // Phase 3: large remainder through the thread-local buffers.
    MERGE_BUF.with(|cell| {
        let mut buf = cell.borrow_mut();
        let buf = &mut *buf;
        buf.keys.clear();
        buf.vals.clear();
        let upper = (dst_keys.len() - i) + (k - j);
        buf.keys.reserve(upper);
        buf.vals.reserve(upper);
        let mut a = i;
        while a < dst_keys.len() && j < k {
            let dk = dst_keys[a];
            let sk = src_keys[j];
            if dk < sk {
                buf.keys.push(dk);
                buf.vals.push(dst_vals[a]);
                a += 1;
            } else if dk == sk {
                buf.keys.push(dk);
                buf.vals.push(dst_vals[a] + factor * src_vals[j]);
                a += 1;
                j += 1;
            } else {
                let q = factor * src_vals[j];
                if qty_is_zero(q) {
                    dropped += q;
                } else {
                    buf.keys.push(sk);
                    buf.vals.push(q);
                }
                j += 1;
            }
        }
        buf.keys.extend_from_slice(&dst_keys[a..]);
        buf.vals.extend_from_slice(&dst_vals[a..]);
        while j < k {
            let q = factor * src_vals[j];
            if qty_is_zero(q) {
                dropped += q;
            } else {
                buf.keys.push(src_keys[j]);
                buf.vals.push(q);
            }
            j += 1;
        }
        commit_tail(dst_keys, dst_vals, i, buf);
    });
    dropped
}

/// Fused proportional split `dst ⊕= factor·src; src = (1−factor)·src`:
/// the same staged merge as [`merge_scaled_core`], but the source is
/// rewritten in place during the merge passes instead of being re-scanned
/// by a separate `scale` pass. Returns `(dst_dropped, src_dropped)` epsilon
/// losses for the caller to fold into the respective α entries.
fn transfer_core(
    dst_keys: &mut Vec<Key>,
    dst_vals: &mut Vec<Quantity>,
    src_keys: &mut Vec<Key>,
    src_vals: &mut Vec<Quantity>,
    factor: f64,
) -> (Quantity, Quantity) {
    let keep = 1.0 - factor;
    let k = src_keys.len();
    let mut i = 0;
    let mut j = 0;
    let mut w = 0;
    let mut dst_dropped = 0.0;
    let mut src_dropped = 0.0;
    // Phase 1: matched prefix, in place on both lists.
    while i < dst_keys.len() && j < k {
        let dk = dst_keys[i];
        let sk = src_keys[j];
        if dk < sk {
            i += 1;
        } else if dk == sk {
            let bq = src_vals[j];
            dst_vals[i] += factor * bq;
            let sq = keep * bq;
            if qty_is_zero(sq) {
                src_dropped += sq;
            } else {
                src_keys[w] = sk;
                src_vals[w] = sq;
                w += 1;
            }
            i += 1;
            j += 1;
        } else {
            break;
        }
    }
    if j == k {
        src_keys.truncate(w);
        src_vals.truncate(w);
        return (dst_dropped, src_dropped);
    }
    // Phase 2: small remainder, per-entry insertion.
    if (dst_keys.len() - i) + (k - j) <= SMALL_TAIL {
        while j < k {
            let sk = src_keys[j];
            let bq = src_vals[j];
            while i < dst_keys.len() && dst_keys[i] < sk {
                i += 1;
            }
            let dq = factor * bq;
            if i < dst_keys.len() && dst_keys[i] == sk {
                dst_vals[i] += dq;
                i += 1;
            } else if qty_is_zero(dq) {
                dst_dropped += dq;
            } else {
                dst_keys.insert(i, sk);
                dst_vals.insert(i, dq);
                i += 1;
            }
            let sq = keep * bq;
            if qty_is_zero(sq) {
                src_dropped += sq;
            } else {
                src_keys[w] = sk;
                src_vals[w] = sq;
                w += 1;
            }
            j += 1;
        }
        src_keys.truncate(w);
        src_vals.truncate(w);
        return (dst_dropped, src_dropped);
    }
    // Phase 3: large remainder through the thread-local buffers.
    MERGE_BUF.with(|cell| {
        let mut buf = cell.borrow_mut();
        let buf = &mut *buf;
        buf.keys.clear();
        buf.vals.clear();
        let upper = (dst_keys.len() - i) + (k - j);
        buf.keys.reserve(upper);
        buf.vals.reserve(upper);
        let mut a = i;
        while a < dst_keys.len() && j < k {
            let dk = dst_keys[a];
            let sk = src_keys[j];
            if dk < sk {
                buf.keys.push(dk);
                buf.vals.push(dst_vals[a]);
                a += 1;
            } else if dk == sk {
                let bq = src_vals[j];
                buf.keys.push(dk);
                buf.vals.push(dst_vals[a] + factor * bq);
                let sq = keep * bq;
                if qty_is_zero(sq) {
                    src_dropped += sq;
                } else {
                    src_keys[w] = sk;
                    src_vals[w] = sq;
                    w += 1;
                }
                a += 1;
                j += 1;
            } else {
                let bq = src_vals[j];
                let dq = factor * bq;
                if qty_is_zero(dq) {
                    dst_dropped += dq;
                } else {
                    buf.keys.push(sk);
                    buf.vals.push(dq);
                }
                let sq = keep * bq;
                if qty_is_zero(sq) {
                    src_dropped += sq;
                } else {
                    src_keys[w] = sk;
                    src_vals[w] = sq;
                    w += 1;
                }
                j += 1;
            }
        }
        buf.keys.extend_from_slice(&dst_keys[a..]);
        buf.vals.extend_from_slice(&dst_vals[a..]);
        while j < k {
            let sk = src_keys[j];
            let bq = src_vals[j];
            let dq = factor * bq;
            if qty_is_zero(dq) {
                dst_dropped += dq;
            } else {
                buf.keys.push(sk);
                buf.vals.push(dq);
            }
            let sq = keep * bq;
            if qty_is_zero(sq) {
                src_dropped += sq;
            } else {
                src_keys[w] = sk;
                src_vals[w] = sq;
                w += 1;
            }
            j += 1;
        }
        commit_tail(dst_keys, dst_vals, i, buf);
    });
    src_keys.truncate(w);
    src_vals.truncate(w);
    (dst_dropped, src_dropped)
}

impl SparseProvenance {
    /// Create an empty sparse vector.
    pub fn new() -> Self {
        SparseProvenance {
            keys: Vec::new(), // tin-lint: allow(hot-path-alloc): empty Vec::new never allocates
            vals: Vec::new(),
        }
    }

    /// Create a vector holding a single entry, if the quantity is non-zero.
    pub fn singleton(origin: Origin, qty: Quantity) -> Self {
        let mut v = Self::new();
        v.add(origin, qty);
        v
    }

    /// Number of stored entries (the list length ℓ of the paper's complexity
    /// analysis).
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the vector holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total represented quantity.
    pub fn total(&self) -> Quantity {
        qty_sum(self.vals.iter().copied())
    }

    /// Quantity attributed to `origin` (0 if absent).
    pub fn get(&self, origin: Origin) -> Quantity {
        match self.keys.binary_search(&encode(origin)) {
            Ok(i) => self.vals[i],
            Err(_) => 0.0,
        }
    }

    /// Quantity attributed to a concrete origin vertex.
    pub fn get_vertex(&self, v: VertexId) -> Quantity {
        self.get(Origin::Vertex(v))
    }

    /// Add `qty` to the entry for `origin`, inserting it if missing.
    pub fn add(&mut self, origin: Origin, qty: Quantity) {
        if qty_is_zero(qty) {
            return;
        }
        let key = encode(origin);
        match self.keys.binary_search(&key) {
            Ok(i) => self.vals[i] += qty,
            Err(i) => {
                self.keys.insert(i, key);
                self.vals.insert(i, qty);
            }
        }
    }

    /// Add `qty` to the entry for a concrete vertex origin.
    pub fn add_vertex(&mut self, v: VertexId, qty: Quantity) {
        self.add(Origin::Vertex(v), qty);
    }

    /// Batched [`add`](Self::add): insert many `(origin, quantity)` pairs in
    /// one pass. The pairs may arrive in any order and may repeat origins;
    /// cost is O((ℓ + k)·log(ℓ + k)) worst case and O(k) when the batch is
    /// already sorted and strictly after the existing entries (the bulk-load
    /// case).
    pub fn add_many<I>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = (Origin, Quantity)>,
    {
        let old_len = self.keys.len();
        for (o, q) in pairs {
            if !qty_is_zero(q) {
                self.keys.push(encode(o));
                self.vals.push(q);
            }
        }
        if self.keys.len() == old_len {
            return;
        }
        // Fast path: the appended tail keeps the whole list strictly sorted.
        let mut sorted = true;
        for i in old_len.max(1)..self.keys.len() {
            if self.keys[i - 1] >= self.keys[i] {
                sorted = false;
                break;
            }
        }
        if sorted {
            return;
        }
        // Cold path: joint sort + coalesce.
        let mut pairs: Vec<(Key, Quantity)> = self
            .keys
            .iter()
            .copied()
            .zip(self.vals.iter().copied())
            .collect(); // tin-lint: allow(hot-path-alloc): unsorted-input repair path, hit once per out-of-order load, never in the steady state
        pairs.sort_unstable_by_key(|&(k, _)| k);
        self.keys.clear();
        self.vals.clear();
        for (k, q) in pairs {
            if self.keys.last() == Some(&k) {
                *self.vals.last_mut().expect("parallel arrays") += q;
            } else {
                self.keys.push(k);
                self.vals.push(q);
            }
        }
    }

    /// Fold a quantity that was dropped by an epsilon cut-off into the
    /// artificial-vertex entry `(α, ·)`, preserving `total()`. α has the
    /// greatest key, so it lives at the end of the list and the fold is
    /// O(1).
    #[inline]
    pub(crate) fn fold_into_unknown(&mut self, dropped: Quantity) {
        if dropped <= 0.0 {
            return;
        }
        if self.keys.last() == Some(&UNKNOWN_KEY) {
            *self.vals.last_mut().expect("parallel arrays") += dropped;
        } else {
            self.keys.push(UNKNOWN_KEY);
            self.vals.push(dropped);
        }
    }

    /// `self ⊕ other`: merge-add another sparse vector. Allocation-free
    /// except for the destination's own amortised capacity growth.
    pub fn merge_add(&mut self, other: &SparseProvenance) {
        if other.keys.is_empty() {
            return;
        }
        // Fast paths: empty destination, strictly-appending merge, or a
        // tiny source against a long destination.
        if self.keys.is_empty() || other.keys[0] > self.keys[self.keys.len() - 1] {
            self.keys.extend_from_slice(&other.keys);
            self.vals.extend_from_slice(&other.vals);
            return;
        }
        if small_source_case(self.keys.len(), other.keys.len()) {
            for (&k, &q) in other.keys.iter().zip(&other.vals) {
                match self.keys.binary_search(&k) {
                    Ok(i) => self.vals[i] += q,
                    Err(i) => {
                        self.keys.insert(i, k);
                        self.vals.insert(i, q);
                    }
                }
            }
            return;
        }
        // General case: staged in-place merge.
        let dropped = merge_scaled_core(
            &mut self.keys,
            &mut self.vals,
            &other.keys,
            &other.vals,
            1.0,
        );
        self.fold_into_unknown(dropped);
    }

    /// `self ⊕ factor·other`: merge-add a scaled sparse vector (proportional
    /// transfer into the destination, Algorithm 3 line 9 on lists).
    ///
    /// Scaled contributions that fall below the library epsilon are folded
    /// into the destination's `(α, ·)` entry instead of being dropped, so the
    /// destination gains exactly `factor · other.total()`. Allocation-free
    /// except for the destination's own amortised capacity growth.
    pub fn merge_add_scaled(&mut self, other: &SparseProvenance, factor: f64) {
        // Guard on *exactly* non-positive factors only: an epsilon test on
        // the dimensionless factor would silently skip a transfer of up to
        // ε·total() mass (huge for large totals). Tiny factors flow through
        // the kernel, where per-entry drops fold into α and conserve mass.
        if other.keys.is_empty() || factor <= 0.0 {
            return;
        }
        let mut dropped = 0.0;
        if self.keys.is_empty() || other.keys[0] > self.keys[self.keys.len() - 1] {
            for (&k, &bq) in other.keys.iter().zip(&other.vals) {
                let q = factor * bq;
                if qty_is_zero(q) {
                    dropped += q;
                } else {
                    self.keys.push(k);
                    self.vals.push(q);
                }
            }
            self.fold_into_unknown(dropped);
            return;
        }
        if small_source_case(self.keys.len(), other.keys.len()) {
            for (&k, &bq) in other.keys.iter().zip(&other.vals) {
                let q = factor * bq;
                if qty_is_zero(q) {
                    dropped += q;
                } else {
                    match self.keys.binary_search(&k) {
                        Ok(i) => self.vals[i] += q,
                        Err(i) => {
                            self.keys.insert(i, k);
                            self.vals.insert(i, q);
                        }
                    }
                }
            }
            self.fold_into_unknown(dropped);
            return;
        }
        dropped += merge_scaled_core(
            &mut self.keys,
            &mut self.vals,
            &other.keys,
            &other.vals,
            factor,
        );
        self.fold_into_unknown(dropped);
    }

    /// Full relay (Algorithm 3 lines 5–7 on lists): `self ⊕= src; src = 0`.
    ///
    /// When the destination is empty this is an O(1) buffer swap — the
    /// dominant case on chain-shaped streams where quantities hop from vertex
    /// to vertex. Otherwise it is one staged in-place merge; either way the
    /// source keeps its capacity for reuse.
    pub fn take_all_from(&mut self, src: &mut SparseProvenance) {
        if src.keys.is_empty() {
            return;
        }
        if self.keys.is_empty() {
            std::mem::swap(&mut self.keys, &mut src.keys);
            std::mem::swap(&mut self.vals, &mut src.vals);
            return;
        }
        self.merge_add(src);
        src.keys.clear();
        src.vals.clear();
    }

    /// Proportional split (Algorithm 3 lines 8–10 on lists): the destination
    /// gains `factor · src` and the source keeps the complementary
    /// `(1 − factor) · src`, with all epsilon-dropped mass folded into the
    /// respective α entries so the pair conserves quantity exactly.
    pub fn transfer_from(&mut self, src: &mut SparseProvenance, factor: f64) {
        debug_assert!(
            (0.0..=1.0 + 1e-12).contains(&factor),
            "transfer fraction must be in [0,1], got {factor}"
        );
        if src.keys.is_empty() || factor <= 0.0 {
            return;
        }
        if small_source_case(self.keys.len(), src.keys.len()) {
            self.merge_add_scaled(src, factor);
            src.scale(1.0 - factor);
            return;
        }
        let (dst_dropped, src_dropped) = transfer_core(
            &mut self.keys,
            &mut self.vals,
            &mut src.keys,
            &mut src.vals,
            factor,
        );
        self.fold_into_unknown(dst_dropped);
        src.fold_into_unknown(src_dropped);
    }

    /// Multiply every entry by `factor` (Algorithm 3 line 10 on lists: the
    /// source keeps `1 - r.q/|B|` of each component). Entries that fall below
    /// the library epsilon are removed from the list and their mass is folded
    /// into the `(α, ·)` entry, so `total()` scales by exactly `factor`.
    ///
    /// `scale(0.0)` is an explicit reset and clears the vector entirely.
    pub fn scale(&mut self, factor: f64) {
        // `scale(0.0)` (exactly) is the documented explicit reset. Any other
        // factor — however tiny — runs the folding loop below, so the scaled
        // mass lands in α instead of vanishing (an epsilon test here would
        // leak up to ε·total()·len() of mass on large-quantity streams).
        if factor == 0.0 {
            self.keys.clear();
            self.vals.clear();
            return;
        }
        let mut dropped = 0.0;
        let mut w = 0;
        for i in 0..self.keys.len() {
            let nq = self.vals[i] * factor;
            if qty_is_zero(nq) {
                dropped += nq;
            } else {
                self.keys[w] = self.keys[i];
                self.vals[w] = nq;
                w += 1;
            }
        }
        self.keys.truncate(w);
        self.vals.truncate(w);
        self.fold_into_unknown(dropped);
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.vals.clear();
    }

    /// Replace the whole vector by a single `(α, total)` entry — the reset
    /// operation of the windowing approach (Section 5.3.1).
    pub fn reset_to_unknown(&mut self, total: Quantity) {
        self.keys.clear();
        self.vals.clear();
        if !qty_is_zero(total) {
            self.keys.push(UNKNOWN_KEY);
            self.vals.push(total);
        }
    }

    /// Keep the `keep` entries with the largest quantities; every removed
    /// entry's quantity is folded into the artificial-vertex entry `(α, Q)`.
    /// Returns the folded quantity `Q`.
    ///
    /// Allocating convenience wrapper around
    /// [`shrink_keep_largest_with`](Self::shrink_keep_largest_with).
    pub fn shrink_keep_largest(&mut self, keep: usize) -> Quantity {
        self.shrink_keep_largest_with(keep, &mut MergeScratch::new())
    }

    /// Keep the `keep` largest entries using caller-owned scratch space.
    ///
    /// This is the shrink operation of budget-based provenance
    /// (Section 5.3.2) under the "keep the entries with the largest
    /// quantities" criterion. The survivors are chosen with
    /// `select_nth_unstable_by` and compacted through a boolean scratch
    /// mask: O(ℓ) instead of the former O(ℓ log ℓ) sort + `BTreeSet`.
    /// α is never evicted (evicting it and re-adding it would be a no-op
    /// churn).
    pub fn shrink_keep_largest_with(
        &mut self,
        keep: usize,
        scratch: &mut MergeScratch,
    ) -> Quantity {
        let n = self.keys.len();
        if n <= keep {
            return 0.0;
        }
        if keep == 0 {
            let removed = self.total();
            self.keys.clear();
            self.vals.clear();
            self.fold_into_unknown(removed);
            return removed;
        }
        let keys = &self.keys;
        let vals = &self.vals;
        let order = &mut scratch.order;
        order.clear();
        order.extend(0..n);
        // "Better" entries first: α, then larger quantities, ties by origin.
        let better = |&a: &usize, &b: &usize| {
            (keys[b] == UNKNOWN_KEY)
                .cmp(&(keys[a] == UNKNOWN_KEY))
                .then(vals[b].total_cmp(&vals[a]))
                .then(keys[a].cmp(&keys[b]))
        };
        order.select_nth_unstable_by(keep - 1, better);
        let mask = &mut scratch.mask;
        mask.clear();
        mask.resize(n, false);
        for &i in &order[..keep] {
            mask[i] = true;
        }
        let mut removed = 0.0;
        let mut w = 0;
        for (i, &keep_entry) in mask.iter().enumerate().take(n) {
            if keep_entry {
                self.keys[w] = self.keys[i];
                self.vals[w] = self.vals[i];
                w += 1;
            } else {
                removed += self.vals[i];
            }
        }
        self.keys.truncate(w);
        self.vals.truncate(w);
        self.fold_into_unknown(removed);
        removed
    }

    /// Iterate over `(origin, quantity)` entries in origin order.
    pub fn iter(&self) -> impl Iterator<Item = (Origin, Quantity)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .map(|(&k, &q)| (decode(k), q))
    }

    /// Convert to an [`OriginSet`] query answer.
    pub fn to_origin_set(&self) -> OriginSet {
        OriginSet::from_pairs(self.iter())
    }

    /// Internal consistency check: entries sorted by origin, all positive.
    /// Used by debug assertions and property tests.
    pub fn is_consistent(&self) -> bool {
        self.keys.len() == self.vals.len()
            && self.keys.windows(2).all(|w| w[0] < w[1])
            && self.vals.iter().all(|&q| q > 0.0 || qty_is_zero(q))
    }

    /// Append the checkpoint encoding (packed keys + quantity bit patterns).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use crate::codec::{put_f64, put_u32, put_usize};
        put_usize(out, self.keys.len());
        for &k in &self.keys {
            put_u32(out, k);
        }
        for &q in &self.vals {
            put_f64(out, q);
        }
    }

    /// Decode a vector written by [`Self::encode_into`].
    pub fn decode_from(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<Self> {
        let len = r.usize()?;
        if r.remaining() < len.saturating_mul(12) {
            // tin-lint: allow(hot-path-alloc): corrupt-checkpoint error path, not the streaming kernel
            return Err(r.corrupt(format!("truncated: {len} sparse entries declared")));
        }
        // tin-lint: allow(hot-path-alloc): checkpoint restore path, not the streaming kernel
        let mut keys = Vec::with_capacity(len);
        for _ in 0..len {
            keys.push(r.u32()?);
        }
        // tin-lint: allow(hot-path-alloc): checkpoint restore path, not the streaming kernel
        let mut vals = Vec::with_capacity(len);
        for _ in 0..len {
            vals.push(r.f64()?);
        }
        let v = SparseProvenance { keys, vals };
        if !v.keys.windows(2).all(|w| w[0] < w[1]) {
            return Err(r.corrupt("sparse keys not strictly increasing"));
        }
        Ok(v)
    }
}

impl MemoryFootprint for SparseProvenance {
    fn footprint_bytes(&self) -> usize {
        vec_bytes(&self.keys) + vec_bytes(&self.vals)
    }
}

impl FromIterator<(Origin, Quantity)> for SparseProvenance {
    fn from_iter<T: IntoIterator<Item = (Origin, Quantity)>>(iter: T) -> Self {
        let mut v = SparseProvenance::new();
        v.add_many(iter);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantity::qty_approx_eq;

    fn ov(i: u32) -> Origin {
        Origin::Vertex(VertexId::new(i))
    }

    #[test]
    fn empty_vector() {
        let v = SparseProvenance::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.total(), 0.0);
        assert_eq!(v.get(ov(0)), 0.0);
        assert!(v.is_consistent());
    }

    #[test]
    fn singleton_and_get() {
        let v = SparseProvenance::singleton(ov(3), 2.5);
        assert_eq!(v.len(), 1);
        assert_eq!(v.get(ov(3)), 2.5);
        assert_eq!(v.get_vertex(VertexId::new(3)), 2.5);
        // Zero-quantity singleton is empty.
        assert!(SparseProvenance::singleton(ov(3), 0.0).is_empty());
    }

    #[test]
    fn add_keeps_sorted_order() {
        let mut v = SparseProvenance::new();
        v.add(ov(5), 1.0);
        v.add(ov(1), 2.0);
        v.add(ov(3), 3.0);
        v.add(ov(1), 0.5);
        assert_eq!(v.len(), 3);
        assert!(v.is_consistent());
        assert_eq!(v.get(ov(1)), 2.5);
        let origins: Vec<Origin> = v.iter().map(|(o, _)| o).collect();
        assert_eq!(origins, vec![ov(1), ov(3), ov(5)]);
    }

    #[test]
    fn add_vertex_shorthand() {
        let mut v = SparseProvenance::new();
        v.add_vertex(VertexId::new(2), 4.0);
        assert_eq!(v.get_vertex(VertexId::new(2)), 4.0);
    }

    #[test]
    fn add_many_matches_repeated_add() {
        let batch = vec![
            (ov(9), 1.0),
            (ov(2), 2.0),
            (ov(9), 0.5),
            (ov(4), 0.0), // dropped
            (ov(1), 3.0),
        ];
        let mut bulk: SparseProvenance = SparseProvenance::singleton(ov(2), 1.0);
        bulk.add_many(batch.iter().copied());
        let mut serial = SparseProvenance::singleton(ov(2), 1.0);
        for (o, q) in batch {
            serial.add(o, q);
        }
        assert_eq!(bulk, serial);
        assert!(bulk.is_consistent());
    }

    #[test]
    fn add_many_bulk_load_fast_path() {
        let mut v = SparseProvenance::singleton(ov(1), 1.0);
        v.add_many((2..100u32).map(|i| (ov(i), i as f64)));
        assert_eq!(v.len(), 99);
        assert!(v.is_consistent());
        assert_eq!(v.get(ov(50)), 50.0);
    }

    #[test]
    fn merge_add_unions_origins() {
        let a: SparseProvenance = vec![(ov(1), 1.0), (ov(3), 3.0)].into_iter().collect();
        let b: SparseProvenance = vec![(ov(2), 2.0), (ov(3), 1.0)].into_iter().collect();
        let mut m = a.clone();
        m.merge_add(&b);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(ov(1)), 1.0);
        assert_eq!(m.get(ov(2)), 2.0);
        assert_eq!(m.get(ov(3)), 4.0);
        assert!(m.is_consistent());
        assert!(qty_approx_eq(m.total(), a.total() + b.total()));
    }

    #[test]
    fn merge_add_scaled_applies_factor() {
        let mut a = SparseProvenance::singleton(ov(1), 1.0);
        let b: SparseProvenance = vec![(ov(1), 2.0), (ov(2), 4.0)].into_iter().collect();
        a.merge_add_scaled(&b, 0.5);
        assert!(qty_approx_eq(a.get(ov(1)), 2.0));
        assert!(qty_approx_eq(a.get(ov(2)), 2.0));
    }

    #[test]
    fn merge_with_empty_or_zero_factor_is_noop() {
        let mut a = SparseProvenance::singleton(ov(1), 1.0);
        a.merge_add(&SparseProvenance::new());
        assert_eq!(a.len(), 1);
        let b = SparseProvenance::singleton(ov(2), 5.0);
        a.merge_add_scaled(&b, 0.0);
        assert_eq!(a.len(), 1);
    }

    /// The in-place backward merge must match a straightforward
    /// reference merge built from per-entry adds.
    #[test]
    fn in_place_merge_matches_reference() {
        let a: SparseProvenance = (0..40u32)
            .step_by(2)
            .map(|i| (ov(i), i as f64 + 1.0))
            .collect();
        let b: SparseProvenance = (0..40u32).step_by(3).map(|i| (ov(i), 2.0)).collect();
        for factor in [1.0, 0.37] {
            let mut fast = a.clone();
            fast.merge_add_scaled(&b, factor);
            let mut reference = a.clone();
            for (o, q) in b.iter() {
                reference.add(o, factor * q);
            }
            assert_eq!(fast, reference, "factor {factor}");
            assert!(fast.is_consistent());
        }
        let mut plain = a.clone();
        plain.merge_add(&b);
        let mut reference = a.clone();
        for (o, q) in b.iter() {
            reference.add(o, q);
        }
        assert_eq!(plain, reference);
    }

    #[test]
    fn take_all_from_swaps_into_empty_destination() {
        let mut src: SparseProvenance = vec![(ov(1), 1.0), (ov(2), 2.0)].into_iter().collect();
        let mut dst = SparseProvenance::new();
        dst.take_all_from(&mut src);
        assert!(src.is_empty());
        assert_eq!(dst.len(), 2);
        assert!(qty_approx_eq(dst.total(), 3.0));
        // Non-empty destination: a real merge, source is cleared.
        let mut src2: SparseProvenance = vec![(ov(2), 1.0), (ov(5), 4.0)].into_iter().collect();
        dst.take_all_from(&mut src2);
        assert!(src2.is_empty());
        assert!(qty_approx_eq(dst.total(), 8.0));
        assert!(qty_approx_eq(dst.get(ov(2)), 3.0));
        assert!(dst.is_consistent());
    }

    #[test]
    fn transfer_from_conserves_mass() {
        let mut src: SparseProvenance = (0..50u32).map(|i| (ov(i), (i + 1) as f64)).collect();
        let mut dst: SparseProvenance = vec![(ov(3), 1.0)].into_iter().collect();
        let before = src.total() + dst.total();
        dst.transfer_from(&mut src, 0.37);
        assert!(qty_approx_eq(src.total() + dst.total(), before));
        assert!(src.is_consistent() && dst.is_consistent());
    }

    #[test]
    fn scale_and_clear() {
        let mut v: SparseProvenance = vec![(ov(1), 2.0), (ov(2), 4.0)].into_iter().collect();
        v.scale(0.25);
        assert!(qty_approx_eq(v.get(ov(1)), 0.5));
        assert!(qty_approx_eq(v.get(ov(2)), 1.0));
        v.scale(0.0);
        assert!(v.is_empty());
        let mut v = SparseProvenance::singleton(ov(1), 1.0);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn scale_folds_vanishing_entries_into_alpha() {
        let mut v: SparseProvenance = vec![(ov(1), 1e-5), (ov(2), 10.0)].into_iter().collect();
        let before = v.total();
        v.scale(1e-3);
        // The v1 entry fell below the epsilon and left the list, but its mass
        // moved to α instead of vanishing.
        assert_eq!(v.get(ov(1)), 0.0);
        assert!(v.get(Origin::Unknown) > 0.0);
        assert!((v.total() - before * 1e-3).abs() < 1e-12);
        assert!(v.is_consistent());
    }

    /// Regression test for the PR 2 conservation fix: repeated scale/merge
    /// cycles must preserve the total up to the accumulated float epsilon,
    /// even though individual entries keep dropping below the cut-off.
    #[test]
    fn conservation_under_repeated_scale_merge_cycles() {
        let mut a: SparseProvenance = (0..64u32).map(|i| (ov(i), 1e-4 * (i + 1) as f64)).collect();
        let mut b = SparseProvenance::new();
        let grand_total = a.total();
        for round in 0..200 {
            let factor = 0.01 + 0.9 * ((round % 7) as f64 / 7.0);
            b.transfer_from(&mut a, factor);
            std::mem::swap(&mut a, &mut b);
            assert!(
                (a.total() + b.total() - grand_total).abs() < 1e-9,
                "conservation broke at round {round}: {} vs {}",
                a.total() + b.total(),
                grand_total
            );
        }
        assert!(a.is_consistent() && b.is_consistent());
    }

    #[test]
    fn reset_to_unknown() {
        let mut v: SparseProvenance = vec![(ov(1), 2.0), (ov(2), 3.0)].into_iter().collect();
        v.reset_to_unknown(5.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v.get(Origin::Unknown), 5.0);
        v.reset_to_unknown(0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn shrink_keep_largest_folds_into_alpha() {
        // Paper's Section 5.3.2 example: p_v = {(v,1),(u,3),(w,3),(x,2),(y,4),(z,1)},
        // keep 3 entries with the largest quantities → {(u,3),(w,3),(y,4),(α,4)}.
        let mut v: SparseProvenance = vec![
            (ov(10), 1.0), // "v"
            (ov(11), 3.0), // "u"
            (ov(12), 3.0), // "w"
            (ov(13), 2.0), // "x"
            (ov(14), 4.0), // "y"
            (ov(15), 1.0), // "z"
        ]
        .into_iter()
        .collect();
        let removed = v.shrink_keep_largest(3);
        assert!(qty_approx_eq(removed, 4.0));
        assert_eq!(v.len(), 4); // 3 kept + α
        assert_eq!(v.get(ov(11)), 3.0);
        assert_eq!(v.get(ov(12)), 3.0);
        assert_eq!(v.get(ov(14)), 4.0);
        assert!(qty_approx_eq(v.get(Origin::Unknown), 4.0));
        assert!(qty_approx_eq(v.total(), 14.0));
    }

    #[test]
    fn shrink_noop_when_under_budget() {
        let mut v: SparseProvenance = vec![(ov(1), 1.0), (ov(2), 2.0)].into_iter().collect();
        assert_eq!(v.shrink_keep_largest(5), 0.0);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn shrink_to_zero_keeps_only_alpha() {
        let mut v: SparseProvenance = vec![(ov(1), 1.0), (ov(2), 2.0)].into_iter().collect();
        let removed = v.shrink_keep_largest(0);
        assert!(qty_approx_eq(removed, 3.0));
        assert_eq!(v.len(), 1);
        assert!(qty_approx_eq(v.get(Origin::Unknown), 3.0));
    }

    #[test]
    fn shrink_never_evicts_alpha() {
        let mut v: SparseProvenance = vec![
            (Origin::Unknown, 0.5),
            (ov(1), 10.0),
            (ov(2), 9.0),
            (ov(3), 8.0),
        ]
        .into_iter()
        .collect();
        let removed = v.shrink_keep_largest(2);
        // α is kept despite having the smallest quantity (it occupies one of
        // the two kept slots); the largest vertex keeps the other slot; the
        // remaining vertices fold into α.
        assert!(qty_approx_eq(removed, 17.0));
        assert!(qty_approx_eq(v.get(Origin::Unknown), 17.5));
        assert_eq!(v.get(ov(1)), 10.0);
        assert_eq!(v.get(ov(2)), 0.0);
        assert_eq!(v.get(ov(3)), 0.0);
        assert_eq!(v.len(), 2);
    }

    /// The select-based shrink must pick exactly the same survivor set as a
    /// full sort would, for many sizes and tie patterns.
    #[test]
    fn shrink_matches_sort_based_reference() {
        let mut scratch = MergeScratch::new();
        for n in [1usize, 2, 5, 17, 64, 257] {
            for keep in [1usize, 2, 3, n / 2 + 1, n] {
                let build = || -> SparseProvenance {
                    (0..n as u32)
                        .map(|i| (ov(i), ((i * 7919) % 23 + 1) as f64))
                        .collect()
                };
                let mut fast = build();
                fast.shrink_keep_largest_with(keep, &mut scratch);
                // Reference: sort all entries by the same criterion and keep
                // the first `keep`.
                let reference = build();
                let mut sorted: Vec<(Origin, Quantity)> = reference.iter().collect();
                sorted.sort_by(|a, b| {
                    (b.0 == Origin::Unknown)
                        .cmp(&(a.0 == Origin::Unknown))
                        .then(b.1.total_cmp(&a.1))
                        .then(a.0.cmp(&b.0))
                });
                let mut expect: SparseProvenance = sorted.into_iter().take(keep).collect();
                let removed: f64 = reference.total() - expect.total();
                if !qty_is_zero(removed) {
                    expect.add(Origin::Unknown, removed);
                }
                assert_eq!(fast, expect, "n={n} keep={keep}");
                assert!(fast.is_consistent());
            }
        }
    }

    #[test]
    fn to_origin_set_roundtrip() {
        let v: SparseProvenance = vec![(ov(1), 1.0), (Origin::Unknown, 2.0)]
            .into_iter()
            .collect();
        let set = v.to_origin_set();
        assert_eq!(set.total(), 3.0);
        assert_eq!(set.quantity_from(Origin::Unknown), 2.0);
    }

    #[test]
    fn conservation_under_proportional_split() {
        let mut src: SparseProvenance = (0..50u32).map(|i| (ov(i), (i + 1) as f64)).collect();
        let mut dst = SparseProvenance::new();
        let before = src.total();
        let factor = 0.37;
        dst.merge_add_scaled(&src, factor);
        src.scale(1.0 - factor);
        assert!(qty_approx_eq(src.total() + dst.total(), before));
        assert!(src.is_consistent() && dst.is_consistent());
    }

    #[test]
    fn footprint_grows_with_entries() {
        let small = SparseProvenance::singleton(ov(1), 1.0);
        let big: SparseProvenance = (0..1000u32).map(|i| (ov(i), 1.0)).collect();
        assert!(big.footprint_bytes() > small.footprint_bytes());
        assert!(MergeScratch::new().footprint_bytes() == 0);
    }

    /// The packed key encoding must preserve the `Origin` ordering exactly
    /// and round-trip every representable origin.
    #[test]
    fn packed_keys_preserve_origin_order() {
        use crate::ids::GroupId;
        let origins = [
            Origin::Vertex(VertexId::new(0)),
            Origin::Vertex(VertexId::new(1)),
            Origin::Vertex(VertexId::new(0xFFFE_FFFF)),
            Origin::Group(GroupId::new(0)),
            Origin::Group(GroupId::new(0xFFFD)),
            Origin::Untracked,
            Origin::Unknown,
        ];
        for pair in origins.windows(2) {
            assert!(pair[0] < pair[1], "{:?} vs {:?}", pair[0], pair[1]);
            assert!(
                super::encode(pair[0]) < super::encode(pair[1]),
                "key order broke between {:?} and {:?}",
                pair[0],
                pair[1]
            );
        }
        for o in origins {
            assert_eq!(super::decode(super::encode(o)), o);
        }
    }

    #[test]
    #[should_panic(expected = "packed-key limit")]
    fn oversized_vertex_id_is_rejected() {
        SparseProvenance::singleton(ov(0xFFFF_0000), 1.0);
    }

    /// Regression (PR 2 review): epsilon guards must act on *mass*, never on
    /// the dimensionless factor — a near-1 factor used to clear the source
    /// (losing the kept share) and a near-0 factor used to skip the transfer
    /// entirely (losing the moved share), both unbounded for large totals.
    #[test]
    fn extreme_factors_conserve_large_totals() {
        // Near-full transfer: source must keep (1 - factor) · total as α.
        let mut src = SparseProvenance::singleton(ov(1), 2.0e8);
        let mut dst = SparseProvenance::new();
        let factor = 1.0 - 2.5e-7; // 1 - factor is below the absolute epsilon
        dst.transfer_from(&mut src, factor);
        assert!(
            (src.total() - 50.0).abs() < 1e-4,
            "src kept {}",
            src.total()
        );
        assert!((dst.total() - (2.0e8 - 50.0)).abs() < 1e-4);

        // Near-zero transfer: destination must still gain factor · total.
        let mut src = SparseProvenance::singleton(ov(1), 1.0e9);
        let mut dst = SparseProvenance::new();
        let factor = 5.0e-7; // below the absolute epsilon
        dst.transfer_from(&mut src, factor);
        assert!(
            (dst.total() - 500.0).abs() < 1e-4,
            "dst got {}",
            dst.total()
        );
        assert!((src.total() - (1.0e9 - 500.0)).abs() < 1e-3);

        // Tiny-but-positive scale folds, it does not clear.
        let mut v = SparseProvenance::singleton(ov(1), 1.0e9);
        v.scale(5.0e-7);
        assert!((v.total() - 500.0).abs() < 1e-4);
        // Exactly zero is still the documented reset.
        v.scale(0.0);
        assert!(v.is_empty());
    }
}
