//! Sparse provenance vectors: ordered `(origin, quantity)` lists
//! (Section 4.3, "Sparse vector representations").
//!
//! In sparse graphs each vertex receives quantities from a small subset of
//! origins, so instead of a `|V|`-length dense vector the paper stores an
//! ordered list of `(u, q)` pairs with `q > 0`. Vector-wise operations become
//! ordered-list merges. The windowing and budget techniques of Section 5.3
//! operate on this representation, so the entry key is an [`Origin`] (which
//! can also be the artificial vertex α or the "untracked" bucket).

use serde::{Deserialize, Serialize};

use crate::ids::{Origin, VertexId};
use crate::memory::{vec_bytes, MemoryFootprint};
use crate::origins::OriginSet;
use crate::quantity::{qty_is_zero, qty_sum, Quantity};

/// A sparse provenance vector: entries sorted by origin, all quantities > 0.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseProvenance {
    entries: Vec<(Origin, Quantity)>,
}

impl SparseProvenance {
    /// Create an empty sparse vector.
    pub fn new() -> Self {
        SparseProvenance {
            entries: Vec::new(),
        }
    }

    /// Create a vector holding a single entry, if the quantity is non-zero.
    pub fn singleton(origin: Origin, qty: Quantity) -> Self {
        let mut v = Self::new();
        v.add(origin, qty);
        v
    }

    /// Number of stored entries (the list length ℓ of the paper's complexity
    /// analysis).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the vector holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total represented quantity.
    pub fn total(&self) -> Quantity {
        qty_sum(self.entries.iter().map(|(_, q)| *q))
    }

    /// Quantity attributed to `origin` (0 if absent).
    pub fn get(&self, origin: Origin) -> Quantity {
        match self.entries.binary_search_by(|(o, _)| o.cmp(&origin)) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Quantity attributed to a concrete origin vertex.
    pub fn get_vertex(&self, v: VertexId) -> Quantity {
        self.get(Origin::Vertex(v))
    }

    /// Add `qty` to the entry for `origin`, inserting it if missing.
    pub fn add(&mut self, origin: Origin, qty: Quantity) {
        if qty_is_zero(qty) {
            return;
        }
        match self.entries.binary_search_by(|(o, _)| o.cmp(&origin)) {
            Ok(i) => self.entries[i].1 += qty,
            Err(i) => self.entries.insert(i, (origin, qty)),
        }
    }

    /// Add `qty` to the entry for a concrete vertex origin.
    pub fn add_vertex(&mut self, v: VertexId, qty: Quantity) {
        self.add(Origin::Vertex(v), qty);
    }

    /// `self ⊕ other`: merge-add another sparse vector.
    pub fn merge_add(&mut self, other: &SparseProvenance) {
        self.merge_add_scaled(other, 1.0);
    }

    /// `self ⊕ factor·other`: merge-add a scaled sparse vector (proportional
    /// transfer into the destination, Algorithm 3 line 9 on lists).
    pub fn merge_add_scaled(&mut self, other: &SparseProvenance, factor: f64) {
        if other.entries.is_empty() || qty_is_zero(factor) {
            return;
        }
        // Linear merge of two ordered lists into a fresh list.
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let mut i = 0;
        let mut j = 0;
        while i < self.entries.len() && j < other.entries.len() {
            let (ao, aq) = self.entries[i];
            let (bo, bq) = other.entries[j];
            match ao.cmp(&bo) {
                std::cmp::Ordering::Less => {
                    merged.push((ao, aq));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    let q = factor * bq;
                    if !qty_is_zero(q) {
                        merged.push((bo, q));
                    }
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let q = aq + factor * bq;
                    if !qty_is_zero(q) {
                        merged.push((ao, q));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.entries[i..]);
        for &(bo, bq) in &other.entries[j..] {
            let q = factor * bq;
            if !qty_is_zero(q) {
                merged.push((bo, q));
            }
        }
        self.entries = merged;
    }

    /// Multiply every entry by `factor`, dropping entries that become zero
    /// (Algorithm 3 line 10 on lists: the source keeps `1 - r.q/|B|` of each
    /// component).
    pub fn scale(&mut self, factor: f64) {
        if qty_is_zero(factor) {
            self.entries.clear();
            return;
        }
        for (_, q) in self.entries.iter_mut() {
            *q *= factor;
        }
        self.entries.retain(|(_, q)| !qty_is_zero(*q));
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Replace the whole vector by a single `(α, total)` entry — the reset
    /// operation of the windowing approach (Section 5.3.1).
    pub fn reset_to_unknown(&mut self, total: Quantity) {
        self.entries.clear();
        if !qty_is_zero(total) {
            self.entries.push((Origin::Unknown, total));
        }
    }

    /// Keep the `keep` entries with the largest quantities; every removed
    /// entry's quantity is folded into the artificial-vertex entry `(α, Q)`.
    /// Returns the folded quantity `Q`.
    ///
    /// This is the shrink operation of budget-based provenance
    /// (Section 5.3.2) under the "keep the entries with the largest
    /// quantities" criterion.
    pub fn shrink_keep_largest(&mut self, keep: usize) -> Quantity {
        if self.entries.len() <= keep {
            return 0.0;
        }
        // Sort a copy of indices by descending quantity; α is never evicted
        // (evicting it and re-adding it would be a no-op churn).
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            let (ao, aq) = self.entries[a];
            let (bo, bq) = self.entries[b];
            (bo == Origin::Unknown)
                .cmp(&(ao == Origin::Unknown))
                .then(bq.total_cmp(&aq))
                .then(ao.cmp(&bo))
        });
        let keep_set: std::collections::BTreeSet<usize> = order.into_iter().take(keep).collect();
        let mut removed = 0.0;
        let mut kept = Vec::with_capacity(keep + 1);
        for (i, &(o, q)) in self.entries.iter().enumerate() {
            if keep_set.contains(&i) {
                kept.push((o, q));
            } else {
                removed += q;
            }
        }
        self.entries = kept;
        if !qty_is_zero(removed) {
            self.add(Origin::Unknown, removed);
        }
        removed
    }

    /// Iterate over `(origin, quantity)` entries in origin order.
    pub fn iter(&self) -> impl Iterator<Item = (Origin, Quantity)> + '_ {
        self.entries.iter().copied()
    }

    /// Convert to an [`OriginSet`] query answer.
    pub fn to_origin_set(&self) -> OriginSet {
        OriginSet::from_pairs(self.iter())
    }

    /// Internal consistency check: entries sorted by origin, all positive.
    /// Used by debug assertions and property tests.
    pub fn is_consistent(&self) -> bool {
        self.entries.windows(2).all(|w| w[0].0 < w[1].0)
            && self
                .entries
                .iter()
                .all(|(_, q)| *q > 0.0 || qty_is_zero(*q))
    }
}

impl MemoryFootprint for SparseProvenance {
    fn footprint_bytes(&self) -> usize {
        vec_bytes(&self.entries)
    }
}

impl FromIterator<(Origin, Quantity)> for SparseProvenance {
    fn from_iter<T: IntoIterator<Item = (Origin, Quantity)>>(iter: T) -> Self {
        let mut v = SparseProvenance::new();
        for (o, q) in iter {
            v.add(o, q);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantity::qty_approx_eq;

    fn ov(i: u32) -> Origin {
        Origin::Vertex(VertexId::new(i))
    }

    #[test]
    fn empty_vector() {
        let v = SparseProvenance::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert_eq!(v.total(), 0.0);
        assert_eq!(v.get(ov(0)), 0.0);
        assert!(v.is_consistent());
    }

    #[test]
    fn singleton_and_get() {
        let v = SparseProvenance::singleton(ov(3), 2.5);
        assert_eq!(v.len(), 1);
        assert_eq!(v.get(ov(3)), 2.5);
        assert_eq!(v.get_vertex(VertexId::new(3)), 2.5);
        // Zero-quantity singleton is empty.
        assert!(SparseProvenance::singleton(ov(3), 0.0).is_empty());
    }

    #[test]
    fn add_keeps_sorted_order() {
        let mut v = SparseProvenance::new();
        v.add(ov(5), 1.0);
        v.add(ov(1), 2.0);
        v.add(ov(3), 3.0);
        v.add(ov(1), 0.5);
        assert_eq!(v.len(), 3);
        assert!(v.is_consistent());
        assert_eq!(v.get(ov(1)), 2.5);
        let origins: Vec<Origin> = v.iter().map(|(o, _)| o).collect();
        assert_eq!(origins, vec![ov(1), ov(3), ov(5)]);
    }

    #[test]
    fn add_vertex_shorthand() {
        let mut v = SparseProvenance::new();
        v.add_vertex(VertexId::new(2), 4.0);
        assert_eq!(v.get_vertex(VertexId::new(2)), 4.0);
    }

    #[test]
    fn merge_add_unions_origins() {
        let a: SparseProvenance = vec![(ov(1), 1.0), (ov(3), 3.0)].into_iter().collect();
        let b: SparseProvenance = vec![(ov(2), 2.0), (ov(3), 1.0)].into_iter().collect();
        let mut m = a.clone();
        m.merge_add(&b);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(ov(1)), 1.0);
        assert_eq!(m.get(ov(2)), 2.0);
        assert_eq!(m.get(ov(3)), 4.0);
        assert!(m.is_consistent());
        assert!(qty_approx_eq(m.total(), a.total() + b.total()));
    }

    #[test]
    fn merge_add_scaled_applies_factor() {
        let mut a = SparseProvenance::singleton(ov(1), 1.0);
        let b: SparseProvenance = vec![(ov(1), 2.0), (ov(2), 4.0)].into_iter().collect();
        a.merge_add_scaled(&b, 0.5);
        assert!(qty_approx_eq(a.get(ov(1)), 2.0));
        assert!(qty_approx_eq(a.get(ov(2)), 2.0));
    }

    #[test]
    fn merge_with_empty_or_zero_factor_is_noop() {
        let mut a = SparseProvenance::singleton(ov(1), 1.0);
        a.merge_add(&SparseProvenance::new());
        assert_eq!(a.len(), 1);
        let b = SparseProvenance::singleton(ov(2), 5.0);
        a.merge_add_scaled(&b, 0.0);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn scale_and_clear() {
        let mut v: SparseProvenance = vec![(ov(1), 2.0), (ov(2), 4.0)].into_iter().collect();
        v.scale(0.25);
        assert!(qty_approx_eq(v.get(ov(1)), 0.5));
        assert!(qty_approx_eq(v.get(ov(2)), 1.0));
        v.scale(0.0);
        assert!(v.is_empty());
        let mut v = SparseProvenance::singleton(ov(1), 1.0);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn scale_drops_vanishing_entries() {
        let mut v: SparseProvenance = vec![(ov(1), 1e-5), (ov(2), 10.0)].into_iter().collect();
        v.scale(1e-3);
        assert_eq!(v.len(), 1);
        assert_eq!(v.get(ov(1)), 0.0);
    }

    #[test]
    fn reset_to_unknown() {
        let mut v: SparseProvenance = vec![(ov(1), 2.0), (ov(2), 3.0)].into_iter().collect();
        v.reset_to_unknown(5.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v.get(Origin::Unknown), 5.0);
        v.reset_to_unknown(0.0);
        assert!(v.is_empty());
    }

    #[test]
    fn shrink_keep_largest_folds_into_alpha() {
        // Paper's Section 5.3.2 example: p_v = {(v,1),(u,3),(w,3),(x,2),(y,4),(z,1)},
        // keep 3 entries with the largest quantities → {(u,3),(w,3),(y,4),(α,4)}.
        let mut v: SparseProvenance = vec![
            (ov(10), 1.0), // "v"
            (ov(11), 3.0), // "u"
            (ov(12), 3.0), // "w"
            (ov(13), 2.0), // "x"
            (ov(14), 4.0), // "y"
            (ov(15), 1.0), // "z"
        ]
        .into_iter()
        .collect();
        let removed = v.shrink_keep_largest(3);
        assert!(qty_approx_eq(removed, 4.0));
        assert_eq!(v.len(), 4); // 3 kept + α
        assert_eq!(v.get(ov(11)), 3.0);
        assert_eq!(v.get(ov(12)), 3.0);
        assert_eq!(v.get(ov(14)), 4.0);
        assert!(qty_approx_eq(v.get(Origin::Unknown), 4.0));
        assert!(qty_approx_eq(v.total(), 14.0));
    }

    #[test]
    fn shrink_noop_when_under_budget() {
        let mut v: SparseProvenance = vec![(ov(1), 1.0), (ov(2), 2.0)].into_iter().collect();
        assert_eq!(v.shrink_keep_largest(5), 0.0);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn shrink_never_evicts_alpha() {
        let mut v: SparseProvenance = vec![
            (Origin::Unknown, 0.5),
            (ov(1), 10.0),
            (ov(2), 9.0),
            (ov(3), 8.0),
        ]
        .into_iter()
        .collect();
        let removed = v.shrink_keep_largest(2);
        // α is kept despite having the smallest quantity (it occupies one of
        // the two kept slots); the largest vertex keeps the other slot; the
        // remaining vertices fold into α.
        assert!(qty_approx_eq(removed, 17.0));
        assert!(qty_approx_eq(v.get(Origin::Unknown), 17.5));
        assert_eq!(v.get(ov(1)), 10.0);
        assert_eq!(v.get(ov(2)), 0.0);
        assert_eq!(v.get(ov(3)), 0.0);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn to_origin_set_roundtrip() {
        let v: SparseProvenance = vec![(ov(1), 1.0), (Origin::Unknown, 2.0)]
            .into_iter()
            .collect();
        let set = v.to_origin_set();
        assert_eq!(set.total(), 3.0);
        assert_eq!(set.quantity_from(Origin::Unknown), 2.0);
    }

    #[test]
    fn conservation_under_proportional_split() {
        let mut src: SparseProvenance = (0..50u32).map(|i| (ov(i), (i + 1) as f64)).collect();
        let mut dst = SparseProvenance::new();
        let before = src.total();
        let factor = 0.37;
        dst.merge_add_scaled(&src, factor);
        src.scale(1.0 - factor);
        assert!(qty_approx_eq(src.total() + dst.total(), before));
        assert!(src.is_consistent() && dst.is_consistent());
    }

    #[test]
    fn footprint_grows_with_entries() {
        let small = SparseProvenance::singleton(ov(1), 1.0);
        let big: SparseProvenance = (0..1000u32).map(|i| (ov(i), 1.0)).collect();
        assert!(big.footprint_bytes() > small.footprint_bytes());
    }
}
