//! Provenance query results: the origin sets `O(t, B_v)` of Definition 2.
//!
//! A provenance query at a vertex `v` returns a set of `(origin, quantity)`
//! tuples whose quantities sum to the buffered quantity `|B_v|`. All trackers
//! produce their answers as an [`OriginSet`], regardless of the internal
//! representation (heaps, queues, dense or sparse vectors).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ids::{Origin, VertexId};
use crate::quantity::{qty_approx_eq, qty_is_zero, qty_sum, Quantity};

/// One `(τ.o, τ.q)` tuple of Definition 2: quantity `quantity` buffered at the
/// queried vertex originates from `origin`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OriginShare {
    /// The origin (a vertex, a group, the untracked bucket, or α).
    pub origin: Origin,
    /// The buffered quantity that originates from `origin`.
    pub quantity: Quantity,
}

impl OriginShare {
    /// Construct an origin share.
    pub fn new(origin: impl Into<Origin>, quantity: Quantity) -> Self {
        OriginShare {
            origin: origin.into(),
            quantity,
        }
    }
}

/// The answer to a provenance query `O(t, B_v)`: the decomposition of the
/// buffered quantity of a vertex by origin.
///
/// Origins are aggregated (one entry per distinct origin) and sorted by
/// descending quantity, breaking ties by origin id, so results are
/// deterministic and directly usable for reporting.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OriginSet {
    shares: Vec<OriginShare>,
}

impl OriginSet {
    /// Create an empty origin set (empty buffer).
    pub fn empty() -> Self {
        OriginSet { shares: Vec::new() }
    }

    /// Build an origin set from raw `(origin, quantity)` pairs.
    ///
    /// Pairs with (approximately) zero quantity are dropped, repeated origins
    /// are merged, and the result is sorted by descending quantity.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (Origin, Quantity)>,
    {
        let mut agg: BTreeMap<Origin, Quantity> = BTreeMap::new();
        for (o, q) in pairs {
            if qty_is_zero(q) {
                continue;
            }
            *agg.entry(o).or_insert(0.0) += q;
        }
        let mut shares: Vec<OriginShare> = agg
            .into_iter()
            .filter(|(_, q)| !qty_is_zero(*q))
            .map(|(origin, quantity)| OriginShare { origin, quantity })
            .collect();
        shares.sort_by(|a, b| {
            b.quantity
                .total_cmp(&a.quantity)
                .then_with(|| a.origin.cmp(&b.origin))
        });
        OriginSet { shares }
    }

    /// Build an origin set where every origin is a concrete vertex.
    pub fn from_vertex_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, Quantity)>,
    {
        Self::from_pairs(pairs.into_iter().map(|(v, q)| (Origin::Vertex(v), q)))
    }

    /// The shares, sorted by descending quantity.
    pub fn shares(&self) -> &[OriginShare] {
        &self.shares
    }

    /// Number of distinct origins.
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// True if the buffer is empty (no origins).
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }

    /// Total buffered quantity Σ τ.q — equals `|B_v|` (Definition 2).
    pub fn total(&self) -> Quantity {
        qty_sum(self.shares.iter().map(|s| s.quantity))
    }

    /// Quantity originating from a specific origin (0 if absent).
    pub fn quantity_from(&self, origin: Origin) -> Quantity {
        self.shares
            .iter()
            .filter(|s| s.origin == origin)
            .map(|s| s.quantity)
            .sum()
    }

    /// Quantity originating from a specific vertex (0 if absent).
    pub fn quantity_from_vertex(&self, v: VertexId) -> Quantity {
        self.quantity_from(Origin::Vertex(v))
    }

    /// The `k` largest shares.
    pub fn top_k(&self, k: usize) -> &[OriginShare] {
        &self.shares[..k.min(self.shares.len())]
    }

    /// Number of distinct *concrete vertex* origins (excludes α, groups and
    /// the untracked bucket). Used by the Figure 9 alerting use case, which
    /// reports "obtained X BTC from N vertices".
    pub fn num_contributing_vertices(&self) -> usize {
        self.shares
            .iter()
            .filter(|s| matches!(s.origin, Origin::Vertex(_)))
            .count()
    }

    /// Quantity whose origin is unknown (attributed to the artificial vertex
    /// α by windowing/budget techniques) or aggregated (untracked bucket).
    pub fn aggregate_quantity(&self) -> Quantity {
        self.shares
            .iter()
            .filter(|s| s.origin.is_aggregate())
            .map(|s| s.quantity)
            .sum()
    }

    /// Fraction of the buffered quantity whose concrete origin vertex is known.
    /// Returns 1.0 for an empty buffer.
    pub fn known_fraction(&self) -> f64 {
        let total = self.total();
        if qty_is_zero(total) {
            return 1.0;
        }
        1.0 - self.aggregate_quantity() / total
    }

    /// Check two origin sets for approximate equality (same origins, same
    /// quantities within the library tolerance). Used heavily in tests.
    pub fn approx_eq(&self, other: &OriginSet) -> bool {
        if self.shares.len() != other.shares.len() {
            return false;
        }
        // Compare as maps: ordering can differ when quantities are nearly tied.
        for share in &self.shares {
            if !qty_approx_eq(share.quantity, other.quantity_from(share.origin)) {
                return false;
            }
        }
        true
    }

    /// Iterate over `(origin, quantity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Origin, Quantity)> + '_ {
        self.shares.iter().map(|s| (s.origin, s.quantity))
    }
}

impl FromIterator<(Origin, Quantity)> for OriginSet {
    fn from_iter<T: IntoIterator<Item = (Origin, Quantity)>>(iter: T) -> Self {
        OriginSet::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GroupId;

    fn v(i: u32) -> Origin {
        Origin::Vertex(VertexId::new(i))
    }

    #[test]
    fn empty_set() {
        let s = OriginSet::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.total(), 0.0);
        assert_eq!(s.known_fraction(), 1.0);
    }

    #[test]
    fn from_pairs_merges_and_sorts() {
        let s = OriginSet::from_pairs(vec![(v(1), 2.0), (v(2), 5.0), (v(1), 1.0)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.shares()[0].origin, v(2));
        assert_eq!(s.shares()[0].quantity, 5.0);
        assert_eq!(s.quantity_from(v(1)), 3.0);
        assert_eq!(s.total(), 8.0);
    }

    #[test]
    fn from_pairs_drops_zero_quantities() {
        let s = OriginSet::from_pairs(vec![(v(1), 0.0), (v(2), 1e-9), (v(3), 4.0)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.quantity_from(v(3)), 4.0);
    }

    #[test]
    fn from_pairs_drops_cancelled_origins() {
        // Positive and negative contributions that cancel out disappear.
        let s = OriginSet::from_pairs(vec![(v(1), 2.0), (v(1), -2.0), (v(2), 1.0)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.quantity_from(v(2)), 1.0);
    }

    #[test]
    fn from_vertex_pairs() {
        let s = OriginSet::from_vertex_pairs(vec![(VertexId::new(0), 1.5)]);
        assert_eq!(s.quantity_from_vertex(VertexId::new(0)), 1.5);
        assert_eq!(s.quantity_from_vertex(VertexId::new(1)), 0.0);
    }

    #[test]
    fn top_k_and_counts() {
        let s = OriginSet::from_pairs(vec![
            (v(1), 5.0),
            (v(2), 3.0),
            (Origin::Unknown, 2.0),
            (v(3), 1.0),
        ]);
        assert_eq!(s.top_k(2).len(), 2);
        assert_eq!(s.top_k(2)[0].quantity, 5.0);
        assert_eq!(s.top_k(99).len(), 4);
        assert_eq!(s.num_contributing_vertices(), 3);
        assert_eq!(s.aggregate_quantity(), 2.0);
        assert!((s.known_fraction() - 9.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_kinds_counted() {
        let s = OriginSet::from_pairs(vec![
            (Origin::Untracked, 1.0),
            (Origin::Group(GroupId::new(0)), 2.0),
            (v(1), 3.0),
        ]);
        assert_eq!(s.aggregate_quantity(), 3.0);
        assert_eq!(s.num_contributing_vertices(), 1);
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        let a = OriginSet::from_pairs(vec![(v(1), 1.0), (v(2), 2.0)]);
        let b = OriginSet::from_pairs(vec![(v(2), 2.0 + 1e-10), (v(1), 1.0)]);
        assert!(a.approx_eq(&b));
        let c = OriginSet::from_pairs(vec![(v(1), 1.1), (v(2), 2.0)]);
        assert!(!a.approx_eq(&c));
        let d = OriginSet::from_pairs(vec![(v(1), 1.0)]);
        assert!(!a.approx_eq(&d));
    }

    #[test]
    fn deterministic_tie_breaking() {
        let s = OriginSet::from_pairs(vec![(v(5), 2.0), (v(1), 2.0)]);
        assert_eq!(s.shares()[0].origin, v(1));
        assert_eq!(s.shares()[1].origin, v(5));
    }

    #[test]
    fn from_iterator_and_iter() {
        let s: OriginSet = vec![(v(1), 1.0), (v(2), 2.0)].into_iter().collect();
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0], (v(2), 2.0));
    }

    #[test]
    fn origin_share_constructor() {
        let share = OriginShare::new(VertexId::new(3), 4.0);
        assert_eq!(share.origin, v(3));
        assert_eq!(share.quantity, 4.0);
    }
}
