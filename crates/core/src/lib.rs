//! # tin-core — quantity provenance in temporal interaction networks
//!
//! A from-scratch Rust implementation of *Provenance in Temporal Interaction
//! Networks* (Kosyfaki & Mamoulis, ICDE 2022). A temporal interaction network
//! (TIN) is a directed graph whose vertices exchange **quantities** (money,
//! bytes, passengers, …) through timestamped interactions. This crate
//! maintains, in a single streaming pass over the interactions, the
//! **provenance** of the quantity buffered at every vertex: which vertices
//! generated it, and (optionally) which route it travelled.
//!
//! ## Quick example
//!
//! ```
//! use tin_core::prelude::*;
//!
//! // The running example of the paper (Figure 3).
//! let interactions = tin_core::interaction::paper_running_example();
//!
//! // Track provenance under the proportional selection policy.
//! let mut tracker = ProportionalDenseTracker::new(3);
//! tracker.process_all(&interactions);
//!
//! // Which vertices contributed to the quantity buffered at v0?
//! let origins = tracker.origins(VertexId::new(0));
//! assert_eq!(origins.len(), 2);
//! assert!((origins.total() - 3.0).abs() < 1e-9);
//! ```
//!
//! ## Module map
//!
//! * [`ids`], [`quantity`], [`interaction`], [`graph`], [`stream`] — the TIN
//!   data model (Section 3 of the paper).
//! * [`buffer`] — heap and queue buffers of provenance triples/pairs.
//! * [`dense_vec`], [`sparse_vec`], [`simd`], [`adaptive_vec`] — provenance
//!   vectors for proportional selection (fixed dense, zero-allocation
//!   sparse, and runtime-adaptive representations).
//! * [`tracker`] — one tracker per selection policy (Sections 4–6):
//!   `NoProv`, least/most-recently-born, FIFO/LIFO, proportional
//!   (dense/sparse), selective, grouped, windowed, budget-based, and path
//!   tracking.
//! * [`origins`] — provenance query results `O(t, B_v)`.
//! * [`policy`] — declarative tracker configuration and the factory
//!   [`tracker::build_tracker`].
//! * [`memory`] — logical memory accounting used by the experiments.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive_vec;
pub mod buffer;
pub mod checkpoint;
pub mod codec;
pub mod dense_vec;
pub mod engine;
pub mod error;
pub mod graph;
pub mod ids;
pub mod interaction;
pub mod memory;
pub mod origins;
pub mod policy;
pub mod quantity;
pub mod simd;
pub mod snapshot;
pub mod sparse_vec;
pub mod stream;
pub mod tracker;

pub use error::{Result, TinError};
pub use graph::{Tin, TinStats};
pub use ids::{GroupId, Origin, Timestamp, VertexId};
pub use interaction::Interaction;
pub use origins::{OriginSet, OriginShare};
pub use policy::{PolicyConfig, SelectionPolicy, ShrinkCriterion};
pub use quantity::Quantity;
pub use tracker::{build_tracker, ProvenanceTracker, ShardVertexState};

/// Convenient glob-import of the most frequently used types.
pub mod prelude {
    pub use crate::adaptive_vec::{AdaptiveParams, ProvenanceVec, DEFAULT_DENSE_THRESHOLD};
    pub use crate::buffer::heap_buffer::HeapKind;
    pub use crate::buffer::queue_buffer::Discipline;
    pub use crate::checkpoint::{Checkpoint, CheckpointStore, RetentionPolicy, StreamCursor};
    pub use crate::engine::{EngineReport, ProvenanceEngine};
    pub use crate::graph::{Tin, TinStats};
    pub use crate::ids::{GroupId, Origin, Timestamp, VertexId};
    pub use crate::interaction::Interaction;
    pub use crate::memory::{FootprintBreakdown, MemoryFootprint};
    pub use crate::origins::{OriginSet, OriginShare};
    pub use crate::policy::{PolicyConfig, SelectionPolicy, ShrinkCriterion};
    pub use crate::quantity::Quantity;
    pub use crate::snapshot::{CheckpointedProvenance, ProvenanceSnapshot};
    pub use crate::stream::{InteractionSource, VecSource};
    pub use crate::tracker::backtrace::BacktraceIndex;
    pub use crate::tracker::budget::BudgetTracker;
    pub use crate::tracker::diffusion::DiffusionTracker;
    pub use crate::tracker::generation_time::GenerationTimeTracker;
    pub use crate::tracker::grouped::GroupedTracker;
    pub use crate::tracker::lazy::LazyReplayProvenance;
    pub use crate::tracker::no_prov::NoProvTracker;
    pub use crate::tracker::path::PathTracker;
    pub use crate::tracker::path_generation::GenerationPathTracker;
    pub use crate::tracker::proportional_dense::ProportionalDenseTracker;
    pub use crate::tracker::proportional_sparse::ProportionalSparseTracker;
    pub use crate::tracker::receipt_order::ReceiptOrderTracker;
    pub use crate::tracker::selective::SelectiveTracker;
    pub use crate::tracker::windowed::WindowedTracker;
    pub use crate::tracker::windowed_time::TimeWindowedTracker;
    pub use crate::tracker::{build_tracker, ProvenanceTracker};
    pub use crate::{Result, TinError};
}
