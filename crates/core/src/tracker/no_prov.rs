//! The provenance-free baseline: Algorithm 1 of the paper (`NoProv` in the
//! experimental section).
//!
//! Each vertex keeps only the scalar `|B_v|`. An interaction relays
//! `q = min(r.q, |B_{r.s}|)` from the source buffer and credits the full
//! `r.q` to the destination; the difference `r.q − q` is newborn quantity
//! generated at the source. Cost: O(1) per interaction, O(|V|) space.

use crate::ids::{Origin, VertexId};
use crate::interaction::Interaction;
use crate::memory::{vec_bytes, FootprintBreakdown};
use crate::origins::OriginSet;
use crate::quantity::{qty_clamp_non_negative, qty_is_zero, Quantity};
use crate::tracker::{MigratableTracker, ProvenanceTracker};

/// Per-vertex state moved by the shard protocol: the scalar buffer plus the
/// generated-so-far counter.
pub struct TakenState {
    buffered: Quantity,
    generated: Quantity,
}

/// Algorithm 1: quantity propagation without provenance tracking.
#[derive(Clone, Debug)]
pub struct NoProvTracker {
    buffers: Vec<Quantity>,
    /// Total quantity generated ("born") at each vertex so far. Not needed by
    /// Algorithm 1 itself, but cheap to maintain and used by the experiment
    /// harness to pick the top-k contributing vertices for selective
    /// provenance (Section 7.3).
    generated: Vec<Quantity>,
    processed: usize,
}

impl NoProvTracker {
    /// Create a tracker for a TIN with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        NoProvTracker {
            buffers: vec![0.0; num_vertices],
            generated: vec![0.0; num_vertices],
            processed: 0,
        }
    }

    /// Total quantity generated at each vertex so far (index = vertex id).
    pub fn generated_per_vertex(&self) -> &[Quantity] {
        &self.generated
    }

    /// The `k` vertices that generated the largest total quantity, in
    /// descending order (Section 7.3's selection of tracked vertices).
    pub fn top_k_generators(&self, k: usize) -> Vec<VertexId> {
        let mut order: Vec<u32> = (0..self.buffers.len() as u32).collect();
        order.sort_by(|&a, &b| {
            self.generated[b as usize]
                .total_cmp(&self.generated[a as usize])
                .then(a.cmp(&b))
        });
        order.truncate(k);
        order.into_iter().map(VertexId::new).collect()
    }
}

impl ProvenanceTracker for NoProvTracker {
    fn name(&self) -> &'static str {
        "No Provenance"
    }

    fn num_vertices(&self) -> usize {
        self.buffers.len()
    }

    fn process(&mut self, r: &Interaction) {
        let s = r.src.index();
        let d = r.dst.index();
        // q = min(r.q, |B_{r.s}|): the relayed quantity.
        let relayed = r.qty.min(self.buffers[s]);
        let newborn = r.qty - relayed;
        self.buffers[s] = qty_clamp_non_negative(self.buffers[s] - relayed);
        self.buffers[d] += r.qty;
        self.generated[s] += newborn;
        self.processed += 1;
    }

    fn buffered(&self, v: VertexId) -> Quantity {
        self.buffers[v.index()]
    }

    fn origins(&self, v: VertexId) -> OriginSet {
        // Algorithm 1 does not track provenance: the whole buffered quantity
        // has unknown origin.
        let total = self.buffers[v.index()];
        if qty_is_zero(total) {
            OriginSet::empty()
        } else {
            OriginSet::from_pairs([(Origin::Unknown, total)])
        }
    }

    fn footprint(&self) -> FootprintBreakdown {
        FootprintBreakdown {
            entries_bytes: vec_bytes(&self.buffers) + vec_bytes(&self.generated),
            paths_bytes: 0,
            index_bytes: 0,
        }
    }

    fn interactions_processed(&self) -> usize {
        self.processed
    }

    crate::impl_migration_hooks!();
}

impl MigratableTracker for NoProvTracker {
    type Taken = TakenState;

    fn extract(&mut self, v: VertexId) -> TakenState {
        let i = v.index();
        TakenState {
            buffered: std::mem::take(&mut self.buffers[i]),
            generated: std::mem::take(&mut self.generated[i]),
        }
    }

    fn install(&mut self, v: VertexId, taken: TakenState) {
        let i = v.index();
        self.buffers[i] = taken.buffered;
        self.generated[i] = taken.generated;
    }

    fn encode_taken(taken: &TakenState, out: &mut Vec<u8>) {
        crate::codec::put_f64(out, taken.buffered);
        crate::codec::put_f64(out, taken.generated);
    }

    fn decode_taken(r: &mut crate::codec::ByteReader<'_>) -> crate::error::Result<TakenState> {
        Ok(TakenState {
            buffered: r.f64()?,
            generated: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::paper_running_example;
    use crate::quantity::qty_approx_eq;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    /// Reproduces Table 2 of the paper: buffer totals after every interaction
    /// of the running example, including the newborn quantities.
    #[test]
    fn table2_buffer_changes() {
        let mut t = NoProvTracker::new(3);
        let rs = paper_running_example();
        let expected: [[f64; 3]; 6] = [
            [0.0, 0.0, 3.0],
            [5.0, 0.0, 0.0],
            [2.0, 3.0, 0.0],
            [2.0, 0.0, 7.0],
            [2.0, 2.0, 5.0],
            [3.0, 2.0, 4.0],
        ];
        for (r, exp) in rs.iter().zip(expected.iter()) {
            t.process(r);
            for (i, &want) in exp.iter().enumerate() {
                assert!(
                    qty_approx_eq(t.buffered(v(i as u32)), want),
                    "after {:?}: buffer v{} = {} want {}",
                    r,
                    i,
                    t.buffered(v(i as u32)),
                    want
                );
            }
        }
        assert_eq!(t.interactions_processed(), 6);
    }

    /// Table 2's parenthesised values: newborn quantities per vertex.
    /// v1 generates 3 (first interaction) + 4 (fourth) = 7; v2 generates 2.
    #[test]
    fn table2_newborn_quantities() {
        let mut t = NoProvTracker::new(3);
        t.process_all(&paper_running_example());
        let gen = t.generated_per_vertex();
        assert!(qty_approx_eq(gen[0], 0.0));
        assert!(qty_approx_eq(gen[1], 7.0));
        assert!(qty_approx_eq(gen[2], 2.0));
    }

    #[test]
    fn origins_are_unknown() {
        let mut t = NoProvTracker::new(3);
        t.process_all(&paper_running_example());
        let o = t.origins(v(0));
        assert_eq!(o.len(), 1);
        assert_eq!(o.shares()[0].origin, Origin::Unknown);
        assert!(qty_approx_eq(o.total(), 3.0));
        // Invariant holds even though provenance is "unknown".
        assert!(t.check_all_invariants());
        // Empty buffer -> empty origin set.
        let empty = NoProvTracker::new(2);
        assert!(empty.origins(v(0)).is_empty());
    }

    #[test]
    fn conservation_total_buffered_equals_total_generated() {
        let mut t = NoProvTracker::new(3);
        t.process_all(&paper_running_example());
        let generated: f64 = t.generated_per_vertex().iter().sum();
        assert!(qty_approx_eq(t.total_buffered(), generated));
    }

    #[test]
    fn top_k_generators_ranking() {
        let mut t = NoProvTracker::new(3);
        t.process_all(&paper_running_example());
        assert_eq!(t.top_k_generators(1), vec![v(1)]);
        assert_eq!(t.top_k_generators(2), vec![v(1), v(2)]);
        assert_eq!(t.top_k_generators(10).len(), 3);
    }

    #[test]
    fn source_with_sufficient_buffer_generates_nothing() {
        let mut t = NoProvTracker::new(2);
        t.process(&Interaction::new(0u32, 1u32, 1.0, 5.0));
        t.process(&Interaction::new(1u32, 0u32, 2.0, 3.0));
        assert!(qty_approx_eq(t.buffered(v(1)), 2.0));
        assert!(qty_approx_eq(t.buffered(v(0)), 3.0));
        // v1 relayed existing quantity only.
        assert!(qty_approx_eq(t.generated_per_vertex()[1], 0.0));
    }

    #[test]
    fn footprint_is_constant_per_vertex() {
        let t = NoProvTracker::new(1000);
        let fp = t.footprint();
        assert_eq!(fp.paths_bytes, 0);
        assert_eq!(fp.total(), 2 * 1000 * std::mem::size_of::<f64>());
    }

    #[test]
    fn name_and_vertex_count() {
        let t = NoProvTracker::new(4);
        assert_eq!(t.name(), "No Provenance");
        assert_eq!(t.num_vertices(), 4);
    }
}
